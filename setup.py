"""Packaging for the CRISP reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml`` build isolation) so the
package installs in offline environments without the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="crisp-repro",
    version="1.3.0",
    description=(
        "NumPy reproduction of CRISP hybrid N:M + block structured sparsity "
        "for class-aware model pruning, with a multi-tenant serving layer"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
