#!/usr/bin/env python
"""Sparse-format study: metadata cost and functional correctness of the CRISP format.

Reproduces the storage analysis of Sec. III-A / Fig. 4 (right):

* a weight matrix is pruned to the hybrid pattern (N:M inside uniformly
  retained blocks),
* it is encoded as CSR, ELLPACK, Blocked-Ellpack and the CRISP hybrid format,
* metadata and total bits are compared, and
* the CRISP-format GEMM (block gather + N:M multiplexing, the Fig. 6
  datapath) is checked against the dense reference.

Run with:  python examples/format_comparison.py
"""

import numpy as np

from repro.experiments import format_table
from repro.sparsity import (
    CRISPFormat,
    HybridSparsityConfig,
    compare_formats,
    crisp_matmul,
    hybrid_mask,
    masked_matmul,
    paper_block_metadata_bits,
    paper_nm_metadata_bits,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # A reshaped (HWR, S) weight matrix the size of a mid-network conv layer.
    rows, cols = 576, 128
    config = HybridSparsityConfig(n=2, m=4, block_size=16)
    weight = rng.normal(size=(rows, cols))
    mask, info = hybrid_mask(np.abs(weight), config, target_sparsity=0.875)
    sparse_weight = weight * mask
    print(f"hybrid pattern {config}: sparsity={info.achieved_sparsity:.3f}, "
          f"keep {info.keep_blocks_per_row}/{info.block_cols} blocks per row, "
          f"N:M compliant={info.nm_compliant}, uniform rows={info.uniform_rows}")

    # 1. Storage comparison.
    summaries = compare_formats(sparse_weight, n=2, m=4, block_size=16)
    crisp_meta = summaries["crisp"].metadata_bits
    table = [
        {
            "format": name,
            "data_KiB": s.data_bits / 8 / 1024,
            "metadata_KiB": s.metadata_bits / 8 / 1024,
            "total_KiB": s.total_bits / 8 / 1024,
            "metadata_vs_crisp": s.metadata_bits / crisp_meta if crisp_meta else float("inf"),
        }
        for name, s in summaries.items()
    ]
    print("\nstorage cost per format:")
    print(format_table(table))

    # 2. The paper's closed-form metadata estimates for the same shape.
    keep_cols = int(info.block_keep_ratio * rows)
    block_bits = paper_block_metadata_bits(s=cols, k=rows, k_prime=max(keep_cols, 16), block_size=16)
    nm_bits = paper_nm_metadata_bits(s=cols, k_prime=max(keep_cols, 16), n=2, m=4)
    print(f"\npaper formula estimates: block metadata ~{block_bits/8/1024:.2f} KiB, "
          f"N:M metadata ~{nm_bits/8/1024:.2f} KiB")

    # 3. Functional check of the CRISP datapath.
    fmt = CRISPFormat.from_dense(sparse_weight, n=2, m=4, block_size=16)
    activations = rng.normal(size=(rows, 8))
    reference = masked_matmul(weight, mask, activations)
    pipeline = crisp_matmul(fmt, activations)
    error = np.max(np.abs(reference - pipeline))
    print(f"\nCRISP-format GEMM vs dense reference: max abs error = {error:.2e} "
          f"(lossless encoding: {fmt.is_lossless})")


if __name__ == "__main__":
    main()
