#!/usr/bin/env python
"""Quickstart: prune a model for a user's preferred classes with CRISP.

This is the minimal end-to-end workflow:

1. build a synthetic dataset and sample a user profile (the classes this
   user actually encounters),
2. train a small "universal" model over all classes,
3. personalise it with CRISP (hybrid N:M + block sparsity, class-aware
   saliency, iterative pruning),
4. report sparsity, FLOPs ratio, storage and accuracy before/after.

Run with:  python examples/quickstart.py
"""

from repro.data import build_user_loaders, make_dataset, sample_user_profile
from repro.nn.models import resnet_tiny
from repro.nn.trainer import TrainConfig, Trainer, evaluate
from repro.pruning import CRISPConfig, CRISPPruner, collect_model_stats, model_storage_bits


def main() -> None:
    # 1. Data: a synthetic stand-in for ImageNet/CIFAR-100 and a user who only
    #    ever sees 4 of its classes.
    dataset = make_dataset("synthetic-tiny", seed=0)
    profile = sample_user_profile(dataset, num_user_classes=4, seed=0)
    train_loader, val_loader = build_user_loaders(dataset, profile, batch_size=16)
    print(f"dataset: {dataset.config.name} with {dataset.num_classes} classes")
    print(f"user-preferred classes: {profile.preferred_classes}")

    # 2. A pre-trained backbone (here trained from scratch on the user data for
    #    brevity; the experiment harness trains a universal model first).
    model = resnet_tiny(num_classes=profile.num_classes, input_size=dataset.image_size, seed=0)
    Trainer(model, TrainConfig(epochs=4, lr=0.05)).fit(train_loader, val_loader)
    dense_accuracy = evaluate(model, iter(val_loader))
    dense_stats = collect_model_stats(model, dataset.image_size)
    print(f"\ndense model: accuracy={dense_accuracy:.3f}, "
          f"{dense_stats.total_weights} prunable weights, "
          f"{dense_stats.dense_flops/1e6:.2f} MFLOPs")

    # 3. CRISP pruning: 2:4 fine-grained sparsity inside 8x8 blocks, pruned
    #    iteratively to 85 % global sparsity with class-aware saliency.
    config = CRISPConfig(
        n=2, m=4, block_size=8,
        target_sparsity=0.85,
        iterations=3,
        finetune_epochs=2,
    )
    result = CRISPPruner(model, config).prune(train_loader, val_loader)

    # 4. Report.
    stats = collect_model_stats(model, dataset.image_size)
    storage = model_storage_bits(model, n=config.n, m=config.m, block_size=config.block_size)
    print(f"\nCRISP ({config.hybrid}) pruning result:")
    print(f"  sparsity          : {result.final_sparsity:.3f}")
    print(f"  accuracy          : {result.final_accuracy:.3f} "
          f"(dense upper bound {dense_accuracy:.3f})")
    print(f"  FLOPs ratio       : {stats.flops_ratio:.3f}")
    print(f"  storage           : {storage['total_bits']/8/1024:.1f} KiB "
          f"(dense {storage['dense_bits']/8/1024:.1f} KiB)")
    print("\nper-iteration history:")
    for record in result.history:
        print(f"  iter {record.iteration}: target={record.target_sparsity:.2f} "
              f"achieved={record.achieved_sparsity:.3f} val_acc={record.val_accuracy:.3f}")


if __name__ == "__main__":
    main()
