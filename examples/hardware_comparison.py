#!/usr/bin/env python
"""Accelerator comparison: CRISP-STC vs NVIDIA-STC, DSTC and a dense baseline.

Reproduces the Fig. 8 workflow in two parts:

1. the paper's setting — representative full-scale ResNet-50 layers with an
   80-90 % sparse hybrid pattern, swept over N:M ratios and block sizes;
2. a measured setting — a model actually pruned by CRISP in this process,
   whose per-layer masks drive the workload extraction.

Run with:  python examples/hardware_comparison.py
"""

from repro.data import build_user_loaders, make_dataset, sample_user_profile
from repro.experiments import format_table
from repro.hw import (
    CrispSTC,
    DenseAccelerator,
    DualSideSTC,
    NvidiaSTC,
    compare_accelerators,
    resnet50_reference_layers,
    workloads_from_model,
)
from repro.nn.models import resnet_tiny
from repro.nn.trainer import TrainConfig, Trainer
from repro.pruning import CRISPConfig, CRISPPruner


def reference_layer_study() -> None:
    print("=" * 72)
    print("Part 1: representative ResNet-50 layers (paper's Fig. 8 setting)")
    print("=" * 72)

    rows = []
    for n, m in ((1, 4), (2, 4), (3, 4)):
        for sparsity in (0.80, 0.90):
            keep = min(1.0, (1 - sparsity) / (n / m))
            workloads = resnet50_reference_layers(n=n, m=m, block_keep_ratio=keep)
            report = compare_accelerators(workloads)
            for accelerator in ("nvidia-stc", "dstc", "crisp-stc-b16", "crisp-stc-b64"):
                rows.append({
                    "pattern": f"{n}:{m}",
                    "sparsity": sparsity,
                    "accelerator": accelerator,
                    "speedup": report.overall_speedup(accelerator),
                    "energy_eff": report.overall_energy_efficiency(accelerator),
                })
    print(format_table(rows))

    # Per-layer view for one configuration, showing the DSTC early/late asymmetry.
    workloads = resnet50_reference_layers(n=2, m=4, block_keep_ratio=0.2)
    report = compare_accelerators(workloads)
    print("\nPer-layer speedup vs dense (2:4, 90% sparsity):")
    layer_rows = []
    for layer in report.layers:
        layer_rows.append({
            "layer": layer.layer,
            "nvidia": layer.speedup("nvidia-stc"),
            "dstc": layer.speedup("dstc"),
            "crisp_b64": layer.speedup("crisp-stc-b64"),
        })
    print(format_table(layer_rows))


def pruned_model_study() -> None:
    print("\n" + "=" * 72)
    print("Part 2: a CRISP-pruned model measured end to end")
    print("=" * 72)

    dataset = make_dataset("synthetic-tiny", seed=0)
    profile = sample_user_profile(dataset, 4, seed=0)
    train_loader, val_loader = build_user_loaders(dataset, profile, batch_size=16)
    model = resnet_tiny(num_classes=4, input_size=dataset.image_size, seed=0)
    Trainer(model, TrainConfig(epochs=3, lr=0.05)).fit(train_loader)

    config = CRISPConfig(n=2, m=4, block_size=8, target_sparsity=0.85, iterations=3)
    result = CRISPPruner(model, config).prune(train_loader, val_loader)
    print(f"pruned model: sparsity={result.final_sparsity:.3f}, "
          f"accuracy={result.final_accuracy:.3f}")

    workloads = workloads_from_model(
        model, input_size=dataset.image_size, n=config.n, m=config.m, block_size=config.block_size
    )
    report = compare_accelerators(
        workloads, [DenseAccelerator(), NvidiaSTC(), DualSideSTC(), CrispSTC(8)]
    )
    print("\nnetwork-level estimates for the pruned model:")
    for name in ("nvidia-stc", "dstc", "crisp-stc-b8"):
        print(f"  {name:>14}: {report.overall_speedup(name):5.2f}x speedup, "
              f"{report.overall_energy_efficiency(name):5.2f}x energy efficiency")


def main() -> None:
    reference_layer_study()
    pruned_model_study()


if __name__ == "__main__":
    main()
