#!/usr/bin/env python
"""Class-aware personalisation study: CRISP vs. baselines across users.

Mirrors the workflow behind Fig. 7 of the paper:

* a universal model is trained over the full class set,
* several simulated users are sampled, each with their own small set of
  preferred classes,
* the universal model is personalised for each user with (a) dense
  fine-tuning, (b) CRISP hybrid-sparsity pruning and (c) class-aware channel
  pruning (the OCAP / CAP'NN-style baseline),
* accuracy, sparsity and normalized FLOPs are compared per user.

Run with:  python examples/personalized_pruning.py
"""

from repro.experiments import (
    ExperimentScale,
    clone_model,
    format_table,
    make_personalization_setup,
)
from repro.pruning import CRISPConfig, CRISPPruner, flops_ratio
from repro.pruning.baselines import channel_prune, dense_finetune

SCALE = ExperimentScale(
    name="example",
    dataset_preset="synthetic-tiny",
    model_name="resnet_tiny",
    pretrain_epochs=4,
    finetune_epochs=2,
    prune_iterations=3,
)

NUM_USERS = 3
CLASSES_PER_USER = 4
# 75 % is the regime where the tiny backbones stay close to the dense upper
# bound (see EXPERIMENTS.md, E3); push it higher to watch the trade-off.
TARGET_SPARSITY = 0.75


def personalise_for_user(user_id: int):
    setup = make_personalization_setup(
        SCALE, num_user_classes=CLASSES_PER_USER, seed=0, user_id=user_id
    )
    rows = []

    dense_model = clone_model(setup.model)
    dense = dense_finetune(dense_model, setup.train_loader, setup.val_loader,
                           epochs=SCALE.finetune_epochs)
    rows.append({
        "user": user_id, "method": "dense", "accuracy": dense.final_accuracy,
        "sparsity": 0.0, "flops_ratio": 1.0,
    })

    crisp_model = clone_model(setup.model)
    crisp = CRISPPruner(
        crisp_model,
        CRISPConfig(n=2, m=4, block_size=8, target_sparsity=TARGET_SPARSITY,
                    iterations=SCALE.prune_iterations, finetune_epochs=SCALE.finetune_epochs),
    ).prune(setup.train_loader, setup.val_loader)
    rows.append({
        "user": user_id, "method": "crisp", "accuracy": crisp.final_accuracy,
        "sparsity": crisp.final_sparsity,
        "flops_ratio": flops_ratio(crisp_model, setup.dataset.image_size),
    })

    channel_model = clone_model(setup.model)
    channel = channel_prune(
        channel_model, target_sparsity=0.6,
        train_loader=setup.train_loader, val_loader=setup.val_loader,
        finetune_epochs=SCALE.finetune_epochs,
    )
    rows.append({
        "user": user_id, "method": "channel", "accuracy": channel.final_accuracy,
        "sparsity": channel.achieved_sparsity, "flops_ratio": channel.flops_ratio,
    })
    return rows


def main() -> None:
    all_rows = []
    for user_id in range(NUM_USERS):
        print(f"personalising for user {user_id} ...")
        all_rows.extend(personalise_for_user(user_id))

    print("\nPer-user personalisation results "
          f"({CLASSES_PER_USER} preferred classes, CRISP target sparsity {TARGET_SPARSITY}):\n")
    print(format_table(all_rows))

    crisp_rows = [r for r in all_rows if r["method"] == "crisp"]
    dense_rows = [r for r in all_rows if r["method"] == "dense"]
    mean = lambda rows, key: sum(r[key] for r in rows) / len(rows)
    print(f"\nmean CRISP accuracy : {mean(crisp_rows, 'accuracy'):.3f} "
          f"(dense upper bound {mean(dense_rows, 'accuracy'):.3f})")
    print(f"mean CRISP FLOPs    : {mean(crisp_rows, 'flops_ratio'):.3f} of dense")


if __name__ == "__main__":
    main()
