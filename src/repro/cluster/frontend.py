"""Cluster frontend: the sharded, concurrent `PersonalizationService`.

:class:`ClusterService` exposes the same ``personalize`` / ``predict`` /
``predict_batch`` surface as the single-process
:class:`~repro.serve.service.PersonalizationService`, but answers inference
traffic through a fleet of :class:`~repro.cluster.shard.ShardWorker` threads:

* registered tenants are placed on shards by bounded-load consistent hashing
  (:meth:`~repro.cluster.router.ConsistentHashRouter.balanced_assignments`),
  so each shard's engine cache sees a stable, *balanced* tenant subset and
  cache locality survives concurrency — no shard is handed more tenants than
  the pigeonhole minimum, which is what keeps a capacity-bounded cache from
  thrashing; unregistered keys fall back to plain ring routing;
* every submission returns a :class:`~concurrent.futures.Future`
  (:meth:`submit`); the synchronous API is a thin wait on top;
* admission control rejects work when a shard's queue crosses the
  high-water mark — the caller gets a :class:`RejectedResponse` with
  ``status == 503`` instead of unbounded queueing;
* :meth:`drain` / :meth:`shutdown` finish in-flight work before stopping,
  and the service is a context manager that shuts down on exit.

The personalization path (training + pruning) stays single-process and is
delegated to an inner ``PersonalizationService`` sharing the cluster's model
registry; what the cluster shards is the serving path, where the traffic is.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import InvalidArgumentError, NotFoundError, UnavailableError
from ..metrics.events import emit
from ..serve.registry import ModelRegistry
from ..serve.service import PersonalizationService, ServiceConfig
from ..serve.types import PredictRequest, PredictResponse
from ..shm import SharedWeightStore
from .procworker import ProcessShardWorker
from .router import ConsistentHashRouter
from .shard import ShardOverloadError, ShardWorker
from .telemetry import LatencyHistogram, assert_stats_schema, merge_snapshots
from ..trace import trace_block

__all__ = ["ClusterConfig", "ClusterService", "RejectedResponse", "WORKER_KINDS"]

#: Worker execution models the cluster knows how to run.  ``threaded`` shards
#: are in-process :class:`~repro.cluster.shard.ShardWorker` threads;
#: ``process`` shards are
#: :class:`~repro.cluster.procworker.ProcessShardWorker` children serving
#: from zero-copy shared-memory weights — same queue/telemetry contract,
#: real multi-core isolation.
WORKER_KINDS = ("threaded", "process")


@dataclass
class RejectedResponse:
    """A 503-style admission rejection (the response-shaped kind of 'no').

    Shares ``request_id`` / ``model_id`` / ``status`` with
    :class:`~repro.serve.types.PredictResponse` so mixed result lists report
    uniformly; ``ok`` distinguishes the two without isinstance checks.
    """

    request_id: Optional[str]
    model_id: str
    status: int = 503
    reason: str = "shard queue above high-water mark"

    @property
    def ok(self) -> bool:
        return False

    def to_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "model_id": self.model_id,
            "status": self.status,
            "reason": self.reason,
        }


@dataclass
class ClusterConfig:
    """Deployment shape of a :class:`ClusterService`.

    ``cache_capacity`` / ``max_batch_size`` are *per shard* — the point of
    sharding is that each worker's memory and batch budget stays bounded
    while the fleet's total capacity scales with the shard count.
    """

    shards: int = 2
    workers: str = "threaded"
    cache_capacity: int = 4
    max_batch_size: Optional[int] = None
    max_pending: int = 256  #: bounded queue length per shard
    high_water: Optional[int] = None  #: admission threshold (default: max_pending)
    flush_interval_s: float = 0.002  #: micro-batching deadline per shard
    poll_interval_s: float = 0.05
    replicas: int = 64  #: hash-ring virtual nodes per shard

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.workers not in WORKER_KINDS:
            # A typed INVALID_ARGUMENT (still a ValueError) so the gateway
            # surfaces a stable error code instead of a bare 500.
            raise InvalidArgumentError(
                f"Unknown worker kind {self.workers!r}; available: {WORKER_KINDS}"
            )
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.high_water is None:
            self.high_water = self.max_pending
        if not 1 <= self.high_water <= self.max_pending:
            raise ValueError(
                f"high_water must be in [1, max_pending], got {self.high_water}"
            )


class ClusterService:
    """Sharded concurrent serving runtime with the facade API.

    Example
    -------
    >>> cluster = ClusterService(ClusterConfig(shards=4))
    >>> model_id = cluster.personalize(PersonalizeRequest(user_id=0, num_classes=3))
    >>> future = cluster.submit(PredictRequest(model_id, batch))   # async
    >>> response = cluster.predict(model_id, batch)                # sync
    >>> responses = cluster.predict_batch(mixed_tenant_requests)
    >>> cluster.shutdown()                                         # graceful drain
    """

    def __init__(
        self,
        cluster: Optional[ClusterConfig] = None,
        config: Optional[ServiceConfig] = None,
        registry: Optional[ModelRegistry] = None,
        service: Optional[PersonalizationService] = None,
        start: bool = True,
    ) -> None:
        self.cluster = cluster or ClusterConfig()
        if service is not None:
            if config is not None or registry is not None:
                raise ValueError("pass either service or (config, registry), not both")
            self.service = service
        else:
            self.service = PersonalizationService(config=config, registry=registry)
        self.registry = self.service.registry
        self.config = self.service.config
        # Process-mode deployments publish weights once, into shared memory;
        # every worker child maps the same segments zero-copy.
        self._store: Optional[SharedWeightStore] = (
            SharedWeightStore(self.registry) if self.cluster.workers == "process" else None
        )
        self._workers: Dict[int, Union[ShardWorker, ProcessShardWorker]] = {}
        self._next_shard_id = 0
        self.router = ConsistentHashRouter(replicas=self.cluster.replicas)
        # Balanced tenant placement, recomputed lazily whenever the
        # registered-tenant set or the shard membership changes.
        self._placement: Dict[str, int] = {}
        self._placement_signature: Optional[tuple] = None
        self._started = False
        self._closed = False
        # Requests failed *at the frontend* (fail-fast submit to a dead
        # shard): no worker telemetry ever sees them, so the frontend counts
        # them itself — otherwise a mid-outage stats() would under-report
        # failures and starve the burn-rate alert of its signal.
        self._frontend_failed = 0
        self._frontend_failed_lock = threading.Lock()
        # All scaling mutations (add/remove/kill) serialize behind this one
        # lock.  Without it a remove_shard's ring-removal + graceful drain
        # can interleave with a concurrent add_shard's ring-insert and the
        # router/worker tables disagree mid-flight; with it each mutation —
        # including the drain a graceful remove performs — is atomic with
        # respect to the others.  Reentrant so a locked caller may compose
        # mutations.
        self._scale_lock = threading.RLock()
        for _ in range(self.cluster.shards):
            self._add_worker()
        if start:
            self.start()

    @classmethod
    def from_service(
        cls,
        service: PersonalizationService,
        cluster: Optional[ClusterConfig] = None,
        start: bool = True,
    ) -> "ClusterService":
        """Wrap an existing single-process service (shared registry + config)."""
        return cls(cluster=cluster, service=service, start=start)

    # -- shard membership -------------------------------------------------------
    def _add_worker(self) -> int:
        with self._scale_lock:
            return self._add_worker_locked()

    def _add_worker_locked(self) -> int:
        shard_id = self._next_shard_id
        self._next_shard_id += 1
        if self._store is not None:
            worker = ProcessShardWorker(
                shard_id,
                self._store,
                cache_capacity=self.cluster.cache_capacity,
                max_batch_size=self.cluster.max_batch_size,
                max_pending=self.cluster.max_pending,
                flush_interval_s=self.cluster.flush_interval_s,
                poll_interval_s=self.cluster.poll_interval_s,
            )
        else:
            worker = ShardWorker(
                shard_id,
                self.registry,
                cache_capacity=self.cluster.cache_capacity,
                max_batch_size=self.cluster.max_batch_size,
                max_pending=self.cluster.max_pending,
                flush_interval_s=self.cluster.flush_interval_s,
                poll_interval_s=self.cluster.poll_interval_s,
            )
        self._workers[shard_id] = worker
        self.router.add_shard(shard_id)
        if self._started:
            worker.start()
        emit("shard_add", shard=shard_id, workers=self.cluster.workers,
             shards=len(self._workers))
        return shard_id

    def add_shard(self) -> int:
        """Scale out by one shard; only rerouted tenants change owner.

        Bounded-load consistent hashing moves roughly 1/(shards+1) of the
        tenants (those whose ring owner becomes the new shard, plus any
        overflow that regains room); the bulk of the surviving shards' cached
        engines stay warm.  Returns the new shard id.
        """
        self._ensure_open()
        return self._add_worker()

    def remove_shard(self, shard_id: int) -> None:
        """Scale in: reroute the shard's tenants, drain it, stop its thread.

        Holds the scale lock across the whole sequence — ring removal *and*
        the graceful drain — so a concurrent ``add_shard`` (an autoscaler
        scaling out while a chaos heal drains a corpse) waits for the drain
        instead of racing the router ring.
        """
        self._ensure_open()
        with self._scale_lock:
            if shard_id not in self._workers:
                raise KeyError(f"unknown shard id {shard_id!r}")
            if len(self._workers) == 1:
                raise ValueError("cannot remove the last shard")
            # Order matters: take the shard off the ring first so no new
            # traffic lands on it, then drain what it already owns.
            self.router.remove_shard(shard_id)
            worker = self._workers.pop(shard_id)
            emit("shard_drain", shard=shard_id, shards=len(self._workers))
            worker.stop(drain=True)

    def kill_shard(self, shard_id: int) -> None:
        """Chaos operation: crash one shard abruptly (no drain, no reroute).

        The shard's pending futures fail with
        :class:`~repro.cluster.shard.ShardKilledError`, and traffic for its
        tenants keeps failing fast (never hanging) until the fleet is healed
        with :meth:`remove_shard`, which takes the corpse off the ring and
        reroutes its tenants to the survivors.  This is the fault-injection
        entry point :class:`repro.loadgen.FaultInjector` drives.
        """
        self._ensure_open()
        with self._scale_lock:
            if shard_id not in self._workers:
                raise KeyError(f"unknown shard id {shard_id!r}")
            self._workers[shard_id].kill()
            emit("shard_kill", shard=shard_id)

    @property
    def shards(self) -> int:
        return len(self._workers)

    def shard_ids(self) -> List[int]:
        """The live shard ids, sorted — the public membership surface.

        Chaos tooling (:class:`repro.loadgen.FaultInjector`) and telemetry
        consumers address shards through this and :meth:`worker` rather than
        the private worker table.
        """
        return sorted(self._workers)

    def worker(self, shard_id: int) -> Union[ShardWorker, ProcessShardWorker]:
        """The live worker for ``shard_id`` (raises ``KeyError`` if unknown)."""
        return self._workers[shard_id]

    def _shard_for(self, model_id: str) -> int:
        """The owning shard under bounded-load placement of the registry.

        The placement table covers exactly the registered model ids and is
        rebuilt when the registry contents or the shard set change (both are
        cheap to fingerprint at this reproduction's fleet sizes).  Keys
        outside the registry route by the plain ring.
        """
        signature = (tuple(self.registry.ids()), tuple(self.router.shard_ids()))
        if signature != self._placement_signature:
            table = self.router.balanced_assignments(signature[0])
            self._placement = {
                model_id: shard_id
                for shard_id, model_ids in table.items()
                for model_id in model_ids
            }
            self._placement_signature = signature
        shard_id = self._placement.get(model_id)
        return self.router.route(model_id) if shard_id is None else shard_id

    def worker_for(self, model_id: str) -> Union[ShardWorker, ProcessShardWorker]:
        """The shard worker owning ``model_id`` under the current placement."""
        return self._workers[self._shard_for(model_id)]

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "ClusterService":
        """Start every shard's drain thread / worker process (idempotent).

        Process mode publishes every registered model's weights into shared
        memory up front: the encode happens once, outside the serving path,
        instead of stalling the first request window per tenant (models
        registered later still publish lazily on first use).
        """
        self._ensure_open()
        if not self._started:
            self._started = True
            if self._store is not None:
                for model_id in self.registry.ids():
                    self._store.ensure(model_id)
            for worker in self._workers.values():
                worker.start()
        return self

    def drain(self) -> None:
        """Block until every shard's queue is empty and answered."""
        for worker in self._workers.values():
            worker.drain()

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work and stop every shard (graceful by default).

        Process-mode deployments then unlink every shared-memory segment the
        weight store published — after shutdown, ``/dev/shm`` holds nothing
        of this cluster's.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            worker.stop(drain=drain and self._started)
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "ClusterService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def _ensure_open(self) -> None:
        if self._closed:
            raise UnavailableError("ClusterService is shut down")

    # -- personalization ----------------------------------------------------------
    def personalize(self, request, **overrides) -> str:
        """Personalize one tenant (delegated to the inner service).

        Every shard's cached engine for the id is evicted afterwards — not
        just the current owner's, since balanced placement can move a tenant
        between shards as the fleet changes and a former owner must never
        serve the pre-refresh weights if the tenant moves back.
        """
        self._ensure_open()
        model_id = self.service.personalize(request, **overrides)
        if self._store is not None:
            # Republish eagerly so the fresh weights are already encoded in
            # shared memory when the next request window opens.
            self._store.ensure(model_id)
        for worker in self._workers.values():
            worker.evict(model_id)
        return model_id

    # -- inference ------------------------------------------------------------
    def submit(self, request: PredictRequest) -> Future:
        """Route one request to its shard; returns the response future.

        Admission control: when the owning shard's queue sits at or above
        the high-water mark (or is outright full), the future resolves
        immediately to a :class:`RejectedResponse` with ``status == 503``
        instead of queueing unboundedly.  Unknown model ids fail the future
        with :class:`~repro.errors.NotFoundError` (a ``KeyError``) without
        poisoning a shard batch.
        """
        self._ensure_open()
        future: Future = Future()
        if request.model_id not in self.registry:
            future.set_exception(
                NotFoundError(
                    f"Unknown model id {request.model_id!r}; "
                    f"registered: {self.registry.ids()}"
                )
            )
            return future
        worker = self.worker_for(request.model_id)
        if worker.pending() >= self.cluster.high_water:
            worker.telemetry.record_reject()
            emit("admission_reject", source="cluster", shard=worker.shard_id,
                 model_id=request.model_id, reason="high_water")
            future.set_result(
                RejectedResponse(request_id=request.request_id, model_id=request.model_id)
            )
            return future
        try:
            return worker.submit(request)
        except ShardOverloadError:
            # Lost the race between the depth check and the bounded put.
            worker.telemetry.record_reject()
            emit("admission_reject", source="cluster", shard=worker.shard_id,
                 model_id=request.model_id, reason="queue_full")
            future.set_result(
                RejectedResponse(request_id=request.request_id, model_id=request.model_id)
            )
            return future
        except RuntimeError as exc:
            # The owning shard is down (killed or shut down mid-flight).
            # Fail the future cleanly instead of raising into the caller —
            # the contract is that submit() always returns a future and a
            # dead shard never hangs one.
            with self._frontend_failed_lock:
                self._frontend_failed += 1
            emit("shard_down", shard=worker.shard_id,
                 model_id=request.model_id, error=type(exc).__name__)
            future.set_exception(exc)
            return future

    def predict(
        self,
        model_id: str,
        batch: np.ndarray,
        request_id: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Union[PredictResponse, RejectedResponse]:
        """Answer one request synchronously (submit + wait)."""
        return self.submit(PredictRequest(model_id, batch, request_id)).result(timeout)

    def predict_batch(
        self, requests: Sequence[PredictRequest], timeout: Optional[float] = None
    ) -> List[Union[PredictResponse, RejectedResponse]]:
        """Answer a mixed-tenant burst; responses come back in request order.

        All requests are submitted before any wait, so co-tenant requests
        land in their shard's queue together and fuse into one dispatch.
        Process-mode shards additionally get the burst bracketed in window
        begin/end frames, which makes that whole-window fusion structural
        (independent of host scheduling) — the property behind bit-exact
        parity with the threaded and single-process deployments.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        windowed = self._store is not None and self._started
        if windowed:
            for worker in self._workers.values():
                worker.begin_window()
        try:
            futures = [self.submit(request) for request in requests]
        finally:
            if windowed:
                for worker in self._workers.values():
                    worker.end_window()
        results = []
        for future in futures:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            results.append(future.result(remaining))
        return results

    def engine(self, model_id: str):
        """The owning shard's cached engine (the hardware-model bridge).

        Same contract as ``PersonalizationService.engine``, so
        :func:`repro.hw.workload.workloads_from_service` models the engine a
        sharded deployment would actually serve this tenant with.
        """
        self._ensure_open()
        return self.worker_for(model_id).engine(model_id)

    # -- introspection / persistence -------------------------------------------
    def model_ids(self) -> List[str]:
        return self.registry.ids()

    def merged_latency(self) -> LatencyHistogram:
        """The cluster-level latency histogram: every shard's reservoir, merged.

        A true merge of the per-shard reservoirs (no resampling, no window
        truncation — the merged reservoir is sized to hold every resident
        sample), so the p50/p95/p99 computed from it are exactly what a
        single service recording all completions would report.  This is the
        histogram behind ``stats()["totals"]["latency"]``.
        """
        return LatencyHistogram.merged(
            self._workers[shard_id].telemetry.merged_latency()
            for shard_id in sorted(self._workers)
        )

    def stats(self) -> Dict[str, object]:
        """Cluster report: totals + router + uniform per-shard schema.

        Per-shard ``cache`` and ``scheduler`` blocks carry exactly the same
        keys as ``PersonalizationService.stats()``, so dashboards built for
        the single-process path read shard telemetry unchanged.  The
        ``totals["latency"]`` percentiles come from :meth:`merged_latency`,
        i.e. from the merged per-shard reservoirs, not from any attempt to
        combine per-shard percentile summaries.

        The top-level ``latency`` / ``cache`` / ``queue`` / ``errors`` blocks
        follow the unified serving schema
        (:func:`~repro.cluster.telemetry.assert_stats_schema`) shared with
        ``PersonalizationService.stats()`` and ``Gateway.stats()``.
        """
        per_shard = [self._workers[sid].stats() for sid in sorted(self._workers)]
        totals = merge_snapshots([shard["telemetry"] for shard in per_shard])
        totals["latency"] = self.merged_latency().summary()
        cache_totals = {
            key: sum(shard["cache"][key] for shard in per_shard)
            for key in ("resident", "hits", "misses", "evictions")
        }
        lookups = cache_totals["hits"] + cache_totals["misses"]
        cache_totals["hit_rate"] = cache_totals["hits"] / lookups if lookups else 0.0
        payload = {
            "models": len(self.registry),
            "shards": self.shards,
            "workers": self.cluster.workers,
            "router": self.router.stats(),
            "latency": totals["latency"],
            "cache": cache_totals,
            "queue": {
                "pending": sum(shard["pending"] for shard in per_shard),
                "max_depth": totals["queue_depth"]["max"],
            },
            "errors": {
                # Worker-recorded failures plus the frontend's fail-fast
                # count (dead-shard submits never reach worker telemetry).
                "failed": totals["failed"] + self._frontend_failed,
                "rejected": totals["rejected"],
                "frontend_failed": self._frontend_failed,
            },
            "totals": totals,
            "per_shard": per_shard,
        }
        # Optional per-hop trace block (parent-process aggregator): absent
        # until tracing has been active, so pre-trace payloads are unchanged.
        block = trace_block()
        if block is not None:
            payload["trace"] = block
        return assert_stats_schema(payload)

    def save(self, root) -> None:
        """Persist every registered model (same layout as the inner service)."""
        self.service.save(root)

    @classmethod
    def load(
        cls,
        root,
        cluster: Optional[ClusterConfig] = None,
        config: Optional[ServiceConfig] = None,
    ) -> "ClusterService":
        """Rebuild a cluster over a registry directory written by :meth:`save`."""
        return cls(cluster=cluster, config=config, registry=ModelRegistry.load(root))
