"""Per-shard serving telemetry: counters, latency percentiles, distributions.

Every :class:`~repro.cluster.shard.ShardWorker` owns one
:class:`ShardTelemetry` and records into it from the worker thread while the
frontend records admission rejections from caller threads — all mutation goes
through one lock per telemetry object.  Snapshots are plain JSON-compatible
dicts with a *stable schema* shared by every shard, so
:meth:`~repro.cluster.frontend.ClusterService.stats` can both report shards
side by side and merge them into cluster totals
(:func:`merge_snapshots` / :meth:`ShardTelemetry.merge`).

The latency surface follows the profiler/step-instrumentation idiom of the
related serving repos: a bounded sample reservoir per histogram, summarised
as p50/p95/p99 (plus mean/max) rather than raw traces.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "LatencyHistogram",
    "ShardTelemetry",
    "merge_snapshots",
    "STATS_SCHEMA",
    "assert_stats_schema",
]

#: The unified top-level stats schema every serving facade emits: block name
#: -> fields the block must carry.  ``PersonalizationService.stats()``,
#: ``ClusterService.stats()`` and ``Gateway.stats()`` all validate against
#: this before returning, so dashboards read any deployment shape unchanged.
STATS_SCHEMA: Dict[str, Tuple[str, ...]] = {
    "latency": ("count", "mean_ms", "max_ms"),
    "cache": ("hits", "misses", "evictions", "hit_rate"),
    "queue": ("pending", "max_depth"),
    "errors": ("failed", "rejected"),
}


#: Blocks whose numeric fields are all semantically non-negative (counts,
#: depths, milliseconds) — validated value-wise, not just key-wise.
_NONNEGATIVE_BLOCKS = ("latency", "queue")


def assert_stats_schema(stats: Dict[str, object]) -> Dict[str, object]:
    """Validate (and return) a stats dict against :data:`STATS_SCHEMA`.

    Raises ``AssertionError`` naming every missing block/field, so a schema
    drift fails loudly at the facade that introduced it rather than in a
    dashboard.  Blocks may carry *more* fields than the schema requires —
    the contract is a shared floor, not a ceiling.

    Values are checked too, not just keys: every numeric field of the
    ``latency`` and ``queue`` blocks must be finite and non-negative.  A NaN
    percentile or a negative queue depth is a telemetry bug upstream — and
    it would silently corrupt every time series, alert rule, and SLO report
    fed from this snapshot, so it fails here, at the source.
    """
    problems = []
    for block_name, fields in STATS_SCHEMA.items():
        block = stats.get(block_name)
        if not isinstance(block, dict):
            problems.append(f"missing block {block_name!r}")
            continue
        absent = [field for field in fields if field not in block]
        if absent:
            problems.append(f"block {block_name!r} missing fields {absent}")
        if block_name in _NONNEGATIVE_BLOCKS:
            for field, value in block.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                value = float(value)
                if value != value or value in (float("inf"), float("-inf")):
                    problems.append(
                        f"block {block_name!r} field {field!r} is not finite"
                        f" ({value})"
                    )
                elif value < 0:
                    problems.append(
                        f"block {block_name!r} field {field!r} is negative"
                        f" ({value})"
                    )
    if problems:
        raise AssertionError(
            "stats schema violation: " + "; ".join(problems)
        )
    return stats


class LatencyHistogram:
    """Latency samples with percentile summaries over a bounded reservoir.

    The reservoir keeps the most recent ``max_samples`` observations (a
    sliding window, so long-running shards report current behaviour, not
    boot-time warmup), while ``count`` / ``total`` / ``max`` accumulate over
    the histogram's whole lifetime.
    """

    def __init__(self, max_samples: int = 8192) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self._samples: Deque[float] = deque(maxlen=max_samples)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        seconds = float(seconds)
        self._samples.append(seconds)
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile ``q`` (0-100) over the reservoir."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def samples(self) -> Tuple[float, ...]:
        """The resident reservoir samples (oldest first), for external merges.

        This is the exposed surface percentile mergers need: percentiles
        cannot be combined from p50/p95/p99 summaries, only from the
        underlying samples.
        """
        return tuple(self._samples)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram (for cluster-level summaries).

        Bounded by *this* histogram's reservoir capacity: when the combined
        samples overflow it, the oldest are dropped.  For a lossless merge of
        several histograms use :meth:`merged`, which sizes the output to hold
        every resident sample.
        """
        self._samples.extend(other._samples)
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)
        return self

    @classmethod
    def merged(cls, histograms: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        """A new histogram holding every input's resident samples, losslessly.

        Unlike :meth:`merge` this never mutates its inputs and never drops a
        resident sample: the output reservoir is sized to the combined sample
        count, so its percentiles equal those of one reservoir that had
        recorded all the samples itself — the "true merged p99" a cluster
        report needs.
        """
        histograms = list(histograms)
        capacity = max(1, sum(len(h._samples) for h in histograms))
        out = cls(max_samples=capacity)
        for histogram in histograms:
            out._samples.extend(histogram._samples)
            out.count += histogram.count
            out.total += histogram.total
            out.max = max(out.max, histogram.max)
        return out

    def summary(self) -> Dict[str, float]:
        """The stable latency schema (milliseconds)."""
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "max_ms": self.max * 1e3,
        }


class ShardTelemetry:
    """Thread-safe counters and distributions for one serving shard.

    Records four kinds of event:

    * admission — ``record_submit`` / ``record_reject`` (frontend threads);
    * dispatch — ``record_dispatch(batch_size, queue_depth)`` once per fused
      flush (worker thread);
    * completion — ``record_completion(latency_s)`` once per answered
      request (worker thread);
    * failure — ``record_failure`` for requests answered with an exception.
    """

    def __init__(self, shard_id, max_samples: int = 8192) -> None:
        self.shard_id = shard_id
        self._lock = threading.Lock()
        self.latency = LatencyHistogram(max_samples=max_samples)
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.failed = 0
        self.dispatches = 0
        self._batch_sizes: Counter = Counter()
        self._batch_max = 0
        self._depth_samples = 0
        self._depth_total = 0
        self._depth_max = 0

    # -- recording (any thread) ------------------------------------------------
    def record_submit(self, n: int = 1) -> None:
        with self._lock:
            self.submitted += n

    def record_reject(self, n: int = 1) -> None:
        with self._lock:
            self.rejected += n

    def record_dispatch(self, batch_size: int, queue_depth: int) -> None:
        with self._lock:
            self.dispatches += 1
            self._batch_sizes[int(batch_size)] += 1
            self._batch_max = max(self._batch_max, int(batch_size))
            self._depth_samples += 1
            self._depth_total += int(queue_depth)
            self._depth_max = max(self._depth_max, int(queue_depth))

    def record_completion(self, latency_s: float) -> None:
        with self._lock:
            self.completed += 1
            self.latency.record(latency_s)

    def record_failure(self, n: int = 1) -> None:
        with self._lock:
            self.failed += n

    # -- reporting -------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One shard's telemetry as a JSON-compatible dict (stable schema)."""
        with self._lock:
            mean_batch = (
                sum(size * count for size, count in self._batch_sizes.items())
                / self.dispatches
                if self.dispatches
                else 0.0
            )
            return {
                "shard": self.shard_id,
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "failed": self.failed,
                "latency": self.latency.summary(),
                "batch_size": {
                    "dispatches": self.dispatches,
                    "mean": mean_batch,
                    "max": self._batch_max,
                    # JSON objects key by string; keep the distribution sparse.
                    "histogram": {
                        str(size): count
                        for size, count in sorted(self._batch_sizes.items())
                    },
                },
                "queue_depth": {
                    "samples": self._depth_samples,
                    "mean": (
                        self._depth_total / self._depth_samples
                        if self._depth_samples
                        else 0.0
                    ),
                    "max": self._depth_max,
                },
            }

    def merged_latency(self) -> LatencyHistogram:
        """A copy of the latency histogram, safe to fold into a cluster total."""
        with self._lock:
            copy = LatencyHistogram(max_samples=self.latency.max_samples)
            copy.merge(self.latency)
            return copy


def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate per-shard snapshots into cluster totals (same sub-schema).

    Counter fields sum; latency percentiles cannot be merged from summaries
    alone, so the merged ``latency`` block reports count/mean/max exactly and
    leaves percentile merging to callers holding the histograms (see
    :meth:`ShardTelemetry.merged_latency`).
    """
    snapshots = list(snapshots)
    totals: Dict[str, object] = {
        "shards": len(snapshots),
        "submitted": sum(s["submitted"] for s in snapshots),
        "completed": sum(s["completed"] for s in snapshots),
        "rejected": sum(s["rejected"] for s in snapshots),
        "failed": sum(s["failed"] for s in snapshots),
    }
    dispatches = sum(s["batch_size"]["dispatches"] for s in snapshots)
    weighted = sum(
        s["batch_size"]["mean"] * s["batch_size"]["dispatches"] for s in snapshots
    )
    totals["batch_size"] = {
        "dispatches": dispatches,
        "mean": weighted / dispatches if dispatches else 0.0,
        "max": max((s["batch_size"]["max"] for s in snapshots), default=0),
    }
    count = sum(s["latency"]["count"] for s in snapshots)
    weighted_ms = sum(s["latency"]["mean_ms"] * s["latency"]["count"] for s in snapshots)
    totals["latency"] = {
        "count": count,
        "mean_ms": weighted_ms / count if count else 0.0,
        "max_ms": max((s["latency"]["max_ms"] for s in snapshots), default=0.0),
    }
    totals["queue_depth"] = {
        "max": max((s["queue_depth"]["max"] for s in snapshots), default=0),
    }
    return totals
