"""Consistent-hash tenant → shard routing with incremental rebalancing.

Tenants (model ids) are placed on a hash ring of virtual nodes (``replicas``
points per shard).  A key routes to the first shard point at or clockwise
past its own hash, which gives the two properties the cluster needs:

* **determinism** — routing depends only on the key and the shard set, never
  on process state, so every frontend (and a restarted cluster) agrees on
  tenant placement and each shard's engine cache sees a stable tenant subset;
* **minimal movement** — adding a shard steals only ~1/(shards+1) of the
  keys (each stolen key moves *to the new shard*), and removing a shard
  reassigns only the removed shard's keys.  Everything else stays put, so
  rebalancing does not flush the surviving shards' engine caches.

Plain ring routing is statistically balanced only for large key counts; a
small fleet can split badly (16 tenants over 4 shards can land 7 on one).
For placement over a *known* key set, :meth:`ConsistentHashRouter.balanced_assignments`
applies the bounded-load variant of consistent hashing: keys are placed in
ring order and a key whose owner is at the load bound walks clockwise to the
next shard with room, so no shard exceeds ``ceil(len(keys) / shards)``.

Hashing is SHA-1 based (not Python's salted ``hash()``) so placement is
reproducible across processes and runs.
"""

from __future__ import annotations

import bisect
import hashlib
import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

__all__ = ["ConsistentHashRouter"]


def _hash_point(key: str) -> int:
    """64-bit ring position of ``key`` (stable across processes)."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRouter:
    """Hash ring mapping tenant keys to shard ids."""

    def __init__(self, shard_ids: Sequence[Hashable] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[int] = []  # sorted ring positions
        self._owners: Dict[int, Hashable] = {}  # ring position -> shard id
        self._shards: set = set()
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # -- membership ------------------------------------------------------------
    def _virtual_points(self, shard_id: Hashable) -> List[int]:
        return [
            _hash_point(f"shard:{shard_id!r}:{replica}")
            for replica in range(self.replicas)
        ]

    def add_shard(self, shard_id: Hashable) -> None:
        """Insert one shard's virtual nodes into the ring."""
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} already on the ring")
        self._shards.add(shard_id)
        for point in self._virtual_points(shard_id):
            # SHA-1 collisions between distinct virtual-node labels are not a
            # practical concern, but keep ownership deterministic if one ever
            # happens: first shard to claim a point keeps it.
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = shard_id

    def remove_shard(self, shard_id: Hashable) -> None:
        """Remove one shard's virtual nodes; its keys reroute clockwise."""
        if shard_id not in self._shards:
            raise KeyError(f"shard {shard_id!r} not on the ring")
        self._shards.discard(shard_id)
        for point in self._virtual_points(shard_id):
            if self._owners.get(point) != shard_id:
                continue
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            if index < len(self._points) and self._points[index] == point:
                self._points.pop(index)

    def shard_ids(self) -> List[Hashable]:
        """Current shard membership, sorted by repr for determinism."""
        return sorted(self._shards, key=repr)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: Hashable) -> bool:
        return shard_id in self._shards

    # -- routing ---------------------------------------------------------------
    def route(self, key: str) -> Hashable:
        """The shard owning ``key`` (first ring point clockwise of its hash)."""
        if not self._points:
            raise RuntimeError("cannot route: no shards on the ring")
        position = _hash_point(f"key:{key}")
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):  # wrap past the top of the ring
            index = 0
        return self._owners[self._points[index]]

    def assignments(self, keys: Iterable[str]) -> Dict[Hashable, List[str]]:
        """Partition ``keys`` by owning shard (shards with no keys included)."""
        table: Dict[Hashable, List[str]] = {shard: [] for shard in self.shard_ids()}
        for key in keys:
            table[self.route(key)].append(key)
        return table

    def _route_with_room(
        self, key: str, loads: Dict[Hashable, int], max_load: int
    ) -> Hashable:
        """The first shard clockwise of ``key`` whose load is below the bound."""
        position = _hash_point(f"key:{key}")
        start = bisect.bisect_right(self._points, position) % len(self._points)
        visited: set = set()
        for step in range(len(self._points)):
            owner = self._owners[self._points[(start + step) % len(self._points)]]
            if owner in visited:
                continue
            if loads[owner] < max_load:
                return owner
            visited.add(owner)
        # Every shard is at the bound (caller passed a max_load below the
        # pigeonhole minimum); fall back to the plain ring owner.
        return self._owners[self._points[start]]

    def balanced_assignments(
        self, keys: Iterable[str], max_load: Optional[int] = None
    ) -> Dict[Hashable, List[str]]:
        """Bounded-load placement of a known key set (deterministic).

        Keys are placed in ring order (position, then key, so ties are
        stable); each lands on its ring owner unless that shard is already at
        ``max_load`` keys, in which case it walks clockwise to the next shard
        with room.  The default bound, ``ceil(len(keys) / shards)``, yields
        the tightest balance the pigeonhole principle allows — the property a
        capacity-bounded engine cache needs, since one over-subscribed shard
        thrashes like an unsharded deployment.  Placement depends only on the
        key set and the shard set, so every frontend over the same registry
        agrees on it.
        """
        keys = list(keys)
        shards = self.shard_ids()
        if not shards:
            raise RuntimeError("cannot route: no shards on the ring")
        if max_load is None:
            max_load = math.ceil(len(keys) / len(shards)) if keys else 1
        elif max_load < 1:
            raise ValueError(f"max_load must be >= 1, got {max_load}")
        table: Dict[Hashable, List[str]] = {shard: [] for shard in shards}
        loads: Dict[Hashable, int] = {shard: 0 for shard in shards}
        for key in sorted(keys, key=lambda k: (_hash_point(f"key:{k}"), k)):
            shard = self._route_with_room(key, loads, max_load)
            table[shard].append(key)
            loads[shard] += 1
        return table

    # -- reporting -------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "shards": [repr(s) if not isinstance(s, (int, str)) else s for s in self.shard_ids()],
            "replicas": self.replicas,
            "points": len(self._points),
        }
