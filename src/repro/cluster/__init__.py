"""Sharded concurrent serving runtime layered on :mod:`repro.serve`.

The single-process :class:`~repro.serve.PersonalizationService` is one
engine cache, one scheduler, one thread.  This package partitions the
per-user engines across worker shards so cache locality and fused dispatch
survive concurrent multi-tenant traffic — the shard-by-tenant idiom of
production model serving:

* :mod:`repro.cluster.router` — :class:`ConsistentHashRouter`: deterministic
  tenant → shard placement with minimal movement on scale out/in.
* :mod:`repro.cluster.shard` — :class:`ShardWorker`: one thread owning a
  private engine cache + micro-batching scheduler, draining a bounded queue
  on a deadline-or-max-batch trigger.
* :mod:`repro.cluster.procworker` — :class:`ProcessShardWorker`: the same
  contract in a ``multiprocessing`` child, serving zero-copy from
  :mod:`repro.shm` shared-memory weight segments — shards that truly run on
  separate cores (``ClusterConfig(workers="process")``).
* :mod:`repro.cluster.frontend` — :class:`ClusterService`: the facade with
  the ``personalize`` / ``predict`` / ``predict_batch`` API, futures for
  async completion, 503-style admission control and graceful drain/shutdown.
* :mod:`repro.cluster.telemetry` — per-shard counters, latency percentiles
  (p50/p95/p99), queue-depth and batch-size distributions, merged into
  cluster totals by :meth:`ClusterService.stats`.

Quickstart::

    from repro.cluster import ClusterConfig, ClusterService

    with ClusterService(ClusterConfig(shards=4, cache_capacity=4)) as cluster:
        model_id = cluster.personalize(PersonalizeRequest(user_id=0, num_classes=3))
        responses = cluster.predict_batch(mixed_requests)   # routed + fused
        print(cluster.stats()["totals"]["latency"])         # p50/p95/p99
"""

from .frontend import WORKER_KINDS, ClusterConfig, ClusterService, RejectedResponse
from .procworker import ProcessShardWorker
from .router import ConsistentHashRouter
from .shard import ShardKilledError, ShardOverloadError, ShardWorker
from .telemetry import LatencyHistogram, ShardTelemetry, merge_snapshots

__all__ = [
    "ClusterConfig",
    "ClusterService",
    "RejectedResponse",
    "WORKER_KINDS",
    "ConsistentHashRouter",
    "ShardWorker",
    "ProcessShardWorker",
    "ShardOverloadError",
    "ShardKilledError",
    "LatencyHistogram",
    "ShardTelemetry",
    "merge_snapshots",
]
