"""Shard worker: one thread owning an engine-cache + scheduler slice.

A :class:`ShardWorker` is the concurrency unit of the cluster.  It owns a
*private* :class:`~repro.serve.cache.EngineCache` and
:class:`~repro.serve.scheduler.BatchScheduler` (neither is thread-safe;
single ownership is what makes the sharded design sound), drains a bounded
:class:`queue.Queue` of pending requests, and answers each request's
:class:`~concurrent.futures.Future`.

Batching trigger — *deadline or max batch*: the worker blocks for the first
request, then keeps collecting until either ``flush_interval_s`` elapses or
``max_batch_requests`` are in hand, and dispatches the whole slice through
its scheduler so co-tenant requests fuse into one
:meth:`~repro.backend.engine.Engine.predict_many` call.  Under a continuous
backlog the deadline never idles: requests are always waiting, so the worker
runs flush after flush at full batch.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import List, Optional

from ..errors import UnavailableError
from ..serve.cache import EngineCache
from ..serve.scheduler import BatchScheduler
from ..serve.types import PredictRequest
from .telemetry import ShardTelemetry

__all__ = ["ShardWorker", "ShardOverloadError", "ShardKilledError"]


class ShardOverloadError(UnavailableError):
    """A shard's bounded queue is full — the 503 of the serving runtime.

    An :class:`~repro.errors.UnavailableError` (code ``UNAVAILABLE``, still a
    ``RuntimeError`` for pre-gateway callers): overload is transient, so the
    gateway's retry middleware may re-attempt it.
    """

    status = 503


class ShardKilledError(UnavailableError):
    """The shard was killed abruptly (fault injection / crash simulation).

    Raised into every future the dead shard can no longer answer, and by
    :meth:`ShardWorker.submit` for traffic that keeps arriving afterwards —
    a clean, immediate error instead of a hang.  Surfaces as code
    ``UNAVAILABLE`` through the gateway (and stays a ``RuntimeError``).
    """

    status = 500


class _WorkItem:
    __slots__ = ("request", "future", "enqueued_at")

    def __init__(self, request: PredictRequest) -> None:
        self.request = request
        self.future: Future = Future()
        self.enqueued_at = time.monotonic()


class ShardWorker(threading.Thread):
    """One serving shard: bounded queue → deadline/max-batch drain → futures.

    The worker is created *unstarted* (call :meth:`start`, as
    :class:`~repro.cluster.frontend.ClusterService` does) so tests and
    benchmarks can stage a queue deterministically before draining begins.
    """

    def __init__(
        self,
        shard_id,
        registry,
        cache_capacity: int = 4,
        max_batch_size: Optional[int] = None,
        max_pending: int = 256,
        flush_interval_s: float = 0.002,
        poll_interval_s: float = 0.05,
        telemetry: Optional[ShardTelemetry] = None,
    ) -> None:
        super().__init__(name=f"repro-shard-{shard_id}", daemon=True)
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if flush_interval_s < 0 or poll_interval_s <= 0:
            raise ValueError("flush_interval_s must be >= 0 and poll_interval_s > 0")
        self.shard_id = shard_id
        self.cache = EngineCache(registry, capacity=cache_capacity)
        self.scheduler = BatchScheduler(self.cache, max_batch_size=max_batch_size)
        self.max_pending = max_pending
        self.max_batch_requests = max_batch_size or max_pending
        self.flush_interval_s = flush_interval_s
        self.poll_interval_s = poll_interval_s
        self.telemetry = telemetry or ShardTelemetry(shard_id)
        #: Fault-injection knob: seconds slept before every dispatch.  A
        #: chaos layer sets this to simulate a degraded worker — the queue
        #: backs up and admission control starts shedding load upstream.
        self.chaos_delay_s = 0.0
        self._queue: "queue.Queue[_WorkItem]" = queue.Queue(maxsize=max_pending)
        self._stopping = threading.Event()
        self._killed = threading.Event()
        # Serializes scheduler/cache access between the worker thread and
        # frontend-side accessors (engine(), evict()).
        self._lock = threading.RLock()

    # -- submission (frontend threads) ----------------------------------------
    def submit(self, request: PredictRequest) -> Future:
        """Enqueue one request; returns the future of its response.

        Raises :class:`ShardOverloadError` when the bounded queue is full —
        the frontend turns that into an admission-control rejection — and
        :class:`ShardKilledError` once the shard has been killed.
        """
        if self._stopping.is_set():
            raise self._down_error()
        item = _WorkItem(request)
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self.telemetry.record_reject()
            raise ShardOverloadError(
                f"shard {self.shard_id!r} queue full ({self.max_pending} pending)"
            ) from None
        if self._stopping.is_set() and self.ident is not None and not self.is_alive():
            # Lost the race with stop(): the drain loop may already have seen
            # an empty queue and exited, so nothing would ever answer this
            # item.  Fail whatever is stranded instead of leaking the future.
            self._fail_stranded()
        self.telemetry.record_submit()
        return item.future

    def pending(self) -> int:
        """Requests currently queued (approximate under concurrency)."""
        return self._queue.qsize()

    # -- frontend-side accessors ----------------------------------------------
    def engine(self, model_id: str):
        """The shard's cached engine for ``model_id`` (built on first use).

        Takes the shard's dispatch lock, so it is safe to call while the
        worker is live — e.g. for hardware-model workload extraction.
        """
        with self._lock:
            return self.cache.get(model_id)

    def evict(self, model_id: str) -> bool:
        """Drop one tenant's cached engine (after re-personalization)."""
        with self._lock:
            return self.cache.evict(model_id)

    def put_engine(self, model_id: str, engine) -> None:
        """Plant an engine in the shard's cache (chaos/testing seam).

        Takes the dispatch lock like :meth:`evict`, so replacing a live
        entry (e.g. fault injection poisoning it) never races a flush.
        """
        with self._lock:
            self.cache.put(model_id, engine)

    # -- the drain loop (worker thread) ---------------------------------------
    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        while True:
            items = self._collect()
            if self._killed.is_set():
                # Crash simulation: whatever is in hand (and still queued)
                # gets a clean failure, never an answer and never a hang.
                self._abort(items)
                return
            if items:
                self._dispatch(items)
            elif self._stopping.is_set() and self._queue.empty():
                return

    def _collect(self) -> List[_WorkItem]:
        """Block for one request, then batch until deadline or max batch."""
        try:
            first = self._queue.get(timeout=self.poll_interval_s)
        except queue.Empty:
            return []
        items = [first]
        # When stopping, drain whatever is already queued without waiting out
        # the deadline; the final flushes should not add latency to shutdown.
        deadline = time.monotonic() + (0 if self._stopping.is_set() else self.flush_interval_s)
        while len(items) < self.max_batch_requests:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    items.append(self._queue.get(timeout=remaining))
                else:
                    items.append(self._queue.get_nowait())
            except queue.Empty:
                break
        return items

    def _dispatch(self, items: List[_WorkItem]) -> None:
        delay = self.chaos_delay_s
        if delay > 0:
            time.sleep(delay)
        depth_after = self._queue.qsize()
        accepted: List[_WorkItem] = []
        try:
            with self._lock:
                for item in items:
                    try:
                        self.scheduler.submit(item.request)
                    except Exception as exc:  # e.g. duplicate request id
                        item.future.set_exception(exc)
                        self.telemetry.record_failure()
                    else:
                        accepted.append(item)
                try:
                    responses = self.scheduler.flush()
                except Exception as exc:  # e.g. unknown model id in the batch
                    for item in accepted:
                        item.future.set_exception(exc)
                    self.telemetry.record_failure(len(accepted))
                    return
            now = time.monotonic()
            for item, response in zip(accepted, responses):
                if item.request.trace is not None:
                    # Queue wait + batch + dispatch, recorded BEFORE the
                    # future resolves: set_result wakes the waiting caller
                    # first and runs callbacks second, so a span added any
                    # later could miss the serialization window.
                    item.request.trace.add("shard", now - item.enqueued_at)
                item.future.set_result(response)
                self.telemetry.record_completion(now - item.enqueued_at)
            self.telemetry.record_dispatch(len(items), depth_after)
        finally:
            for _ in items:
                self._queue.task_done()

    # -- lifecycle -------------------------------------------------------------
    def drain(self) -> None:
        """Block until every queued request has been dispatched and answered."""
        self._queue.join()

    def _down_error(self) -> UnavailableError:
        """The error a dead shard answers with (kill vs orderly shutdown)."""
        if self._killed.is_set():
            return ShardKilledError(f"shard {self.shard_id!r} was killed")
        return UnavailableError(f"shard {self.shard_id!r} is shut down")

    def _abort(self, items: List[_WorkItem]) -> None:
        """Fail ``items`` and everything still queued (killed-shard path)."""
        for item in items:
            item.future.set_exception(self._down_error())
            self.telemetry.record_failure()
            self._queue.task_done()
        self._fail_stranded()

    def _fail_stranded(self) -> None:
        """Answer anything left in a dead worker's queue with an exception.

        Only called once the drain thread is known to have exited (or for a
        never-started worker at stop time), so this is the sole consumer.
        """
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            item.future.set_exception(self._down_error())
            self.telemetry.record_failure()
            self._queue.task_done()

    def kill(self, timeout: Optional[float] = None) -> None:
        """Abrupt chaos stop: no drain, no final flush — the crash simulation.

        Every request the shard can no longer answer (in hand, queued, or
        arriving afterwards) fails with :class:`ShardKilledError` instead of
        hanging.  The dead shard keeps its ring ownership until the frontend
        heals the fleet (``ClusterService.remove_shard``), so mid-outage
        traffic for its tenants fails fast rather than silently rerouting —
        exactly what a crashed replica looks like to a router that has not
        yet noticed.  Idempotent; safe on a never-started worker.
        """
        self._killed.set()
        self._stopping.set()
        if self.is_alive():
            self.join(timeout=timeout if timeout is not None else 2 * self.poll_interval_s + 5.0)
        if not self.is_alive():
            self._fail_stranded()

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the worker; with ``drain`` (default) finish queued work first.

        Without ``drain``, already-queued requests are still answered (the
        loop empties the queue before exiting) but no deadline batching is
        applied to them.  Idempotent; safe to call on a never-started worker.
        Requests that slip into the queue concurrently with shutdown have
        their futures failed rather than leaked.
        """
        if drain and self.is_alive():
            self._queue.join()
        self._stopping.set()
        if self.is_alive():
            self.join(timeout=timeout if timeout is not None else 2 * self.poll_interval_s + 5.0)
        if not self.is_alive():
            self._fail_stranded()

    def stats(self) -> dict:
        """This shard's full report: queue, cache, scheduler, telemetry."""
        return {
            "shard": self.shard_id,
            "pending": self.pending(),
            "max_pending": self.max_pending,
            "cache": self.cache.stats(),
            "scheduler": self.scheduler.stats(),
            "telemetry": self.telemetry.snapshot(),
        }
