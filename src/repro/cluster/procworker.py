"""Process shard worker: the GIL-escaping twin of :class:`ShardWorker`.

A :class:`ProcessShardWorker` satisfies the same contract as the threaded
worker — ``submit`` → future, ``kill`` / ``drain`` / ``stop``, telemetry
snapshots, the chaos seams — but runs its cache/scheduler/engine loop in a
``multiprocessing`` child, so shards on a multi-core host truly compute in
parallel instead of interleaving under one interpreter lock.

The split is deliberate about what crosses the process boundary:

* **Weights never do.**  The parent's
  :class:`~repro.shm.SharedWeightStore` publishes each model's encoded
  formats into named shared-memory segments; the child maps them zero-copy
  through a :class:`~repro.shm.SharedModelSource` plugged in where the
  threaded worker's cache holds the registry.  The control channel carries
  only manifest entries (names + array layouts).
* **Control rides the gateway's wire envelopes.**  Every parent→child frame
  is an :class:`~repro.gateway.wire.ApiRequest` and every reply an
  :class:`~repro.gateway.wire.ApiResponse` over a duplex pipe — the same
  byte-stable JSON the cluster already speaks externally, reused as its
  internal RPC, with typed :class:`~repro.errors.ApiError`\\ s surviving the
  hop.  A per-worker reply-pump thread matches replies to frame ids and
  resolves the caller's futures.

Ordering is the correctness backbone: the pipe is FIFO and the child
handles frames in order, so an ``install`` sent before a ``predict`` is
visible to it, a ``drain`` reply proves every earlier predict was answered,
and the ``stop`` acknowledgement doubles as the final telemetry snapshot.
A SIGKILLed child drops the pipe; the pump thread sees EOF and fails every
in-flight future with :class:`~repro.cluster.shard.ShardKilledError` — no
hangs, same failure surface as the threaded crash simulation.
"""

from __future__ import annotations

import base64
import multiprocessing
import os
import pickle
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Dict, Optional

from ..errors import error_from_exception
from ..gateway.wire import ApiRequest, ApiResponse
from ..serve.types import PredictRequest, PredictResponse
from ..trace import Trace
from ..shm import SharedWeightStore
from .shard import ShardKilledError, ShardOverloadError
from .telemetry import LatencyHistogram, ShardTelemetry

__all__ = ["ProcessShardWorker", "start_method", "mp_context"]

#: Environment override for the multiprocessing start method.
_START_ENV = "REPRO_MP_START"

#: Default RPC timeout (seconds) for synchronous control calls.  Generous —
#: a loaded shard answers control frames only between dispatch batches.
_RPC_TIMEOUT_S = 30.0


def start_method() -> str:
    """The start method process workers use (env-overridable).

    ``fork`` when the platform offers it — child setup is milliseconds and
    the attached segments' tracker accounting stays with the parent —
    otherwise the platform default (``spawn`` on macOS/Windows).  Override
    with ``REPRO_MP_START=spawn|forkserver|fork``.
    """
    override = os.environ.get(_START_ENV)
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def mp_context():
    """The multiprocessing context matching :func:`start_method`."""
    return multiprocessing.get_context(start_method())


# ---------------------------------------------------------------------------
# Child process
# ---------------------------------------------------------------------------

def _child_stats(source, cache, scheduler, telemetry, backlog) -> Dict:
    """The stats payload a child marshals back (schema of ShardWorker.stats).

    Also ships the raw latency reservoir: percentiles cannot be merged from
    summaries, and the parent's :meth:`ShardTelemetry.merged_latency`
    contract needs the samples themselves.
    """
    latency = telemetry.latency
    return {
        "pending": len(backlog),
        "installed": source.model_ids(),
        "cache": cache.stats(),
        "scheduler": scheduler.stats(),
        "telemetry": telemetry.snapshot(),
        "latency_reservoir": {
            "samples": list(latency.samples()),
            "count": latency.count,
            "total": latency.total,
            "max": latency.max,
            "max_samples": latency.max_samples,
        },
    }


def _worker_main(conn, shard_id, cfg: Dict) -> None:
    """Child entry point: drain wire envelopes, serve from shared weights.

    Module-level (not a closure) so every start method can import it.  The
    loop mirrors the threaded worker's deadline-or-max-batch trigger: one
    predict is taken, further predicts are collected until the flush
    deadline passes, the batch limit is hit, or a control frame arrives
    (control frames never overtake the predicts sent before them).
    """
    # Late imports keep the module importable without triggering the full
    # serving stack at parent import time (spawn re-imports this module).
    from ..serve.cache import EngineCache
    from ..serve.scheduler import BatchScheduler
    from ..shm import SharedModelSource

    source = SharedModelSource(untrack=bool(cfg.get("untrack")))
    cache = EngineCache(source, capacity=int(cfg["cache_capacity"]))
    scheduler = BatchScheduler(cache, max_batch_size=cfg["max_batch_size"])
    telemetry = ShardTelemetry(shard_id)
    flush_interval_s = float(cfg["flush_interval_s"])
    max_batch_requests = int(cfg["max_batch_requests"])
    chaos_delay_s = 0.0
    backlog: "deque[ApiRequest]" = deque()
    # Window bracketing: while depth > 0 predicts are held, not dispatched.
    # The frontend brackets every burst with window begin/end frames, which
    # ride the same FIFO pipe as the predicts between them — so the burst
    # fuses as one flush *structurally*, independent of host scheduling.
    window_depth = 0
    held: "deque[ApiRequest]" = deque()

    def recv() -> Optional[ApiRequest]:
        try:
            return ApiRequest.from_json(conn.recv_bytes().decode("utf-8"))
        except (EOFError, OSError):
            return None

    def reply(request: ApiRequest, payload: Dict) -> None:
        send(ApiResponse.success(request, payload))

    def reply_error(request: ApiRequest, exc: BaseException) -> None:
        send(ApiResponse.failure(request, error_from_exception(exc)))

    def send(response: ApiResponse) -> None:
        try:
            conn.send_bytes(response.to_json().encode("utf-8"))
        except (BrokenPipeError, OSError):  # parent gone; nothing to answer
            pass

    def dispatch(batch) -> None:
        """Mirror of ``ShardWorker._dispatch`` answering over the pipe."""
        if chaos_delay_s > 0:
            time.sleep(chaos_delay_s)
        depth_after = len(backlog)
        accepted = []
        for frame in batch:
            request = PredictRequest.from_dict(frame.payload["request"])
            if frame.payload.get("trace"):
                # The parent flagged this frame as traced: give the request a
                # child-local Trace so the scheduler records the engine span;
                # the spans ride back inside the reply payload.
                request.trace = Trace()
            try:
                scheduler.submit(request)
            except Exception as exc:  # e.g. duplicate request id
                reply_error(frame, exc)
                telemetry.record_failure()
            else:
                accepted.append((frame, request))
        try:
            responses = scheduler.flush()
        except Exception as exc:  # e.g. missing manifest for a batched id
            for frame, _ in accepted:
                reply_error(frame, exc)
            telemetry.record_failure(len(accepted))
            return
        now = time.monotonic()
        for (frame, request), response in zip(accepted, responses):
            payload = response.to_dict()
            if request.trace is not None:
                # CLOCK_MONOTONIC is system-wide, so the parent's enqueue
                # stamp is comparable here: the shard span covers pipe
                # transit + child queueing + batch collection + dispatch.
                request.trace.add("shard", now - frame.payload["enqueued_monotonic"])
                payload["trace"] = request.trace.to_wire()
            reply(frame, payload)
            telemetry.record_completion(now - frame.payload["enqueued_monotonic"])
        telemetry.record_dispatch(len(batch), depth_after)

    def flush_held() -> None:
        """Dispatch every held predict (window end, drain, or stop)."""
        while held:
            batch = []
            while held and len(batch) < max_batch_requests:
                batch.append(held.popleft())
            dispatch(batch)

    def handle_install(frame: ApiRequest) -> None:
        try:
            entry = frame.payload["entry"]
            replaced = source.install(entry)
            if replaced:
                # A fresh weight version supersedes the cached engine.
                cache.evict(entry["model_id"])
            reply(frame, {"version": entry["version"], "replaced": replaced})
        except Exception as exc:
            reply_error(frame, exc)

    def collect(first: ApiRequest):
        """Quiescence-or-max-batch: grow ``first`` into a dispatch batch.

        The threaded worker's whole-window fusion falls out of the GIL: the
        frontend queues an entire burst before the worker thread wakes, so
        co-tenant requests always fuse — which is also what makes its
        predictions bit-identical to the single service's (fusion changes
        BLAS summation order, grouping does not).  A child process races
        the parent's frame serialization instead, so a fixed deadline from
        the first frame would fuse partial windows on a loaded host.  The
        quiescence trigger — collect until ``flush_interval_s`` passes with
        *no* new frame — restores the whole-window property: a parent
        mid-burst keeps the window open, and an idle pipe closes it after
        one flush interval, same as the threaded deadline.
        """
        batch = [first]
        deadline = time.monotonic() + flush_interval_s
        while len(batch) < max_batch_requests:
            # Installs interleave with the predicts that need them (the
            # parent sends install-then-predict per first use); applying one
            # mid-collection is safe — it only adds a manifest — and must
            # not chop the batch, or first-wave fusion would differ from
            # the threaded path's.  Any other control frame ends collection.
            while backlog and len(batch) < max_batch_requests:
                if backlog[0].method == "predict":
                    batch.append(backlog.popleft())
                    deadline = time.monotonic() + flush_interval_s
                elif backlog[0].method == "install":
                    handle_install(backlog.popleft())
                else:
                    break
            if backlog or len(batch) >= max_batch_requests:
                break  # a barrier control frame is next, or the batch is full
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not conn.poll(remaining):
                break
            frame = recv()
            if frame is None:
                break
            if frame.method == "predict":
                telemetry.record_submit()
                batch.append(frame)
                deadline = time.monotonic() + flush_interval_s
            elif frame.method == "install":
                handle_install(frame)
            else:
                backlog.append(frame)
                break
        return batch

    while True:
        if backlog:
            frame = backlog.popleft()
        else:
            frame = recv()
            if frame is None:
                break  # parent vanished
            while conn.poll(0):
                queued = recv()
                if queued is None:
                    break
                backlog.append(queued)
        method = frame.method

        if method == "predict":
            telemetry.record_submit()
            if window_depth > 0:
                held.append(frame)
            else:
                dispatch(collect(frame))
        elif method == "window":
            if frame.payload.get("action") == "begin":
                window_depth += 1
            else:
                window_depth = max(0, window_depth - 1)
                if window_depth == 0:
                    flush_held()
            reply(frame, {"depth": window_depth})
        elif method == "install":
            handle_install(frame)
        elif method == "evict":
            reply(frame, {"evicted": cache.evict(frame.payload["model_id"])})
        elif method == "put_engine":
            try:
                engine = pickle.loads(base64.b64decode(frame.payload["engine"]))
                cache.put(frame.payload["model_id"], engine)
                reply(frame, {})
            except Exception as exc:
                reply_error(frame, exc)
        elif method == "chaos":
            chaos_delay_s = float(frame.payload["delay_s"])
            reply(frame, {"delay_s": chaos_delay_s})
        elif method == "stats":
            reply(frame, _child_stats(source, cache, scheduler, telemetry, backlog))
        elif method == "drain":
            # FIFO: every predict sent before this frame has been answered
            # (an unbalanced window must not strand held work past a drain).
            flush_held()
            reply(frame, {"drained": True})
        elif method == "stop":
            flush_held()
            reply(frame, _child_stats(source, cache, scheduler, telemetry, backlog))
            break
        else:
            reply_error(frame, ValueError(f"unknown worker op {method!r}"))

    source.close()
    conn.close()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

class _TelemetryProxy(ShardTelemetry):
    """The parent-side face of a child's telemetry.

    The frontend's contract with ``worker.telemetry`` is narrow: record
    admission rejections, take snapshots, merge latency.  Rejections happen
    in the parent (an over-high-water submit never reaches the child), so
    they are recorded here; everything else is fetched from the child and
    overlaid.
    """

    def __init__(self, worker: "ProcessShardWorker") -> None:
        super().__init__(worker.shard_id)
        self._worker = worker

    def snapshot(self) -> Dict[str, object]:
        child = self._worker._child_telemetry()
        snapshot = dict(child)
        with self._lock:
            snapshot["rejected"] = int(child.get("rejected", 0)) + self.rejected
        return snapshot

    def merged_latency(self) -> LatencyHistogram:
        return self._worker._child_latency()


class ProcessShardWorker:
    """One serving shard in its own process, driven over wire envelopes.

    Drop-in for :class:`~repro.cluster.shard.ShardWorker` from the
    frontend's point of view; constructed against a
    :class:`~repro.shm.SharedWeightStore` instead of the registry (the
    registry stays authoritative in the parent — the child only ever sees
    published manifests).
    """

    def __init__(
        self,
        shard_id,
        store: SharedWeightStore,
        cache_capacity: int = 4,
        max_batch_size: Optional[int] = None,
        max_pending: int = 256,
        flush_interval_s: float = 0.002,
        poll_interval_s: float = 0.05,
        telemetry: Optional[ShardTelemetry] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if flush_interval_s < 0 or poll_interval_s <= 0:
            raise ValueError("flush_interval_s must be >= 0 and poll_interval_s > 0")
        self.shard_id = shard_id
        self.store = store
        self.cache_capacity = cache_capacity
        self.max_pending = max_pending
        self.max_batch_size = max_batch_size
        self.max_batch_requests = max_batch_size or max_pending
        self.flush_interval_s = flush_interval_s
        self.poll_interval_s = poll_interval_s
        self.telemetry = telemetry or _TelemetryProxy(self)

        self._ctx = mp_context()
        self._process = None
        self._pump: Optional[threading.Thread] = None
        self._conn = None  # parent end of the duplex pipe
        self._lock = threading.Lock()  # inflight table + frame ids + send
        self._inflight: Dict[str, dict] = {}
        self._pending_predicts = 0
        self._next_frame = 0
        self._installed: Dict[str, int] = {}
        self._engines: Dict[str, object] = {}  # parent-side engine() cache
        self._chaos_delay_s = 0.0
        self._stopping = threading.Event()
        self._killed = threading.Event()
        self._released = True  # no store ref held until start()
        # Fallback telemetry for a child that is gone: the last stats the
        # child reported (the stop acknowledgement carries the final ones).
        empty = ShardTelemetry(shard_id)
        self._last_child_stats: Dict = {
            "pending": 0,
            "installed": [],
            "cache": {
                "capacity": cache_capacity, "resident": 0, "hits": 0,
                "misses": 0, "evictions": 0, "hit_rate": 0.0,
            },
            "scheduler": {
                "pending": 0, "requests_served": 0, "dispatches": 0,
                "largest_group": 0, "max_batch_size": max_batch_size,
                "depth_max": 0,
            },
            "telemetry": empty.snapshot(),
            "latency_reservoir": {
                "samples": [], "count": 0, "total": 0.0, "max": 0.0,
                "max_samples": empty.latency.max_samples,
            },
        }

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Fork/spawn the child and start the reply pump (idempotent)."""
        if self._process is not None:
            return
        self.store.acquire()
        self._released = False
        # Spawn the parent's resource tracker *before* forking: fork children
        # then inherit it, so their segment attachments register into the
        # parent's (deduplicating) tracker instead of spawning per-child
        # trackers that would unlink live segments when the child exits.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        cfg = {
            "cache_capacity": self.cache_capacity,
            "max_batch_size": self.max_batch_size,
            "max_batch_requests": self.max_batch_requests,
            "flush_interval_s": self.flush_interval_s,
            "untrack": start_method() == "spawn",
        }
        self._process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.shard_id, cfg),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self._process.start()
        # The parent must drop its copy of the child end, or a dead child
        # never produces EOF on this side of the pipe.
        child_conn.close()
        self._conn = parent_conn
        self._pump = threading.Thread(
            target=self._pump_replies, name=f"repro-shard-{self.shard_id}-pump", daemon=True
        )
        self._pump.start()

    def is_alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    # -- wire plumbing ---------------------------------------------------------
    def _send(self, method: str, payload: Dict, kind: str, trace: Optional[Trace] = None) -> Future:
        """Register a frame in the inflight table and put it on the pipe.

        Raises the shard's down-error if the worker is not accepting frames.
        Callers that need the answer wait on the returned future; fire-and-
        forget callers just drop it (the pump still resolves it).  ``trace``
        is the caller's span collector; the pump merges the child's spans
        into it before resolving the future.
        """
        future: Future = Future()
        with self._lock:
            if self._conn is None or self._killed.is_set():
                raise self._down_error()
            frame_id = f"f-{self._next_frame:08d}"
            self._next_frame += 1
            self._inflight[frame_id] = {
                "kind": kind,
                "future": future,
                "enqueued_at": time.monotonic(),
                "trace": trace,
            }
            if kind == "predict":
                self._pending_predicts += 1
            envelope = ApiRequest(method=method, payload=payload, request_id=frame_id)
            try:
                self._conn.send_bytes(envelope.to_json().encode("utf-8"))
            except (BrokenPipeError, OSError):
                self._drop_frame(frame_id)
                raise self._down_error() from None
        return future

    def _drop_frame(self, frame_id: str) -> Optional[dict]:
        """Remove one inflight entry (lock must be held by the caller)."""
        item = self._inflight.pop(frame_id, None)
        if item is not None and item["kind"] == "predict":
            self._pending_predicts -= 1
        return item

    def _call(self, method: str, payload: Dict, timeout: float = _RPC_TIMEOUT_S) -> Dict:
        """Synchronous RPC: send one control frame and wait for its payload."""
        return self._send(method, payload, kind="raw").result(timeout)

    def _pump_replies(self) -> None:
        """Reply pump: decode envelopes off the pipe and resolve futures.

        Exits on EOF (child stopped or SIGKILLed) and fails everything still
        in flight — the no-hangs guarantee of the process path.
        """
        conn = self._conn
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                response = ApiResponse.from_json(raw.decode("utf-8"))
            except Exception:  # pragma: no cover - malformed child frame
                continue
            with self._lock:
                item = self._drop_frame(response.request_id)
            if item is None:
                continue
            future = item["future"]
            if not response.ok:
                future.set_exception(response.to_error())
            elif item["kind"] == "predict":
                payload = response.payload
                spans = payload.pop("trace", None) if isinstance(payload, dict) else None
                if spans and item.get("trace") is not None:
                    # Merge child spans BEFORE resolving: set_result wakes
                    # the waiting caller first, and it reads the trace
                    # immediately after future.result() returns.
                    item["trace"].extend_wire(spans)
                result = PredictResponse.from_dict(payload)
                if item.get("trace") is not None:
                    result.trace = item["trace"]
                future.set_result(result)
            else:
                future.set_result(response.payload)
        self._fail_inflight()

    def _fail_inflight(self) -> None:
        """Answer every outstanding future with the shard's down-error."""
        with self._lock:
            stranded = list(self._inflight)
            items = [self._drop_frame(frame_id) for frame_id in stranded]
        error = self._down_error()
        for item in items:
            if item is not None and not item["future"].done():
                item["future"].set_exception(error)

    def _down_error(self):
        if self._killed.is_set():
            return ShardKilledError(f"shard {self.shard_id!r} was killed")
        from ..errors import UnavailableError

        return UnavailableError(f"shard {self.shard_id!r} is shut down")

    # -- submission (frontend threads) -----------------------------------------
    def submit(self, request: PredictRequest) -> Future:
        """Enqueue one request with the shard's child; returns its future.

        Same error surface as the threaded worker: a full inflight window
        raises :class:`ShardOverloadError`, a dead shard raises
        :class:`ShardKilledError` / ``UnavailableError``.  The model's
        weights are published/installed on first use (and re-installed when
        re-personalization bumped the published version) *before* the
        predict frame — FIFO makes the order a guarantee.
        """
        if self._stopping.is_set() or not self.is_alive():
            raise self._down_error()
        self._ensure_installed(request.model_id)
        with self._lock:
            if self._pending_predicts >= self.max_pending:
                self.telemetry.record_reject()
                raise ShardOverloadError(
                    f"shard {self.shard_id!r} queue full ({self.max_pending} pending)"
                )
        payload = {"request": request.to_dict(), "enqueued_monotonic": time.monotonic()}
        if request.trace is not None:
            payload["trace"] = True
        return self._send("predict", payload, kind="predict", trace=request.trace)

    def _ensure_installed(self, model_id: str) -> None:
        """Publish + install the model's current weights if the child lacks them."""
        entry, version = self.store.ensure(model_id)
        with self._lock:
            if self._installed.get(model_id) == version:
                return
            self._installed[model_id] = version
            self._engines.pop(model_id, None)  # parent view refreshes too
        # Fire-and-forget: the reply resolves through the pump, and FIFO
        # ordering guarantees the child installs before the next predict.
        self._send("install", {"entry": entry}, kind="raw")

    def pending(self) -> int:
        """Predict frames currently in flight with the child."""
        with self._lock:
            return self._pending_predicts

    # -- window bracketing ------------------------------------------------------
    # The threaded worker fuses a whole burst because the frontend stages it
    # under the GIL before the shard thread wakes; a child process instead
    # races the parent's frame serialization, and partial fusion changes BLAS
    # summation order (breaking cross-deployment bit-exactness).  Bracketing a
    # burst makes fusion structural: ``begin`` tells the child to hold
    # predicts, ``end`` flushes them as one batch — FIFO pipe ordering
    # guarantees every predict sent in between is inside the window.
    def begin_window(self) -> None:
        """Start holding predicts child-side until the matching end_window."""
        self._window_frame("begin")

    def end_window(self) -> None:
        """Close the bracket: the child dispatches the held burst as one flush."""
        self._window_frame("end")

    def _window_frame(self, action: str) -> None:
        if not self.is_alive() or self._stopping.is_set():
            return
        try:
            # Fire-and-forget (the child acknowledges so the inflight entry
            # clears, but nothing waits on it): a window around zero accepted
            # requests must not add a round trip per shard.
            self._send("window", {"action": action}, kind="raw")
        except RuntimeError:
            pass  # racing a kill/stop; held work is failed by the pump

    # -- frontend-side accessors ----------------------------------------------
    def engine(self, model_id: str):
        """A parent-side engine over the same shared bytes the child serves.

        The threaded worker hands out its cache's engine; a child process's
        object cannot cross the pipe, so this maps the published segments in
        the parent — byte-identical weights, same formats, usable for
        hardware-model workload extraction.
        """
        self._ensure_installed(model_id)
        with self._lock:
            engine = self._engines.get(model_id)
        if engine is None:
            engine = self.store.build_engine(model_id)
            with self._lock:
                self._engines[model_id] = engine
        return engine

    def evict(self, model_id: str) -> bool:
        """Drop the tenant's engine child-side (and the parent mirror)."""
        with self._lock:
            self._engines.pop(model_id, None)
            self._installed.pop(model_id, None)
        if not self.is_alive():
            return False
        try:
            return bool(self._call("evict", {"model_id": model_id})["evicted"])
        except (RuntimeError, TimeoutError):
            return False

    def put_engine(self, model_id: str, engine) -> None:
        """Plant an engine in the child's cache (chaos/testing seam).

        The engine must be picklable — true for the fault injector's
        :class:`~repro.loadgen.faults.PoisonedEngine`; real attached engines
        are deliberately not, which keeps the zero-copy weight path the only
        way live weights reach a child.
        """
        encoded = base64.b64encode(pickle.dumps(engine)).decode("ascii")
        self._call("put_engine", {"model_id": model_id, "engine": encoded})

    @property
    def chaos_delay_s(self) -> float:
        """Fault-injection knob: seconds the child sleeps before dispatches.

        Assignment mirrors the threaded worker's plain attribute (the fault
        injector sets it directly); the setter forwards the value over the
        control channel.
        """
        return self._chaos_delay_s

    @chaos_delay_s.setter
    def chaos_delay_s(self, delay_s: float) -> None:
        self._chaos_delay_s = float(delay_s)
        if self.is_alive():
            try:
                self._send("chaos", {"delay_s": float(delay_s)}, kind="raw")
            except RuntimeError:  # racing a kill; the knob no longer matters
                pass

    # -- telemetry -------------------------------------------------------------
    def _refresh_child_stats(self) -> Dict:
        if self.is_alive() and not self._stopping.is_set():
            try:
                self._last_child_stats = self._call("stats", {})
            except (RuntimeError, TimeoutError):
                pass  # keep the cached snapshot
        return self._last_child_stats

    def _child_telemetry(self) -> Dict:
        return dict(self._refresh_child_stats()["telemetry"])

    def _child_latency(self) -> LatencyHistogram:
        """Rebuild the child's latency reservoir for lossless cluster merges."""
        reservoir = self._refresh_child_stats()["latency_reservoir"]
        histogram = LatencyHistogram(max_samples=int(reservoir["max_samples"]))
        for sample in reservoir["samples"]:
            histogram._samples.append(float(sample))
        histogram.count = int(reservoir["count"])
        histogram.total = float(reservoir["total"])
        histogram.max = float(reservoir["max"])
        return histogram

    # -- lifecycle -------------------------------------------------------------
    def drain(self) -> None:
        """Block until every submitted request has been answered.

        A ``drain`` frame queues behind all outstanding predicts; its reply
        is the proof they were dispatched and answered.
        """
        if not self.is_alive():
            return
        try:
            self._call("drain", {}, timeout=None)
        except RuntimeError:
            pass  # raced a kill/stop; inflight futures are failed by the pump

    def kill(self, timeout: Optional[float] = None) -> None:
        """Abrupt chaos stop: SIGKILL the child, fail everything in flight.

        The crash simulation of the process path — no drain, no final
        flush, no goodbye frame.  The dropped pipe EOFs the reply pump,
        which answers every outstanding future with
        :class:`ShardKilledError`; late submissions fail fast the same way.
        Idempotent; safe on a never-started worker.
        """
        self._killed.set()
        self._stopping.set()
        process = self._process
        if process is not None:
            process.kill()
            process.join(timeout if timeout is not None else 10.0)
        if self._pump is not None:
            self._pump.join(timeout=5.0)
        self._fail_inflight()
        self._release_store()

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Graceful stop: finish queued work, collect final telemetry, join.

        The ``stop`` frame queues behind every outstanding predict (FIFO),
        so queued work is answered before the acknowledgement regardless of
        ``drain``; the acknowledgement payload is the child's final stats,
        cached for post-mortem ``stats()`` calls.  Idempotent; safe on a
        never-started worker.
        """
        if self._stopping.is_set():
            self._fail_inflight()
            return
        self._stopping.set()
        if self.is_alive():
            try:
                final = self._send("stop", {"drain": drain}, kind="raw").result(
                    timeout if timeout is not None else _RPC_TIMEOUT_S
                )
                self._last_child_stats = final
            except (RuntimeError, TimeoutError):
                pass  # the child died mid-shutdown; the pump fails the rest
        process = self._process
        if process is not None:
            process.join(timeout if timeout is not None else _RPC_TIMEOUT_S)
            if process.is_alive():  # pragma: no cover - unresponsive child
                process.kill()
                process.join(5.0)
        if self._pump is not None:
            self._pump.join(timeout=5.0)
        self._fail_inflight()
        self._release_store()

    def _release_store(self) -> None:
        if not self._released:
            self._released = True
            self.store.release()

    # -- reporting -------------------------------------------------------------
    def stats(self) -> dict:
        """This shard's full report, same schema as the threaded worker's."""
        child = self._refresh_child_stats()
        return {
            "shard": self.shard_id,
            "pending": self.pending(),
            "max_pending": self.max_pending,
            "cache": child["cache"],
            "scheduler": child["scheduler"],
            "telemetry": self.telemetry.snapshot(),
        }
