"""Loss functions for classifier training."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import functional as F

__all__ = ["CrossEntropyLoss", "accuracy", "top_k_accuracy"]


class CrossEntropyLoss:
    """Mean cross-entropy over integer class targets, with optional label smoothing."""

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = label_smoothing
        self._cache: dict = {}

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"Expected 2-D logits, got shape {logits.shape}")
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ValueError(
                f"Targets shape {targets.shape} incompatible with logits {logits.shape}"
            )
        loss, self._cache = F.cross_entropy_forward(logits, targets, self.label_smoothing)
        return loss

    def backward(self) -> np.ndarray:
        """Gradient of the loss with respect to the logits (call after ``forward``)."""
        if not self._cache:
            raise RuntimeError("CrossEntropyLoss.backward() called before forward()")
        return F.cross_entropy_backward(self._cache)

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    preds = logits.argmax(axis=1)
    return float((preds == targets).mean())


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy in [0, 1]."""
    k = min(k, logits.shape[1])
    top_k = np.argsort(logits, axis=1)[:, -k:]
    hits = (top_k == targets[:, None]).any(axis=1)
    return float(hits.mean())
