"""Optimisers and learning-rate schedules.

The paper fine-tunes with SGD (momentum 0.9, weight decay 4e-5); we provide
SGD with momentum / Nesterov / weight decay plus step and cosine schedules.
Optimisers are mask-aware: if a parameter carries a pruning mask, the update
is re-masked after the step so pruned weights stay exactly zero (unless the
caller explicitly wants dense updates, as the straight-through estimator in
:mod:`repro.pruning.ste` does before re-projection).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from .module import Parameter

__all__ = ["SGD", "StepLR", "CosineAnnealingLR", "ConstantLR"]


class SGD:
    """Stochastic gradient descent with momentum and decoupled weight masking.

    Parameters
    ----------
    parameters:
        Iterable of :class:`~repro.nn.module.Parameter`.
    lr:
        Learning rate.
    momentum:
        Classical momentum coefficient (0 disables the velocity buffer).
    weight_decay:
        L2 penalty added to the gradient.
    nesterov:
        Use Nesterov momentum.
    respect_masks:
        When ``True`` (default) the parameter mask is re-applied after every
        step so pruned weights remain zero.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 4e-5,
        nesterov: bool = False,
        respect_masks: bool = True,
    ) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("SGD received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"Learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self.respect_masks = respect_masks
        self._velocity: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one SGD update using the accumulated gradients."""
        for idx, param in enumerate(self.parameters):
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data

            if self.momentum > 0:
                velocity = self._velocity.get(idx)
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[idx] = velocity
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad

            param.data -= self.lr * update
            if self.respect_masks:
                param.apply_mask()

    def state_dict(self) -> dict:
        """Serialisable optimiser state (velocities and hyper-parameters)."""
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": {k: v.copy() for k, v in self._velocity.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self._velocity = {k: v.copy() for k, v in state["velocity"].items()}


class _Scheduler:
    """Base class for learning-rate schedules attached to an :class:`SGD` instance."""

    def __init__(self, optimizer: SGD) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and update the optimiser's learning rate."""
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr


class ConstantLR(_Scheduler):
    """Keep the learning rate fixed (the default when no schedule is given)."""

    def get_lr(self, epoch: int) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class CosineAnnealingLR(_Scheduler):
    """Cosine-annealed learning rate over ``t_max`` epochs."""

    def __init__(self, optimizer: SGD, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))
