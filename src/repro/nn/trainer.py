"""Training, fine-tuning and evaluation loops.

The loops operate on any iterable of ``(images, targets)`` batches (the
loaders in :mod:`repro.data` provide them) and on models implementing the
``forward`` / ``backward`` interface of :class:`repro.nn.module.Module`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .loss import CrossEntropyLoss, accuracy
from .module import Module
from .optim import SGD, ConstantLR, _Scheduler

__all__ = ["TrainConfig", "TrainResult", "Trainer", "evaluate", "accumulate_gradients"]


@dataclass
class TrainConfig:
    """Hyper-parameters for (fine-)tuning, defaulting to the paper's recipe."""

    epochs: int = 5
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 4e-5
    label_smoothing: float = 0.0
    max_batches_per_epoch: Optional[int] = None
    verbose: bool = False


@dataclass
class TrainResult:
    """Per-epoch history returned by :class:`Trainer.fit`."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracy[-1] if self.val_accuracy else float("nan")

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")


def evaluate(model: Module, batches: Iterable[Tuple[np.ndarray, np.ndarray]]) -> float:
    """Top-1 accuracy of ``model`` over all batches (evaluation mode)."""
    model.eval()
    correct = 0
    total = 0
    for images, targets in batches:
        logits = model(images)
        preds = logits.argmax(axis=1)
        correct += int((preds == targets).sum())
        total += len(targets)
    if total == 0:
        raise ValueError("evaluate() received an empty batch iterable")
    return correct / total


def accumulate_gradients(
    model: Module,
    batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    loss_fn: Optional[CrossEntropyLoss] = None,
    max_batches: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Accumulate parameter gradients over a set of batches without updating weights.

    This is the primitive used to estimate the class-aware saliency score:
    gradients are averaged over the user-preferred class samples and returned
    keyed by qualified parameter name.  The model is left in evaluation mode
    with its gradients cleared.
    """
    loss_fn = loss_fn or CrossEntropyLoss()
    model.eval()
    model.zero_grad()

    batch_count = 0
    for images, targets in batches:
        if max_batches is not None and batch_count >= max_batches:
            break
        logits = model(images)
        loss_fn(logits, targets)
        grad_logits = loss_fn.backward()
        model.backward(grad_logits)
        batch_count += 1

    if batch_count == 0:
        raise ValueError("accumulate_gradients() received no batches")

    grads: Dict[str, np.ndarray] = {}
    for name, param in model.named_parameters():
        if param.grad is not None:
            grads[name] = param.grad / batch_count
    model.zero_grad()
    return grads


class Trainer:
    """SGD training / fine-tuning driver.

    Example
    -------
    >>> trainer = Trainer(model, TrainConfig(epochs=2, lr=0.05))
    >>> history = trainer.fit(train_loader, val_loader)
    """

    def __init__(
        self,
        model: Module,
        config: Optional[TrainConfig] = None,
        scheduler_factory=None,
    ) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.loss_fn = CrossEntropyLoss(label_smoothing=self.config.label_smoothing)
        self.optimizer = SGD(
            model.parameters(),
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        if scheduler_factory is None:
            self.scheduler: _Scheduler = ConstantLR(self.optimizer)
        else:
            self.scheduler = scheduler_factory(self.optimizer)

    def train_epoch(self, train_batches: Iterable[Tuple[np.ndarray, np.ndarray]]) -> Tuple[float, float]:
        """Run one epoch; returns ``(mean_loss, mean_accuracy)``."""
        self.model.train()
        losses: List[float] = []
        accuracies: List[float] = []
        for batch_idx, (images, targets) in enumerate(train_batches):
            if (
                self.config.max_batches_per_epoch is not None
                and batch_idx >= self.config.max_batches_per_epoch
            ):
                break
            self.optimizer.zero_grad()
            logits = self.model(images)
            loss = self.loss_fn(logits, targets)
            grad_logits = self.loss_fn.backward()
            self.model.backward(grad_logits)
            self.optimizer.step()
            losses.append(loss)
            accuracies.append(accuracy(logits, targets))
        if not losses:
            raise ValueError("train_epoch() received no batches")
        return float(np.mean(losses)), float(np.mean(accuracies))

    def fit(
        self,
        train_loader,
        val_loader=None,
    ) -> TrainResult:
        """Train for ``config.epochs`` epochs, evaluating after each epoch."""
        result = TrainResult()
        for epoch in range(self.config.epochs):
            loss, train_acc = self.train_epoch(iter(train_loader))
            result.train_loss.append(loss)
            result.train_accuracy.append(train_acc)
            if val_loader is not None:
                val_acc = evaluate(self.model, iter(val_loader))
                result.val_accuracy.append(val_acc)
            self.scheduler.step()
            if self.config.verbose:  # pragma: no cover - logging only
                val_txt = f", val_acc={result.val_accuracy[-1]:.3f}" if val_loader else ""
                print(f"[epoch {epoch + 1}/{self.config.epochs}] loss={loss:.4f}, "
                      f"train_acc={train_acc:.3f}{val_txt}")
        return result
