"""Low-level numerical kernels for the NumPy deep-learning substrate.

This module provides the forward and backward primitives (im2col-based
convolution, pooling, batch normalisation, activations and the softmax /
cross-entropy head) that the layer classes in :mod:`repro.nn.layers` are
built from.  Every function is a pure function of arrays: layers own the
parameters and the cached context needed for the backward pass.

Array layout conventions
------------------------
* Images / activations: ``(N, C, H, W)`` -- batch, channels, height, width.
* Convolution weights: ``(C_out, C_in, KH, KW)``.
* Linear weights: ``(out_features, in_features)``.

The im2col transformation reshapes each convolution into a single GEMM so
that the weight matrix seen by the pruning framework matches the paper's
``(H * W * R, S)`` reshaped layout (Sec. III of the CRISP paper).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "im2col",
    "im2col_windows",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "depthwise_conv2d_forward",
    "depthwise_conv2d_backward",
    "linear_forward",
    "linear_backward",
    "max_pool2d_forward",
    "max_pool2d_backward",
    "avg_pool2d_forward",
    "avg_pool2d_backward",
    "global_avg_pool_forward",
    "global_avg_pool_backward",
    "batchnorm_forward",
    "batchnorm_backward",
    "relu_forward",
    "relu_backward",
    "relu6_forward",
    "relu6_backward",
    "softmax",
    "log_softmax",
    "cross_entropy_forward",
    "cross_entropy_backward",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution / pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"Non-positive output size {out} for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------

def im2col_windows(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> Tuple[np.ndarray, Tuple[int, int, int, int]]:
    """Strided sliding-window view over an image batch.

    Returns ``(windows, (n, c, out_h, out_w))`` where ``windows`` is a
    read-only view of shape ``(N, C, KH, KW, out_h, out_w)``.  This is the
    zero-copy half of :func:`im2col`; callers that manage their own output
    buffer (the fast backend's workspace cache) copy out of the view
    themselves instead of paying a fresh allocation per call.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )

    stride_n, stride_c, stride_h, stride_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel_h, kernel_w, out_h, out_w),
        strides=(
            stride_n,
            stride_c,
            stride_h,
            stride_w,
            stride_h * stride,
            stride_w * stride,
        ),
        writeable=False,
    )
    return windows, (n, c, out_h, out_w)


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Unfold an image batch into a matrix of receptive-field columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    np.ndarray
        Matrix of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    """
    windows, (n, c, out_h, out_w) = im2col_windows(x, kernel_h, kernel_w, stride, padding)
    cols = windows.transpose(0, 4, 5, 1, 2, 3).reshape(
        n * out_h * out_w, c * kernel_h * kernel_w
    )
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold receptive-field columns back into an image batch (adjoint of im2col)."""
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    cols_reshaped = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)
    cols_reshaped = cols_reshaped.transpose(0, 3, 4, 5, 1, 2)

    h_padded, w_padded = h + 2 * padding, w + 2 * padding
    x_padded = np.zeros((n, c, h_padded, w_padded), dtype=cols.dtype)

    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            x_padded[:, :, i:i_max:stride, j:j_max:stride] += cols_reshaped[:, :, i, j]

    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------

def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int = 1,
    padding: int = 0,
) -> Tuple[np.ndarray, dict]:
    """2-D convolution via im2col + GEMM.

    Returns the output of shape ``(N, C_out, out_h, out_w)`` and a cache
    dict consumed by :func:`conv2d_backward`.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"Channel mismatch: input has {c_in}, weight expects {c_in_w}")

    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col(x, kh, kw, stride, padding)
    w_mat = weight.reshape(c_out, -1)
    out = cols @ w_mat.T
    if bias is not None:
        out = out + bias
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    cache = {
        "cols": cols,
        "x_shape": x.shape,
        "weight_shape": weight.shape,
        "stride": stride,
        "padding": padding,
        "has_bias": bias is not None,
    }
    return out, cache


def conv2d_backward(
    grad_out: np.ndarray, weight: np.ndarray, cache: dict
) -> Tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_weight, grad_bias)``.
    """
    cols = cache["cols"]
    x_shape = cache["x_shape"]
    stride = cache["stride"]
    padding = cache["padding"]
    c_out, c_in, kh, kw = weight.shape

    n, _, out_h, out_w = grad_out.shape
    grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c_out)

    grad_weight = (grad_mat.T @ cols).reshape(weight.shape)
    grad_bias = grad_mat.sum(axis=0) if cache["has_bias"] else None

    grad_cols = grad_mat @ weight.reshape(c_out, -1)
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
    return grad_x, grad_weight, grad_bias


def depthwise_conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int = 1,
    padding: int = 0,
) -> Tuple[np.ndarray, dict]:
    """Depthwise convolution: one filter per input channel.

    ``weight`` has shape ``(C, 1, KH, KW)``.  Implemented as a grouped
    im2col GEMM with groups == channels.
    """
    n, c, h, w = x.shape
    c_w, one, kh, kw = weight.shape
    if c_w != c or one != 1:
        raise ValueError(
            f"Depthwise weight shape {weight.shape} incompatible with input channels {c}"
        )

    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col(x, kh, kw, stride, padding)  # (N*oh*ow, C*kh*kw)
    cols_g = cols.reshape(-1, c, kh * kw)
    w_g = weight.reshape(c, kh * kw)
    # einsum over the kernel dimension, independently per channel
    out = np.einsum("bck,ck->bc", cols_g, w_g)
    if bias is not None:
        out = out + bias
    out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)

    cache = {
        "cols_g": cols_g,
        "x_shape": x.shape,
        "stride": stride,
        "padding": padding,
        "has_bias": bias is not None,
    }
    return out, cache


def depthwise_conv2d_backward(
    grad_out: np.ndarray, weight: np.ndarray, cache: dict
) -> Tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Backward pass of :func:`depthwise_conv2d_forward`."""
    cols_g = cache["cols_g"]
    x_shape = cache["x_shape"]
    stride = cache["stride"]
    padding = cache["padding"]
    c, _, kh, kw = weight.shape

    n, _, out_h, out_w = grad_out.shape
    grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c)  # (N*oh*ow, C)

    grad_w = np.einsum("bc,bck->ck", grad_mat, cols_g).reshape(weight.shape)
    grad_bias = grad_mat.sum(axis=0) if cache["has_bias"] else None

    w_g = weight.reshape(c, kh * kw)
    grad_cols_g = np.einsum("bc,ck->bck", grad_mat, w_g)
    grad_cols = grad_cols_g.reshape(grad_mat.shape[0], c * kh * kw)
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
    return grad_x, grad_w, grad_bias


# ---------------------------------------------------------------------------
# Linear
# ---------------------------------------------------------------------------

def linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None
) -> Tuple[np.ndarray, dict]:
    """Fully connected layer: ``y = x @ W.T + b``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out, {"x": x, "has_bias": bias is not None}


def linear_backward(
    grad_out: np.ndarray, weight: np.ndarray, cache: dict
) -> Tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Backward pass of :func:`linear_forward`."""
    x = cache["x"]
    grad_weight = grad_out.T @ x
    grad_bias = grad_out.sum(axis=0) if cache["has_bias"] else None
    grad_x = grad_out @ weight
    return grad_x, grad_weight, grad_bias


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def max_pool2d_forward(
    x: np.ndarray, kernel: int, stride: int | None = None, padding: int = 0
) -> Tuple[np.ndarray, dict]:
    """Max pooling over non-overlapping or strided windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)

    x_r = x.reshape(n * c, 1, h, w)
    cols = im2col(x_r, kernel, kernel, stride, padding)  # (N*C*oh*ow, k*k)
    argmax = cols.argmax(axis=1)
    out = cols[np.arange(cols.shape[0]), argmax]
    out = out.reshape(n, c, out_h, out_w)

    cache = {
        "argmax": argmax,
        "cols_shape": cols.shape,
        "x_shape": x.shape,
        "kernel": kernel,
        "stride": stride,
        "padding": padding,
    }
    return out, cache


def max_pool2d_backward(grad_out: np.ndarray, cache: dict) -> np.ndarray:
    """Backward pass of :func:`max_pool2d_forward`."""
    n, c, h, w = cache["x_shape"]
    kernel = cache["kernel"]
    stride = cache["stride"]
    padding = cache["padding"]
    argmax = cache["argmax"]

    grad_cols = np.zeros(cache["cols_shape"], dtype=grad_out.dtype)
    grad_flat = grad_out.reshape(-1)
    grad_cols[np.arange(grad_cols.shape[0]), argmax] = grad_flat

    grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, kernel, stride, padding)
    return grad_x.reshape(n, c, h, w)


def avg_pool2d_forward(
    x: np.ndarray, kernel: int, stride: int | None = None, padding: int = 0
) -> Tuple[np.ndarray, dict]:
    """Average pooling."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)

    x_r = x.reshape(n * c, 1, h, w)
    cols = im2col(x_r, kernel, kernel, stride, padding)
    out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    cache = {
        "x_shape": x.shape,
        "kernel": kernel,
        "stride": stride,
        "padding": padding,
        "cols_shape": cols.shape,
    }
    return out, cache


def avg_pool2d_backward(grad_out: np.ndarray, cache: dict) -> np.ndarray:
    """Backward pass of :func:`avg_pool2d_forward`."""
    n, c, h, w = cache["x_shape"]
    kernel = cache["kernel"]
    stride = cache["stride"]
    padding = cache["padding"]

    grad_flat = grad_out.reshape(-1, 1) / float(kernel * kernel)
    grad_cols = np.broadcast_to(grad_flat, cache["cols_shape"]).copy()
    grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, kernel, stride, padding)
    return grad_x.reshape(n, c, h, w)


def global_avg_pool_forward(x: np.ndarray) -> Tuple[np.ndarray, dict]:
    """Global average pooling: ``(N, C, H, W) -> (N, C)``."""
    out = x.mean(axis=(2, 3))
    return out, {"x_shape": x.shape}


def global_avg_pool_backward(grad_out: np.ndarray, cache: dict) -> np.ndarray:
    """Backward pass of :func:`global_avg_pool_forward`."""
    n, c, h, w = cache["x_shape"]
    grad = grad_out[:, :, None, None] / float(h * w)
    return np.broadcast_to(grad, (n, c, h, w)).copy()


# ---------------------------------------------------------------------------
# Batch normalisation
# ---------------------------------------------------------------------------

def batchnorm_forward(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tuple[np.ndarray, dict]:
    """Batch normalisation over the channel axis of ``(N, C, H, W)`` or ``(N, C)``.

    ``running_mean`` / ``running_var`` are updated in place when ``training``.
    """
    is_conv = x.ndim == 4
    axes = (0, 2, 3) if is_conv else (0,)

    if training:
        mean = x.mean(axis=axes)
        var = x.var(axis=axes)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean = running_mean
        var = running_var

    if is_conv:
        mean_b = mean[None, :, None, None]
        var_b = var[None, :, None, None]
        gamma_b = gamma[None, :, None, None]
        beta_b = beta[None, :, None, None]
    else:
        mean_b, var_b, gamma_b, beta_b = mean, var, gamma, beta

    inv_std = 1.0 / np.sqrt(var_b + eps)
    x_hat = (x - mean_b) * inv_std
    out = gamma_b * x_hat + beta_b

    cache = {
        "x_hat": x_hat,
        "inv_std": inv_std,
        "gamma": gamma,
        "axes": axes,
        "is_conv": is_conv,
        "training": training,
    }
    return out, cache


def batchnorm_backward(
    grad_out: np.ndarray, cache: dict
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`batchnorm_forward`.

    Returns ``(grad_x, grad_gamma, grad_beta)``.  In evaluation mode the
    mean/var are treated as constants (the standard inference behaviour).
    """
    x_hat = cache["x_hat"]
    inv_std = cache["inv_std"]
    gamma = cache["gamma"]
    axes = cache["axes"]
    is_conv = cache["is_conv"]

    grad_gamma = (grad_out * x_hat).sum(axis=axes)
    grad_beta = grad_out.sum(axis=axes)

    gamma_b = gamma[None, :, None, None] if is_conv else gamma

    if not cache["training"]:
        grad_x = grad_out * gamma_b * inv_std
        return grad_x, grad_gamma, grad_beta

    # Count of elements that contributed to each channel statistic.
    m = grad_out.size / grad_out.shape[1]
    grad_xhat = grad_out * gamma_b
    mean_grad_xhat = grad_xhat.mean(axis=axes, keepdims=True)
    mean_grad_xhat_xhat = (grad_xhat * x_hat).mean(axis=axes, keepdims=True)
    grad_x = inv_std * (grad_xhat - mean_grad_xhat - x_hat * mean_grad_xhat_xhat)
    # The keepdims means above already divide by m; no further scaling needed.
    _ = m
    return grad_x, grad_gamma, grad_beta


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

def relu_forward(x: np.ndarray) -> Tuple[np.ndarray, dict]:
    """Rectified linear unit."""
    mask = x > 0
    return x * mask, {"mask": mask}


def relu_backward(grad_out: np.ndarray, cache: dict) -> np.ndarray:
    """Backward pass of :func:`relu_forward`."""
    return grad_out * cache["mask"]


def relu6_forward(x: np.ndarray) -> Tuple[np.ndarray, dict]:
    """ReLU6 activation used by MobileNetV2."""
    mask = (x > 0) & (x < 6.0)
    return np.clip(x, 0.0, 6.0), {"mask": mask}


def relu6_backward(grad_out: np.ndarray, cache: dict) -> np.ndarray:
    """Backward pass of :func:`relu6_forward`."""
    return grad_out * cache["mask"]


# ---------------------------------------------------------------------------
# Softmax / cross-entropy
# ---------------------------------------------------------------------------

def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def cross_entropy_forward(
    logits: np.ndarray, targets: np.ndarray, label_smoothing: float = 0.0
) -> Tuple[float, dict]:
    """Mean cross-entropy loss over a batch of integer class targets."""
    n, num_classes = logits.shape
    log_probs = log_softmax(logits)

    if label_smoothing > 0.0:
        smooth = label_smoothing / num_classes
        target_dist = np.full_like(log_probs, smooth)
        target_dist[np.arange(n), targets] += 1.0 - label_smoothing
        loss = -(target_dist * log_probs).sum(axis=1).mean()
        cache = {"log_probs": log_probs, "target_dist": target_dist, "n": n}
    else:
        loss = -log_probs[np.arange(n), targets].mean()
        cache = {"log_probs": log_probs, "targets": targets, "n": n, "target_dist": None}
    return float(loss), cache


def cross_entropy_backward(cache: dict) -> np.ndarray:
    """Gradient of the mean cross-entropy loss with respect to the logits."""
    log_probs = cache["log_probs"]
    n = cache["n"]
    probs = np.exp(log_probs)
    if cache["target_dist"] is not None:
        grad = (probs - cache["target_dist"]) / n
    else:
        grad = probs.copy()
        grad[np.arange(n), cache["targets"]] -= 1.0
        grad /= n
    return grad
