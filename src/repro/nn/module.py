"""Module and parameter abstractions for the NumPy deep-learning substrate.

The design mirrors the familiar ``torch.nn`` API at a small scale:

* :class:`Parameter` wraps a NumPy array together with its gradient and an
  optional pruning mask (the hook used by :mod:`repro.pruning`).
* :class:`Module` provides parameter registration, traversal
  (``named_parameters`` / ``named_modules``), train/eval switching and
  state-dict save/load.
* :class:`Sequential` chains sub-modules with automatic backward ordering.

Every concrete layer implements ``forward(x)`` and ``backward(grad_out)``;
the backward pass accumulates ``param.grad`` in place and returns the
gradient with respect to the layer input.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable tensor with gradient storage and an optional sparsity mask.

    Attributes
    ----------
    data:
        The parameter values.
    grad:
        Accumulated gradient (same shape as ``data``), or ``None`` before the
        first backward pass.
    mask:
        Optional binary mask applied multiplicatively by the pruning
        framework.  ``None`` means dense.
    requires_grad:
        When ``False`` the optimiser skips this parameter.
    """

    def __init__(self, data: np.ndarray, requires_grad: bool = True, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.mask: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the stored gradient, allocating on first use."""
        if grad.shape != self.data.shape:
            raise ValueError(
                f"Gradient shape {grad.shape} does not match parameter shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def apply_mask(self) -> None:
        """Zero out the masked entries of ``data`` (no-op when dense)."""
        if self.mask is not None:
            self.data *= self.mask

    def effective(self) -> np.ndarray:
        """The weight actually used in the forward pass: ``data * mask``.

        ``data`` itself is left untouched so that straight-through-estimator
        fine-tuning (:mod:`repro.pruning.ste`) can keep a dense copy evolving
        underneath the mask.
        """
        if self.mask is None:
            return self.data
        return self.data * self.mask

    def set_mask(self, mask: Optional[np.ndarray]) -> None:
        """Install (or clear) a binary pruning mask and apply it immediately."""
        if mask is None:
            self.mask = None
            return
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != self.data.shape:
            raise ValueError(
                f"Mask shape {mask.shape} does not match parameter shape {self.data.shape}"
            )
        self.mask = mask
        self.apply_mask()

    def density(self) -> float:
        """Fraction of non-zero entries in the (masked) parameter."""
        if self.mask is not None:
            return float(self.mask.mean())
        return float(np.count_nonzero(self.data)) / max(1, self.data.size)

    def sparsity(self) -> float:
        """Fraction of zero entries: ``1 - density``."""
        return 1.0 - self.density()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Parameter(name={self.name!r}, shape={self.shape}, sparsity={self.sparsity():.2f})"


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # -- registration -------------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        param.name = name
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def register_buffer(self, name: str, value: np.ndarray) -> np.ndarray:
        self._buffers[name] = value
        return value

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            if not hasattr(self, "_parameters"):
                raise RuntimeError("Call Module.__init__() before assigning parameters")
            self.register_parameter(name, value)
        elif isinstance(value, Module):
            if not hasattr(self, "_modules"):
                raise RuntimeError("Call Module.__init__() before assigning sub-modules")
            self.register_module(name, value)
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, Parameter)`` for this module and children."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, Module)`` in depth-first order (self first)."""
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{mod_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield f"{prefix}{name}", buf
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    # -- train / eval --------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # -- gradients -----------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients of every parameter in the module tree."""
        for _, param in self.named_parameters():
            param.zero_grad()

    def apply_masks(self) -> None:
        """Re-apply every installed pruning mask (after an optimiser step)."""
        for _, param in self.named_parameters():
            param.apply_mask()

    # -- state dict ----------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat dict of parameter data, masks and buffers (all copied)."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
            if param.mask is not None:
                state[f"{name}::mask"] = param.mask.copy()
        for name, buf in self.named_buffers():
            state[f"{name}::buffer"] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter data / masks / buffers produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        for name, param in params.items():
            if name in state:
                if state[name].shape != param.data.shape:
                    raise ValueError(
                        f"Shape mismatch for {name}: {state[name].shape} vs {param.data.shape}"
                    )
                param.data = state[name].copy()
            mask_key = f"{name}::mask"
            if mask_key in state:
                param.set_mask(state[mask_key])
        buffers = dict(self.named_buffers())
        for name, buf in buffers.items():
            key = f"{name}::buffer"
            if key in state:
                np.copyto(buf, state[key])

    def count_parameters(self, only_trainable: bool = False) -> int:
        """Total number of scalar parameters."""
        return sum(
            p.size
            for p in self.parameters()
            if (p.requires_grad or not only_trainable)
        )

    # -- forward / backward --------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """A chain of modules executed in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for idx, module in enumerate(modules):
            name = str(idx)
            self.register_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, idx: int) -> Module:
        return self._modules[self._order[idx]]

    def __iter__(self) -> Iterator[Module]:
        for name in self._order:
            yield self._modules[name]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for name in reversed(self._order):
            grad_out = self._modules[name].backward(grad_out)
        return grad_out
