"""Model registry: build models by name, as the experiment harness does."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .base import ClassifierModel
from .mobilenet import mobilenet_tiny, mobilenet_v2
from .resnet import resnet50, resnet_tiny
from .vgg import vgg16, vgg_tiny

__all__ = ["MODEL_REGISTRY", "build_model", "available_models"]

#: Maps architecture name to a constructor ``(num_classes, input_size, seed) -> model``.
MODEL_REGISTRY: Dict[str, Callable[..., ClassifierModel]] = {
    "resnet50": resnet50,
    "resnet_tiny": resnet_tiny,
    "vgg16": vgg16,
    "vgg_tiny": vgg_tiny,
    "mobilenetv2": mobilenet_v2,
    "mobilenet_tiny": mobilenet_tiny,
}


def available_models() -> List[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(MODEL_REGISTRY)


def build_model(
    name: str,
    num_classes: int,
    input_size: int = 16,
    seed: Optional[int] = None,
    **kwargs,
) -> ClassifierModel:
    """Instantiate a model from the registry.

    Parameters
    ----------
    name:
        One of :func:`available_models`.
    num_classes:
        Number of output classes (the size of the user-preferred class set
        plus, optionally, an "other" class).
    input_size:
        Square input resolution the model will be fed.
    seed:
        Seed for weight initialisation, for reproducible experiments.
    """
    if name not in MODEL_REGISTRY:
        raise KeyError(f"Unknown model {name!r}; available: {available_models()}")
    return MODEL_REGISTRY[name](
        num_classes=num_classes, input_size=input_size, seed=seed, **kwargs
    )
