"""Model zoo for the CRISP reproduction.

The three architectures evaluated by the paper (ResNet-50, VGG-16 and
MobileNetV2) are reproduced at configurable scale: the topological structure
(bottleneck residuals, plain convolution stacks, inverted residuals with
depthwise convolutions) matches the originals while the width multiplier and
stage depths can be reduced so that CPU-only NumPy training stays tractable.
"""

from .base import ClassifierModel, prunable_layers
from .resnet import ResNet, resnet50, resnet_tiny
from .vgg import VGG, vgg16, vgg_tiny
from .mobilenet import MobileNetV2, mobilenet_v2, mobilenet_tiny
from .registry import MODEL_REGISTRY, build_model, available_models

__all__ = [
    "ClassifierModel",
    "prunable_layers",
    "ResNet",
    "resnet50",
    "resnet_tiny",
    "VGG",
    "vgg16",
    "vgg_tiny",
    "MobileNetV2",
    "mobilenet_v2",
    "mobilenet_tiny",
    "MODEL_REGISTRY",
    "build_model",
    "available_models",
]
