"""MobileNetV2 with inverted residual blocks and depthwise convolutions.

The inverted-residual topology (expand 1x1 -> depthwise 3x3 -> project 1x1
with a linear bottleneck and residual connection when shapes match) follows
the original MobileNetV2 design.  Width and stage depths are configurable so
the model trains on CPU; ``mobilenet_v2()`` keeps the canonical seven-stage
layout while ``mobilenet_tiny()`` is the fast test configuration.

MobileNetV2 is the paper's example of a compact, hard-to-prune model
(Fig. 1): most of its parameters sit in 1x1 convolutions that are already
narrow, so aggressive N:M ratios hurt it more than ResNet-50 or VGG-16.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool2d,
    Linear,
    ReLU6,
)
from ..module import Module, Sequential
from .base import ClassifierModel

__all__ = ["InvertedResidual", "MobileNetV2", "mobilenet_v2", "mobilenet_tiny"]

#: Canonical MobileNetV2 stage configuration: (expansion, channels, blocks, stride).
MOBILENETV2_CONFIG: List[Tuple[int, int, int, int]] = [
    (1, 16, 1, 1),
    (6, 24, 2, 1),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _make_divisible(value: float, divisor: int = 4) -> int:
    """Round channel counts to a multiple of ``divisor`` (at least ``divisor``)."""
    return max(divisor, int(value + divisor / 2) // divisor * divisor)


class InvertedResidual(Module):
    """MobileNetV2 inverted residual block."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        expansion: int,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        hidden = in_channels * expansion
        self.use_residual = stride == 1 and in_channels == out_channels
        self.expansion = expansion

        layers: List[Module] = []
        if expansion != 1:
            layers.extend(
                [
                    Conv2d(in_channels, hidden, 1, bias=False, seed=seed),
                    BatchNorm2d(hidden),
                    ReLU6(),
                ]
            )
        layers.extend(
            [
                DepthwiseConv2d(hidden, 3, stride=stride, padding=1, seed=seed),
                BatchNorm2d(hidden),
                ReLU6(),
                Conv2d(hidden, out_channels, 1, bias=False, seed=seed),
                BatchNorm2d(out_channels),
            ]
        )
        self.block = Sequential(*layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.block(x)
        if self.use_residual:
            out = out + x
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_main = self.block.backward(grad_out)
        if self.use_residual:
            return grad_main + grad_out
        return grad_main


class MobileNetV2(ClassifierModel):
    """MobileNetV2 parameterised by the inverted-residual stage configuration."""

    arch_name = "mobilenetv2"

    def __init__(
        self,
        config: Sequence[Tuple[int, int, int, int]] = MOBILENETV2_CONFIG,
        num_classes: int = 100,
        input_size: int = 32,
        width_mult: float = 1.0,
        in_channels: int = 3,
        last_channels: int = 1280,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(num_classes=num_classes, input_size=input_size)
        self.config = [tuple(entry) for entry in config]
        self.width_mult = width_mult

        stem_channels = _make_divisible(32 * width_mult)
        self.stem = Sequential(
            Conv2d(in_channels, stem_channels, 3, stride=1, padding=1, bias=False, seed=seed),
            BatchNorm2d(stem_channels),
            ReLU6(),
        )

        blocks: List[Module] = []
        channels = stem_channels
        for expansion, base_out, num_blocks, stride in self.config:
            out_channels = _make_divisible(base_out * width_mult)
            for block_idx in range(num_blocks):
                blocks.append(
                    InvertedResidual(
                        channels,
                        out_channels,
                        stride=stride if block_idx == 0 else 1,
                        expansion=expansion,
                        seed=seed,
                    )
                )
                channels = out_channels
        self.blocks = Sequential(*blocks)

        head_channels = _make_divisible(last_channels * width_mult)
        self.head = Sequential(
            Conv2d(channels, head_channels, 1, bias=False, seed=seed),
            BatchNorm2d(head_channels),
            ReLU6(),
        )
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(head_channels, num_classes, seed=seed)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.stem(x)
        out = self.blocks(out)
        out = self.head(out)
        out = self.pool(out)
        return self.classifier(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_out)
        grad = self.pool.backward(grad)
        grad = self.head.backward(grad)
        grad = self.blocks.backward(grad)
        return self.stem.backward(grad)


def mobilenet_v2(
    num_classes: int = 100,
    input_size: int = 32,
    width_mult: float = 0.35,
    seed: Optional[int] = None,
) -> MobileNetV2:
    """MobileNetV2 with the canonical seven-stage layout at reduced width."""
    model = MobileNetV2(
        MOBILENETV2_CONFIG,
        num_classes=num_classes,
        input_size=input_size,
        width_mult=width_mult,
        last_channels=256,
        seed=seed,
    )
    model.arch_name = "mobilenetv2"
    return model


def mobilenet_tiny(
    num_classes: int = 10,
    input_size: int = 16,
    seed: Optional[int] = None,
) -> MobileNetV2:
    """A three-stage MobileNetV2 for fast experiments and tests."""
    config: List[Tuple[int, int, int, int]] = [
        (1, 16, 1, 1),
        (4, 24, 2, 2),
        (4, 32, 2, 2),
    ]
    model = MobileNetV2(
        config,
        num_classes=num_classes,
        input_size=input_size,
        width_mult=1.0,
        last_channels=64,
        seed=seed,
    )
    model.arch_name = "mobilenet_tiny"
    return model
