"""Shared model utilities: the classifier base class and prunable-layer lookup."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

import numpy as np

from ..module import Module
from ..layers import PRUNABLE_LAYER_TYPES, Conv2d, Linear

__all__ = ["ClassifierModel", "prunable_layers", "layer_weight_shapes"]


class ClassifierModel(Module):
    """Base class for image classifiers in the reproduction model zoo.

    Sub-classes populate ``self.backbone`` (a module producing a flat feature
    vector) and ``self.classifier`` (a :class:`~repro.nn.layers.Linear` head)
    and may override :meth:`forward` / :meth:`backward` if the topology is not
    a simple chain.

    Attributes
    ----------
    num_classes:
        Size of the classification head.
    input_size:
        Expected spatial input resolution (square images).
    arch_name:
        Human-readable architecture identifier (``"resnet50"`` etc.).
    """

    arch_name = "classifier"

    def __init__(self, num_classes: int, input_size: int) -> None:
        super().__init__()
        self.num_classes = num_classes
        self.input_size = input_size

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return argmax class predictions for a batch of images."""
        logits = self.forward(x)
        return logits.argmax(axis=1)

    def logits_shape(self) -> Tuple[int, ...]:
        return (self.num_classes,)


def prunable_layers(model: Module) -> "OrderedDict[str, Module]":
    """Return the prunable (Conv2d / Linear) layers of ``model`` by qualified name.

    The final classifier layer is included: CRISP prunes the whole network,
    and the classification head is where class-aware sparsity is most visible.
    Depthwise convolutions and normalisation layers are excluded.
    """
    layers: "OrderedDict[str, Module]" = OrderedDict()
    for name, module in model.named_modules():
        if isinstance(module, PRUNABLE_LAYER_TYPES) and getattr(module, "prunable", False):
            layers[name] = module
    return layers


def layer_weight_shapes(model: Module) -> Dict[str, Tuple[int, ...]]:
    """Map each prunable layer name to its reshaped ``(HWR, S)`` weight shape."""
    shapes: Dict[str, Tuple[int, ...]] = {}
    for name, layer in prunable_layers(model).items():
        if isinstance(layer, Conv2d):
            rows = layer.in_channels * layer.kernel_size * layer.kernel_size
            cols = layer.out_channels
        elif isinstance(layer, Linear):
            rows, cols = layer.in_features, layer.out_features
        else:  # pragma: no cover - defensive
            continue
        shapes[name] = (rows, cols)
    return shapes
