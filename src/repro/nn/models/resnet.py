"""ResNet with bottleneck blocks, following the ResNet-50 topology.

The full ResNet-50 stage configuration ``[3, 4, 6, 3]`` with bottleneck
blocks is reproduced; the ``width`` parameter scales every channel count so
the model can be trained on CPU with NumPy.  ``resnet50()`` keeps the
canonical stage layout, ``resnet_tiny()`` is the configuration used by the
test-suite and the default experiment harness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from ..module import Module, Sequential
from .base import ClassifierModel

__all__ = ["Bottleneck", "ResNet", "resnet50", "resnet_tiny"]


class Bottleneck(Module):
    """ResNet bottleneck block: 1x1 reduce, 3x3, 1x1 expand, residual add."""

    expansion = 4

    def __init__(
        self,
        in_channels: int,
        planes: int,
        stride: int = 1,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        out_channels = planes * self.expansion

        self.conv1 = Conv2d(in_channels, planes, 1, bias=False, seed=seed)
        self.bn1 = BatchNorm2d(planes)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(planes, planes, 3, stride=stride, padding=1, bias=False, seed=seed)
        self.bn2 = BatchNorm2d(planes)
        self.relu2 = ReLU()
        self.conv3 = Conv2d(planes, out_channels, 1, bias=False, seed=seed)
        self.bn3 = BatchNorm2d(out_channels)
        self.relu3 = ReLU()

        if stride != 1 or in_channels != out_channels:
            self.downsample = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, seed=seed),
                BatchNorm2d(out_channels),
            )
        else:
            self.downsample = Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = self.downsample(x)
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.relu2(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        out = out + identity
        self._pre_relu = out
        return self.relu3(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.relu3.backward(grad_out)
        # grad flows to both the residual branch and the shortcut
        grad_identity = grad
        grad_main = self.bn3.backward(grad)
        grad_main = self.conv3.backward(grad_main)
        grad_main = self.relu2.backward(grad_main)
        grad_main = self.bn2.backward(grad_main)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        grad_shortcut = self.downsample.backward(grad_identity)
        return grad_main + grad_shortcut


class ResNet(ClassifierModel):
    """Bottleneck ResNet parameterised by per-stage block counts and base width."""

    arch_name = "resnet"

    def __init__(
        self,
        stage_blocks: Sequence[int],
        num_classes: int = 100,
        input_size: int = 32,
        base_width: int = 16,
        in_channels: int = 3,
        use_maxpool: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(num_classes=num_classes, input_size=input_size)
        self.stage_blocks = list(stage_blocks)
        self.base_width = base_width

        self.stem_conv = Conv2d(in_channels, base_width, 3, stride=1, padding=1, bias=False, seed=seed)
        self.stem_bn = BatchNorm2d(base_width)
        self.stem_relu = ReLU()
        self.stem_pool = MaxPool2d(2) if use_maxpool else Identity()

        stages: List[Module] = []
        channels = base_width
        planes = base_width
        for stage_idx, blocks in enumerate(self.stage_blocks):
            stride = 1 if stage_idx == 0 else 2
            for block_idx in range(blocks):
                block = Bottleneck(
                    channels,
                    planes,
                    stride=stride if block_idx == 0 else 1,
                    seed=seed,
                )
                stages.append(block)
                channels = planes * Bottleneck.expansion
            planes *= 2
        self.stages = Sequential(*stages)

        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(channels, num_classes, seed=seed)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.stem_relu(self.stem_bn(self.stem_conv(x)))
        out = self.stem_pool(out)
        out = self.stages(out)
        out = self.pool(out)
        return self.classifier(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_out)
        grad = self.pool.backward(grad)
        grad = self.stages.backward(grad)
        grad = self.stem_pool.backward(grad)
        grad = self.stem_relu.backward(grad)
        grad = self.stem_bn.backward(grad)
        return self.stem_conv.backward(grad)


def resnet50(
    num_classes: int = 100,
    input_size: int = 32,
    base_width: int = 16,
    seed: Optional[int] = None,
) -> ResNet:
    """ResNet-50 topology (stage blocks ``[3, 4, 6, 3]``) at configurable width."""
    model = ResNet(
        stage_blocks=[3, 4, 6, 3],
        num_classes=num_classes,
        input_size=input_size,
        base_width=base_width,
        seed=seed,
    )
    model.arch_name = "resnet50"
    return model


def resnet_tiny(
    num_classes: int = 10,
    input_size: int = 16,
    base_width: int = 12,
    seed: Optional[int] = None,
) -> ResNet:
    """A small bottleneck ResNet (stage blocks ``[1, 1, 1]``) for fast experiments."""
    model = ResNet(
        stage_blocks=[1, 1, 1],
        num_classes=num_classes,
        input_size=input_size,
        base_width=base_width,
        seed=seed,
    )
    model.arch_name = "resnet_tiny"
    return model
