"""VGG-style plain convolutional networks (VGG-16 topology).

The canonical VGG-16 configuration (13 convolution layers in five stages
followed by a fully connected classifier) is reproduced with a width
multiplier so the convolution stacks stay CPU-friendly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from ..module import Module, Sequential
from .base import ClassifierModel

__all__ = ["VGG", "vgg16", "vgg_tiny", "VGG16_CONFIG"]

#: The canonical VGG-16 stage configuration: channel counts with "M" for max-pool.
VGG16_CONFIG: List[Union[int, str]] = [
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
]


def _scaled(config: Sequence[Union[int, str]], width_mult: float) -> List[Union[int, str]]:
    scaled: List[Union[int, str]] = []
    for entry in config:
        if entry == "M":
            scaled.append("M")
        else:
            scaled.append(max(4, int(round(int(entry) * width_mult))))
    return scaled


class VGG(ClassifierModel):
    """Plain convolutional network in the VGG style."""

    arch_name = "vgg"

    def __init__(
        self,
        config: Sequence[Union[int, str]],
        num_classes: int = 100,
        input_size: int = 32,
        width_mult: float = 1.0,
        in_channels: int = 3,
        classifier_width: int = 64,
        dropout: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(num_classes=num_classes, input_size=input_size)
        config = _scaled(config, width_mult)
        self.config = list(config)

        layers: List[Module] = []
        channels = in_channels
        pool_count = 0
        for entry in config:
            if entry == "M":
                layers.append(MaxPool2d(2))
                pool_count += 1
                continue
            out_channels = int(entry)
            layers.append(Conv2d(channels, out_channels, 3, padding=1, bias=False, seed=seed))
            layers.append(BatchNorm2d(out_channels))
            layers.append(ReLU())
            channels = out_channels
        self.features = Sequential(*layers)

        self.pool = GlobalAvgPool2d()
        head: List[Module] = [Linear(channels, classifier_width, seed=seed), ReLU()]
        if dropout > 0.0:
            head.append(Dropout(dropout, seed=seed))
        head.append(Linear(classifier_width, num_classes, seed=seed))
        self.classifier = Sequential(*head)
        self._pool_count = pool_count

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.features(x)
        out = self.pool(out)
        return self.classifier(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_out)
        grad = self.pool.backward(grad)
        return self.features.backward(grad)


def vgg16(
    num_classes: int = 100,
    input_size: int = 32,
    width_mult: float = 0.25,
    seed: Optional[int] = None,
) -> VGG:
    """VGG-16 topology (13 conv layers) at a configurable width multiplier."""
    model = VGG(
        VGG16_CONFIG,
        num_classes=num_classes,
        input_size=input_size,
        width_mult=width_mult,
        classifier_width=max(32, int(128 * width_mult)),
        seed=seed,
    )
    model.arch_name = "vgg16"
    return model


def vgg_tiny(
    num_classes: int = 10,
    input_size: int = 16,
    seed: Optional[int] = None,
) -> VGG:
    """A shallow VGG-style network for fast experiments and tests."""
    config: List[Union[int, str]] = [16, "M", 32, "M", 64, "M"]
    model = VGG(
        config,
        num_classes=num_classes,
        input_size=input_size,
        width_mult=1.0,
        classifier_width=32,
        seed=seed,
    )
    model.arch_name = "vgg_tiny"
    return model
