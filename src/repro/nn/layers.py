"""Layer implementations built on the pluggable compute backends.

Each layer caches whatever the backward pass needs during ``forward`` and
accumulates parameter gradients in ``backward``.  Convolution and linear
layers expose ``reshaped_weight()`` / ``set_reshaped_weight()`` which view
the weight in the ``(H*W*R, S)`` layout used by the CRISP pruning framework
(kernel-position x input-channel rows, output-channel columns).

Numerical kernels are not called directly: every forward routes through the
active :class:`repro.backend.Backend` (``reference`` by default, selectable
via :func:`repro.backend.set_backend`), and the backward pass reuses the
backend recorded at forward time so a mid-step backend switch cannot pair a
forward cache with a mismatched backward kernel.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from . import functional as F
from .module import Module, Parameter

__all__ = [
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "BatchNorm2d",
    "BatchNorm1d",
    "ReLU",
    "ReLU6",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "Add",
    "PRUNABLE_LAYER_TYPES",
]


def _backend():
    """The active compute backend (imported lazily to avoid an import cycle)."""
    from ..backend import active_backend

    return active_backend()


def _kaiming_uniform(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    bound = math.sqrt(6.0 / max(1, fan_in))
    return rng.uniform(-bound, bound, size=shape)


def _default_rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


class Conv2d(Module):
    """2-D convolution layer (im2col + GEMM).

    The weight tensor has shape ``(out_channels, in_channels, kh, kw)``.
    ``reshaped_weight()`` returns the paper's pruning view of shape
    ``(in_channels * kh * kw, out_channels)``.
    """

    prunable = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

        rng = _default_rng(seed)
        fan_in = in_channels * kernel_size * kernel_size
        weight = _kaiming_uniform(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
        )
        self.weight = Parameter(weight)
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        weight = self.weight.effective()
        bias = self.bias.data if self.bias is not None else None
        backend = _backend()
        out, self._cache = backend.conv2d_forward(
            x, weight, bias, self.stride, self.padding, training=self.training
        )
        self._cache["effective_weight"] = weight
        self._cache["backend"] = backend
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_x, grad_w, grad_b = self._cache["backend"].conv2d_backward(
            grad_out, self._cache["effective_weight"], self._cache
        )
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None and grad_b is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_x

    # -- pruning view ---------------------------------------------------------
    def reshaped_weight(self) -> np.ndarray:
        """Weight viewed as ``(in_channels * kh * kw, out_channels)``."""
        c_out = self.out_channels
        return self.weight.data.reshape(c_out, -1).T.copy()

    def reshaped_grad(self) -> Optional[np.ndarray]:
        """Gradient in the same reshaped layout, or ``None`` if absent."""
        if self.weight.grad is None:
            return None
        c_out = self.out_channels
        return self.weight.grad.reshape(c_out, -1).T.copy()

    def set_reshaped_mask(self, mask2d: np.ndarray) -> None:
        """Install a pruning mask given in the reshaped ``(HWR, S)`` layout."""
        c_out = self.out_channels
        expected = (self.weight.data.size // c_out, c_out)
        if mask2d.shape != expected:
            raise ValueError(f"Reshaped mask shape {mask2d.shape} != expected {expected}")
        mask = mask2d.T.reshape(self.weight.data.shape)
        self.weight.set_mask(mask)

    def set_reshaped_weight(self, weight2d: np.ndarray) -> None:
        """Overwrite the weight from the reshaped ``(HWR, S)`` layout."""
        c_out = self.out_channels
        self.weight.data = weight2d.T.reshape(self.weight.data.shape).copy()

    def flops_per_output(self) -> int:
        """Multiply-accumulate count per spatial output element (dense)."""
        return 2 * self.in_channels * self.kernel_size * self.kernel_size * self.out_channels

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class DepthwiseConv2d(Module):
    """Depthwise convolution: one ``kh x kw`` filter per channel.

    Depthwise layers are not pruned by CRISP (they hold a negligible share of
    parameters and the N:M pattern degenerates for single-channel filters),
    matching the common practice for MobileNetV2.
    """

    prunable = False

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

        rng = _default_rng(seed)
        fan_in = kernel_size * kernel_size
        weight = _kaiming_uniform((channels, 1, kernel_size, kernel_size), fan_in, rng)
        self.weight = Parameter(weight)
        self.bias = Parameter(np.zeros(channels)) if bias else None
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        backend = _backend()
        out, self._cache = backend.depthwise_conv2d_forward(
            x, self.weight.data, bias, self.stride, self.padding, training=self.training
        )
        self._cache["backend"] = backend
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_x, grad_w, grad_b = self._cache["backend"].depthwise_conv2d_backward(
            grad_out, self.weight.data, self._cache
        )
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None and grad_b is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_x

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"DepthwiseConv2d({self.channels}, k={self.kernel_size}, s={self.stride})"


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    prunable = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features

        rng = _default_rng(seed)
        weight = _kaiming_uniform((out_features, in_features), in_features, rng)
        self.weight = Parameter(weight)
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        weight = self.weight.effective()
        bias = self.bias.data if self.bias is not None else None
        backend = _backend()
        out, self._cache = backend.linear_forward(x, weight, bias)
        self._cache["effective_weight"] = weight
        self._cache["backend"] = backend
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_x, grad_w, grad_b = self._cache["backend"].linear_backward(
            grad_out, self._cache["effective_weight"], self._cache
        )
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None and grad_b is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_x

    # -- pruning view ---------------------------------------------------------
    def reshaped_weight(self) -> np.ndarray:
        """Weight viewed as ``(in_features, out_features)``."""
        return self.weight.data.T.copy()

    def reshaped_grad(self) -> Optional[np.ndarray]:
        if self.weight.grad is None:
            return None
        return self.weight.grad.T.copy()

    def set_reshaped_mask(self, mask2d: np.ndarray) -> None:
        expected = (self.in_features, self.out_features)
        if mask2d.shape != expected:
            raise ValueError(f"Reshaped mask shape {mask2d.shape} != expected {expected}")
        self.weight.set_mask(mask2d.T)

    def set_reshaped_weight(self, weight2d: np.ndarray) -> None:
        self.weight.data = weight2d.T.copy()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Batch normalisation over ``(N, C, H, W)`` activations."""

    prunable = False

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        self.running_mean = self.register_buffer("running_mean", np.zeros(channels))
        self.running_var = self.register_buffer("running_var", np.ones(channels))
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        backend = _backend()
        out, self._cache = backend.batchnorm_forward(
            x,
            self.gamma.data,
            self.beta.data,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )
        self._cache["backend"] = backend
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_x, grad_gamma, grad_beta = self._cache["backend"].batchnorm_backward(
            grad_out, self._cache
        )
        self.gamma.accumulate_grad(grad_gamma)
        self.beta.accumulate_grad(grad_beta)
        return grad_x

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"BatchNorm2d({self.channels})"


class BatchNorm1d(BatchNorm2d):
    """Batch normalisation over ``(N, C)`` features (shares the 2-D kernel)."""


class ReLU(Module):
    """Rectified linear unit."""

    prunable = False

    def __init__(self) -> None:
        super().__init__()
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._cache = F.relu_forward(x)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.relu_backward(grad_out, self._cache)


class ReLU6(Module):
    """ReLU capped at 6 (MobileNetV2 activation)."""

    prunable = False

    def __init__(self) -> None:
        super().__init__()
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._cache = F.relu6_forward(x)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.relu6_backward(grad_out, self._cache)


class MaxPool2d(Module):
    """Max pooling layer."""

    prunable = False

    def __init__(self, kernel: int, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel
        self.padding = padding
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        backend = _backend()
        out, self._cache = backend.max_pool2d_forward(x, self.kernel, self.stride, self.padding)
        self._cache["backend"] = backend
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self._cache["backend"].max_pool2d_backward(grad_out, self._cache)


class AvgPool2d(Module):
    """Average pooling layer."""

    prunable = False

    def __init__(self, kernel: int, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel
        self.padding = padding
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        backend = _backend()
        out, self._cache = backend.avg_pool2d_forward(x, self.kernel, self.stride, self.padding)
        self._cache["backend"] = backend
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self._cache["backend"].avg_pool2d_backward(grad_out, self._cache)


class GlobalAvgPool2d(Module):
    """Global average pooling: collapses the spatial dimensions."""

    prunable = False

    def __init__(self) -> None:
        super().__init__()
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        backend = _backend()
        out, self._cache = backend.global_avg_pool_forward(x)
        self._cache["backend"] = backend
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self._cache["backend"].global_avg_pool_backward(grad_out, self._cache)


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    prunable = False

    def __init__(self) -> None:
        super().__init__()
        self._shape: Tuple[int, ...] = ()

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout (identity in eval mode)."""

    prunable = False

    def __init__(self, p: float = 0.5, seed: Optional[int] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"Dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Identity(Module):
    """Pass-through layer (used for residual shortcuts)."""

    prunable = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Add(Module):
    """Element-wise addition of two pre-computed branches.

    This is a helper used inside residual blocks rather than a standalone
    sequential layer: the block calls :meth:`forward_pair` / splits the
    gradient itself.
    """

    prunable = False

    def forward_pair(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a + b

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - not used directly
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover
        return grad_out


#: Layer classes whose weights participate in CRISP pruning.
PRUNABLE_LAYER_TYPES = (Conv2d, Linear)
