"""NumPy deep-learning substrate used by the CRISP reproduction.

The substrate replaces PyTorch (which the paper uses, but is unavailable in
this offline environment) with a small, explicit-backward framework: layers,
models, optimisers, losses and training loops.  The pruning framework in
:mod:`repro.pruning` only interacts with it through reshaped weight matrices
and accumulated gradients, mirroring how CRISP hooks into PyTorch modules.
"""

from . import functional
from .module import Module, Parameter, Sequential
from .layers import (
    Conv2d,
    DepthwiseConv2d,
    Linear,
    BatchNorm1d,
    BatchNorm2d,
    ReLU,
    ReLU6,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    Flatten,
    Dropout,
    Identity,
    PRUNABLE_LAYER_TYPES,
)
from .loss import CrossEntropyLoss, accuracy, top_k_accuracy
from .optim import SGD, StepLR, CosineAnnealingLR, ConstantLR
from .trainer import TrainConfig, TrainResult, Trainer, evaluate, accumulate_gradients
from . import models

__all__ = [
    "functional",
    "Module",
    "Parameter",
    "Sequential",
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "PRUNABLE_LAYER_TYPES",
    "CrossEntropyLoss",
    "accuracy",
    "top_k_accuracy",
    "SGD",
    "StepLR",
    "CosineAnnealingLR",
    "ConstantLR",
    "TrainConfig",
    "TrainResult",
    "Trainer",
    "evaluate",
    "accumulate_gradients",
    "models",
]
