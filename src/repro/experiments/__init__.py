"""Experiment runners, one per paper figure / table (see DESIGN.md, Sec. 4)."""

from .common import (
    ExperimentScale,
    PersonalizationSetup,
    SMALL_SCALE,
    TINY_SCALE,
    clear_model_cache,
    clone_model,
    configure_backend,
    format_table,
    make_personalization_setup,
    make_service,
    pretrained_universal_model,
)
from .fig1_nm_ratios import Fig1Config, run_fig1
from .fig2_layerwise import Fig2Config, run_fig2
from .fig3_crisp_vs_block import Fig3Config, run_fig3
from .fig4_metadata import Fig4Config, aggregate_overheads, run_fig4
from .fig7_class_sweep import Fig7Config, run_fig7, sparsity_for_class_count
from .fig8_hardware import Fig8Config, aggregate_fig8, run_fig8
from .headline import HeadlineConfig, run_headline
from .serve_demo import ServeDemoConfig, print_serve_demo, run_serve_demo

__all__ = [
    "ExperimentScale",
    "PersonalizationSetup",
    "SMALL_SCALE",
    "TINY_SCALE",
    "clear_model_cache",
    "clone_model",
    "configure_backend",
    "format_table",
    "make_personalization_setup",
    "make_service",
    "pretrained_universal_model",
    "Fig1Config",
    "run_fig1",
    "Fig2Config",
    "run_fig2",
    "Fig3Config",
    "run_fig3",
    "Fig4Config",
    "aggregate_overheads",
    "run_fig4",
    "Fig7Config",
    "run_fig7",
    "sparsity_for_class_count",
    "Fig8Config",
    "aggregate_fig8",
    "run_fig8",
    "HeadlineConfig",
    "run_headline",
    "ServeDemoConfig",
    "run_serve_demo",
    "print_serve_demo",
]
