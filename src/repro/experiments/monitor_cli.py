"""CLI ``monitor``: the metrics plane's live snapshot and dashboard.

Two modes, one dashboard:

* **in-process** (default) — run a loadgen scenario with the full
  observability plane attached (``TelemetryPoller`` + ``EventLog`` +
  ``SLOMonitor``, exactly what ``loadgen --monitor`` wires) and render the
  collected time series, lifecycle events, and alert history.  With
  ``--watch`` the lifecycle events and alert transitions stream to stdout
  *while the scenario runs*, which is the "watch a chaos run until the
  alert fires" recipe in EXPERIMENTS.md.
* **remote scrape** (``--url http://host:port``) — poll a live
  :class:`~repro.gateway.transport.GatewayHTTPServer`'s ``GET /statsz``
  route on an interval, folding each snapshot into a local registry with
  the same :func:`~repro.metrics.poller.record_sample` mapping the server's
  own ``/metrics`` route uses, and evaluate the same alert rules against
  it.  ``--watch`` redraws the dashboard each tick.

``--json`` dumps the whole plane — ring-buffer series, alert state machine,
event log — as one machine-readable document.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import urllib.request
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..metrics import (
    MetricsRegistry,
    SLOMonitor,
    default_rules,
    get_event_log,
    record_sample,
)

__all__ = ["MonitorConfig", "run_monitor", "print_monitor", "render_dashboard"]

#: Eight-level unicode sparkline ramp (empty series render as "-").
_SPARKS = " ▁▂▃▄▅▆▇█"


@dataclass
class MonitorConfig:
    """Knobs of one ``monitor`` invocation."""

    # In-process mode: the loadgen scenario to observe.
    scenario: str = "steady-uniform"
    shards: int = 2
    workers: str = "threaded"
    tenants: int = 8
    requests: Optional[int] = None
    seed: int = 0
    cache_capacity: int = 2
    time_scale: float = 1.0
    backend: str = "fast"
    transport: str = "local"
    smoke: bool = False
    # Shared observability knobs.
    poll_interval_s: float = 0.05
    alert_p99_ms: float = 250.0
    alert_burn_rate: float = 0.05
    alert_queue_depth: float = 64.0
    # Remote-scrape mode.
    url: Optional[str] = None  #: gateway base URL; switches to scrape mode
    ticks: int = 5  #: statsz scrapes per remote-scrape run
    watch: bool = False  #: stream events / redraw per tick

    def __post_init__(self) -> None:
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be > 0, got {self.poll_interval_s}"
            )
        if self.ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {self.ticks}")


def _sparkline(values: List[float], width: int = 24) -> str:
    if not values:
        return "-"
    tail = values[-width:]
    low, high = min(tail), max(tail)
    if high <= low:
        return _SPARKS[1] * len(tail)
    span = high - low
    return "".join(
        _SPARKS[1 + int((v - low) / span * (len(_SPARKS) - 2))] for v in tail
    )


def render_dashboard(payload: Dict[str, object]) -> str:
    """The human face of one metrics dump (series + alerts + events)."""
    lines = [f"metrics plane — source: {payload.get('source', '?')}"]
    metrics = payload.get("metrics") or {}
    for name in sorted(metrics):
        family = metrics[name]
        for series in family.get("series", []):
            labels = series.get("labels") or {}
            rendered = name
            if labels:
                inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
                rendered = f"{name}{{{inner}}}"
            values = [point[1] for point in series.get("points", [])]
            last = values[-1] if values else 0.0
            lines.append(
                f"  {rendered:<56} {last:>12.4g}  {_sparkline(values)}"
            )
    monitor = payload.get("monitor") or {}
    active = monitor.get("active", [])
    history = monitor.get("history", [])
    lines.append(
        f"  alerts: {monitor.get('fired', 0)} fired, {len(active)} active"
    )
    for alert in history:
        lines.append(
            f"    [{alert['state']:>8}] {alert['rule']}: "
            f"{alert['metric']} = {alert['value']:.4g} "
            f"(threshold {alert['threshold']:g})"
        )
    event_counts = payload.get("event_counts")
    if event_counts:
        rendered = ", ".join(f"{kind}={n}" for kind, n in event_counts.items())
        lines.append(f"  events: {rendered}")
    return "\n".join(lines)


def _format_event(event: Dict[str, object]) -> str:
    kind = event.get("kind", "?")
    fields = ", ".join(
        f"{key}={event[key]}"
        for key in sorted(event)
        if key not in ("kind", "ts")
    )
    return f"  event: {kind:<16} {fields}"


def _run_scrape(config: MonitorConfig, stream) -> Dict[str, object]:
    """Remote mode: sample a live gateway's /statsz into a local registry."""
    base = config.url.rstrip("/")
    registry = MetricsRegistry()
    monitor = SLOMonitor(
        registry,
        default_rules(
            p99_ms=config.alert_p99_ms,
            burn_ratio=config.alert_burn_rate,
            queue_depth=config.alert_queue_depth,
        ),
    )
    scrapes = 0
    for tick in range(config.ticks):
        with urllib.request.urlopen(base + "/statsz", timeout=30.0) as response:
            stats = json.loads(response.read().decode("utf-8"))
        now = time.time()
        record_sample(registry, stats, now)
        monitor.evaluate(now=now)
        scrapes += 1
        if config.watch and stream is not None:
            payload = {
                "source": f"scrape {base}/statsz ({scrapes}/{config.ticks})",
                "metrics": registry.to_dict(),
                "monitor": monitor.to_dict(),
            }
            print(render_dashboard(payload), file=stream)
            print("", file=stream)
        if tick + 1 < config.ticks:
            time.sleep(config.poll_interval_s)
    return {
        "source": f"scrape {base}/statsz",
        "scrapes": scrapes,
        "metrics": registry.to_dict(),
        "monitor": monitor.to_dict(),
    }


def _run_scenario(config: MonitorConfig, stream) -> Dict[str, object]:
    """In-process mode: a monitored loadgen run (optionally streamed live)."""
    from .loadgen_cli import LoadgenConfig, run_loadgen

    loadgen_config = LoadgenConfig(
        scenario=config.scenario,
        shards=config.shards,
        workers=config.workers,
        tenants=config.tenants,
        requests=config.requests,
        seed=config.seed,
        cache_capacity=config.cache_capacity,
        time_scale=config.time_scale,
        backend=config.backend,
        transport=config.transport,
        smoke=config.smoke,
        monitor=True,
        poll_interval_s=config.poll_interval_s,
        alert_p99_ms=config.alert_p99_ms,
        alert_burn_rate=config.alert_burn_rate,
        alert_queue_depth=config.alert_queue_depth,
    )
    if not config.watch or stream is None:
        report, _ = run_loadgen(loadgen_config)
    else:
        # Live tail: run the scenario on a worker thread and stream the
        # process-wide event log (installed by run_loadgen) as it grows.
        results: List = []
        errors: List[BaseException] = []

        def _target() -> None:
            try:
                results.append(run_loadgen(loadgen_config))
            except BaseException as exc:  # surfaced after the join
                errors.append(exc)

        thread = threading.Thread(target=_target, name="repro-monitor-run")
        thread.start()
        seen = 0
        while thread.is_alive():
            log = get_event_log()
            if log is not None:
                events = [event.to_dict() for event in log.events()]
                for event in events[seen:]:
                    print(_format_event(event), file=stream)
                seen = len(events)
            time.sleep(config.poll_interval_s)
        thread.join()
        if errors:
            raise errors[0]
        report = results[0][0]
        for event in report.monitor_artifacts["events"][seen:]:
            print(_format_event(event), file=stream)
    summary = report.metrics_summary or {}
    return {
        "source": (
            f"scenario {config.scenario} ({config.shards} shard(s), "
            f"{config.workers} workers, seed {config.seed})"
        ),
        "metrics": report.monitor_artifacts["metrics"],
        "monitor": report.monitor_artifacts["monitor"],
        "events": report.monitor_artifacts["events"],
        "event_counts": summary.get("event_counts", {}),
        "samples": summary.get("samples", 0),
        "slo": report.to_dict(timing=True).get("slo", {}),
    }


def run_monitor(config: MonitorConfig, stream=None) -> Dict[str, object]:
    """Run one monitor pass; returns the machine-readable payload."""
    if config.url is not None:
        return _run_scrape(config, stream)
    return _run_scenario(config, stream)


def print_monitor(
    config: MonitorConfig, json_target: Optional[str] = None
) -> Dict[str, object]:
    """Run, print the dashboard, optionally dump the plane as JSON.

    ``json_target``: ``None`` (no JSON), ``"-"`` (JSON-only stdout), or a
    path.  Mirrors ``print_loadgen``'s contract so the two subcommands
    compose identically in scripts.
    """
    stream = None if json_target == "-" else sys.stdout
    payload = run_monitor(config, stream=stream)
    serialized = json.dumps(payload, indent=2, sort_keys=True)
    if json_target == "-":
        sys.stdout.write(serialized + "\n")
        return payload
    print(render_dashboard(payload))
    if json_target is not None:
        with open(json_target, "w") as fh:
            fh.write(serialized + "\n")
        print(f"wrote {json_target}")
    return payload
