"""Command-line entry point: figure regeneration and the serving demo.

Installed as the ``repro-experiments`` console script; also runnable as
``python -m repro.experiments``.  Usage::

    python -m repro.experiments fig1          # accuracy vs N:M ratio
    python -m repro.experiments fig4 fig8     # several figures in one go
    python -m repro.experiments all           # every figure
    python -m repro.experiments --list        # available experiment names
    python -m repro.experiments --backend fast fig1   # vectorized backend
    python -m repro.experiments serve         # multi-tenant serving replay
    python -m repro.experiments serve --serve-users 3 --serve-requests 24
    python -m repro.experiments serve --shards 4 --workers threaded \
        --stats-json serve_stats.json         # sharded cluster replay

Each experiment prints the same rows/series the corresponding paper figure
reports (at the reduced scale documented in EXPERIMENTS.md).  ``serve``
personalizes several users through :mod:`repro.serve` and replays a mixed
request stream per-request vs micro-batched; with ``--shards N`` the same
stream also replays through the :mod:`repro.cluster` sharded runtime and the
per-shard telemetry (latency percentiles, queue depth, batch sizes) is
printed and optionally persisted with ``--stats-json``.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Sequence

from .common import configure_backend, format_table
from .fig1_nm_ratios import run_fig1
from .fig2_layerwise import run_fig2
from .fig3_crisp_vs_block import run_fig3
from .fig4_metadata import aggregate_overheads, run_fig4
from .fig7_class_sweep import run_fig7
from .fig8_hardware import aggregate_fig8, run_fig8
from .headline import run_headline
from .serve_demo import ServeDemoConfig, print_serve_demo

__all__ = ["EXPERIMENTS", "run_experiment", "main"]


def _print_fig4() -> None:
    rows = run_fig4()
    print(format_table(rows))
    print("\naverage metadata overhead vs CRISP:")
    for fmt, ratio in sorted(aggregate_overheads(rows).items()):
        print(f"  {fmt:>16}: {ratio:5.2f}x")


def _print_fig8() -> None:
    rows = run_fig8()
    print(format_table(aggregate_fig8(rows)))


def _print_headline() -> None:
    for key, value in run_headline().items():
        print(f"{key:>24}: {value:.3f}")


def _table_printer(runner: Callable[[], List[dict]]) -> Callable[[], None]:
    def _print() -> None:
        print(format_table(runner()))

    return _print


#: Experiment name -> zero-argument callable that runs it and prints its table.
EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig1": _table_printer(run_fig1),
    "fig2": _table_printer(run_fig2),
    "fig3": _table_printer(run_fig3),
    "fig4": _print_fig4,
    "fig7": _table_printer(run_fig7),
    "fig8": _print_fig8,
    "headline": _print_headline,
}

#: Every runnable command: the figure experiments plus the serving demo
#: (which needs CLI flags, so it is dispatched outside the EXPERIMENTS map).
ALL_COMMANDS = sorted([*EXPERIMENTS, "serve"])


def _write_stats_json(path: str, report: Dict) -> None:
    """Persist the serve replay's telemetry (``--stats-json``).

    Keeps the machine-readable surface: timings, the single-process service
    counters, and — when the replay ran sharded — the full cluster stats
    (per-shard latency percentiles, queue depths, batch distribution).
    """
    import json

    payload = {
        "timings": report["timings"],
        "stats": report["stats"],
        "cluster": report.get("cluster"),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {path}")


def run_experiment(name: str) -> None:
    """Run one named experiment and print its reproduced table."""
    if name not in EXPERIMENTS:
        raise KeyError(f"Unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    print(f"\n===== {name} =====")
    EXPERIMENTS[name]()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the CRISP paper's evaluation figures at reduced scale.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (fig1 fig2 fig3 fig4 fig7 fig8 headline), "
        "'serve' (multi-tenant serving replay), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--backend",
        choices=("reference", "fast"),
        default="reference",
        help="compute backend every kernel routes through (default: reference)",
    )
    serve_group = parser.add_argument_group("serve options")
    serve_group.add_argument(
        "--serve-users", type=int, default=2, help="tenants to personalize (default: 2)"
    )
    serve_group.add_argument(
        "--serve-requests", type=int, default=12, help="requests to replay (default: 12)"
    )
    serve_group.add_argument(
        "--serve-capacity", type=int, default=2,
        help="engine cache capacity, per process or per shard (default: 2)",
    )
    serve_group.add_argument(
        "--shards", type=int, default=1,
        help="serving shards; > 1 also replays the stream through the "
        "repro.cluster sharded runtime (default: 1)",
    )
    serve_group.add_argument(
        "--workers", choices=("threaded",), default="threaded",
        help="cluster worker execution model (default: threaded)",
    )
    serve_group.add_argument(
        "--stats-json", metavar="PATH",
        help="write the serve replay's service/cluster telemetry to PATH as JSON",
    )
    args = parser.parse_args(argv)

    configure_backend(args.backend)

    if args.list:
        for name in ALL_COMMANDS:
            print(name)
        return 0

    requested = list(args.experiments)
    if not requested:
        parser.print_help()
        return 1
    if requested == ["all"]:
        requested = ALL_COMMANDS

    unknown = [name for name in requested if name not in ALL_COMMANDS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; available: {ALL_COMMANDS}")

    if "serve" in requested:
        try:
            serve_config = ServeDemoConfig(
                users=args.serve_users,
                requests=args.serve_requests,
                cache_capacity=args.serve_capacity,
                shards=args.shards,
                workers=args.workers,
            )
        except ValueError as exc:
            parser.error(str(exc))

    for name in requested:
        if name == "serve":
            print("\n===== serve =====")
            report = print_serve_demo(serve_config)
            if args.stats_json:
                _write_stats_json(args.stats_json, report)
        else:
            run_experiment(name)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
