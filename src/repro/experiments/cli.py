"""Command-line entry point for regenerating the paper's figures.

Usage::

    python -m repro.experiments fig1          # accuracy vs N:M ratio
    python -m repro.experiments fig4 fig8     # several figures in one go
    python -m repro.experiments all           # every figure
    python -m repro.experiments --list        # available experiment names
    python -m repro.experiments --backend fast fig1   # vectorized backend

Each experiment prints the same rows/series the corresponding paper figure
reports (at the reduced scale documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Sequence

from .common import configure_backend, format_table
from .fig1_nm_ratios import run_fig1
from .fig2_layerwise import run_fig2
from .fig3_crisp_vs_block import run_fig3
from .fig4_metadata import aggregate_overheads, run_fig4
from .fig7_class_sweep import run_fig7
from .fig8_hardware import aggregate_fig8, run_fig8
from .headline import run_headline

__all__ = ["EXPERIMENTS", "run_experiment", "main"]


def _print_fig4() -> None:
    rows = run_fig4()
    print(format_table(rows))
    print("\naverage metadata overhead vs CRISP:")
    for fmt, ratio in sorted(aggregate_overheads(rows).items()):
        print(f"  {fmt:>16}: {ratio:5.2f}x")


def _print_fig8() -> None:
    rows = run_fig8()
    print(format_table(aggregate_fig8(rows)))


def _print_headline() -> None:
    for key, value in run_headline().items():
        print(f"{key:>24}: {value:.3f}")


def _table_printer(runner: Callable[[], List[dict]]) -> Callable[[], None]:
    def _print() -> None:
        print(format_table(runner()))

    return _print


#: Experiment name -> zero-argument callable that runs it and prints its table.
EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig1": _table_printer(run_fig1),
    "fig2": _table_printer(run_fig2),
    "fig3": _table_printer(run_fig3),
    "fig4": _print_fig4,
    "fig7": _table_printer(run_fig7),
    "fig8": _print_fig8,
    "headline": _print_headline,
}


def run_experiment(name: str) -> None:
    """Run one named experiment and print its reproduced table."""
    if name not in EXPERIMENTS:
        raise KeyError(f"Unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    print(f"\n===== {name} =====")
    EXPERIMENTS[name]()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the CRISP paper's evaluation figures at reduced scale.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (fig1 fig2 fig3 fig4 fig7 fig8 headline) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--backend",
        choices=("reference", "fast"),
        default="reference",
        help="compute backend every kernel routes through (default: reference)",
    )
    args = parser.parse_args(argv)

    configure_backend(args.backend)

    if args.list:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    requested = list(args.experiments)
    if not requested:
        parser.print_help()
        return 1
    if requested == ["all"]:
        requested = sorted(EXPERIMENTS)

    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; available: {sorted(EXPERIMENTS)}")

    for name in requested:
        run_experiment(name)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
