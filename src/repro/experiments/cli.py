"""Command-line entry point: figure regeneration and the serving demo.

Installed as the ``repro-experiments`` console script; also runnable as
``python -m repro.experiments``.  Usage::

    python -m repro.experiments fig1          # accuracy vs N:M ratio
    python -m repro.experiments fig4 fig8     # several figures in one go
    python -m repro.experiments all           # every figure
    python -m repro.experiments --list        # available experiment names
    python -m repro.experiments --backend fast fig1   # vectorized backend
    python -m repro.experiments serve         # multi-tenant serving replay
    python -m repro.experiments serve --serve-users 3 --serve-requests 24
    python -m repro.experiments serve --shards 4 --workers threaded \
        --stats-json serve_stats.json         # sharded cluster replay
    python -m repro.experiments loadgen --scenario zipf-burst --shards 4 \
        --seed 0 --json                       # deterministic scenario replay
    python -m repro.experiments loadgen --scenario shard-failure --shards 3 \
        --measure --json slo.json             # chaos run + measured SLOReport
    python -m repro.experiments loadgen --scenario steady-uniform --shards 2 \
        --transport http --json               # replay over a real HTTP socket
    python -m repro.experiments loadgen --scenario shard-failure --shards 2 \
        --monitor --metrics-json metrics.json --events-jsonl events.jsonl
    python -m repro.experiments loadgen --scenario diurnal-ramp --shards 2 \
        --autoscale --max-shards 4 --measure \
        --decisions-jsonl decisions.jsonl     # closed-loop autoscaled replay
    python -m repro.experiments monitor --scenario shard-failure --shards 2 \
        --watch                               # stream chaos events + alerts
    python -m repro.experiments monitor --url http://127.0.0.1:8080 \
        --ticks 10 --json -                   # scrape a live gateway's /statsz

Each experiment prints the same rows/series the corresponding paper figure
reports (at the reduced scale documented in EXPERIMENTS.md).  ``serve``
personalizes several users through :mod:`repro.serve` and replays a mixed
request stream per-request vs micro-batched; with ``--shards N`` the same
stream also replays through the :mod:`repro.cluster` sharded runtime and the
per-shard telemetry (latency percentiles, queue depth, batch sizes) is
printed and optionally persisted with ``--stats-json``.  ``loadgen`` drives
a named :mod:`repro.loadgen` traffic scenario (arrival process × tenant
popularity × optional fault schedule) against the sharded runtime and
reports the SLO scorecard; see the EXPERIMENTS.md scenario cookbook.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Sequence

from .common import configure_backend, format_table
from .fig1_nm_ratios import run_fig1
from .fig2_layerwise import run_fig2
from .fig3_crisp_vs_block import run_fig3
from .fig4_metadata import aggregate_overheads, run_fig4
from .fig7_class_sweep import run_fig7
from .fig8_hardware import aggregate_fig8, run_fig8
from .headline import run_headline
from .lifecycle_cli import LifecycleCliConfig, print_lifecycle
from .loadgen_cli import SMOKE_REQUESTS as LOADGEN_SMOKE_REQUESTS
from .loadgen_cli import LoadgenConfig, print_loadgen
from .monitor_cli import MonitorConfig, print_monitor
from .pipeline_cli import PipelineCliConfig, list_pipeline_steps, print_pipeline
from .serve_demo import ServeDemoConfig, print_serve_demo

__all__ = ["EXPERIMENTS", "run_experiment", "main"]


def _print_fig4() -> None:
    rows = run_fig4()
    print(format_table(rows))
    print("\naverage metadata overhead vs CRISP:")
    for fmt, ratio in sorted(aggregate_overheads(rows).items()):
        print(f"  {fmt:>16}: {ratio:5.2f}x")


def _print_fig8() -> None:
    rows = run_fig8()
    print(format_table(aggregate_fig8(rows)))


def _print_headline() -> None:
    for key, value in run_headline().items():
        print(f"{key:>24}: {value:.3f}")


def _table_printer(runner: Callable[[], List[dict]]) -> Callable[[], None]:
    def _print() -> None:
        print(format_table(runner()))

    return _print


#: Experiment name -> zero-argument callable that runs it and prints its table.
EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig1": _table_printer(run_fig1),
    "fig2": _table_printer(run_fig2),
    "fig3": _table_printer(run_fig3),
    "fig4": _print_fig4,
    "fig7": _table_printer(run_fig7),
    "fig8": _print_fig8,
    "headline": _print_headline,
}

#: Every runnable command: the figure experiments plus the serving demo, the
#: scenario load generator, the metrics-plane monitor, the experiment
#: pipeline runner, and the tenant-lifecycle replay (all need CLI flags, so
#: they are dispatched outside the EXPERIMENTS map).
ALL_COMMANDS = sorted(
    [*EXPERIMENTS, "serve", "loadgen", "monitor", "pipeline", "lifecycle"]
)


def _write_stats_json(path: str, report: Dict) -> None:
    """Persist the serve replay's telemetry (``--stats-json``).

    Keeps the machine-readable surface: timings, the single-process service
    counters, and — when the replay ran sharded — the full cluster stats
    (per-shard latency percentiles, queue depths, batch distribution).
    """
    import json

    payload = {
        "timings": report["timings"],
        "stats": report["stats"],
        "gateway": report.get("gateway"),
        "cluster": report.get("cluster"),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {path}")


def run_experiment(name: str) -> None:
    """Run one named experiment and print its reproduced table."""
    if name not in EXPERIMENTS:
        raise KeyError(f"Unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    print(f"\n===== {name} =====")
    EXPERIMENTS[name]()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the CRISP paper's evaluation figures at reduced scale.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (fig1 fig2 fig3 fig4 fig7 fig8 headline), "
        "'serve' (multi-tenant serving replay), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--backend",
        choices=("reference", "fast"),
        default=None,
        help="compute backend every kernel routes through (default: reference "
        "for the figure experiments; loadgen tenant engines default to fast, "
        "matching EngineSpec)",
    )
    serve_group = parser.add_argument_group("serve options")
    serve_group.add_argument(
        "--serve-users", type=int, default=2, help="tenants to personalize (default: 2)"
    )
    serve_group.add_argument(
        "--serve-requests", type=int, default=12, help="requests to replay (default: 12)"
    )
    serve_group.add_argument(
        "--serve-capacity", type=int, default=2,
        help="engine cache capacity, per process or per shard (default: 2)",
    )
    serve_group.add_argument(
        "--shards", type=int, default=1,
        help="serving shards; > 1 also replays the stream through the "
        "repro.cluster sharded runtime (default: 1)",
    )
    serve_group.add_argument(
        "--workers", choices=("threaded", "process"), default="threaded",
        help="cluster worker execution model: GIL-sharing shard threads, or "
        "shard processes serving zero-copy from shared-memory weights "
        "(default: threaded)",
    )
    serve_group.add_argument(
        "--stats-json", metavar="PATH",
        help="write the serve replay's service/cluster telemetry to PATH as JSON",
    )
    loadgen_group = parser.add_argument_group("loadgen options")
    loadgen_group.add_argument(
        "--scenario", default="steady-uniform",
        help="named traffic scenario preset (see `loadgen --list-scenarios`; "
        "default: steady-uniform)",
    )
    loadgen_group.add_argument(
        "--list-scenarios", action="store_true",
        help="list the scenario presets with their descriptions and exit",
    )
    loadgen_group.add_argument(
        "--seed", type=int, default=0,
        help="workload seed: same (scenario, tenants, seed) -> same plan, "
        "bit for bit (default: 0)",
    )
    loadgen_group.add_argument(
        "--loadgen-tenants", type=int, default=8, metavar="N",
        help="synthetic tenant fleet size (default: 8)",
    )
    loadgen_group.add_argument(
        "--loadgen-requests", type=int, default=None, metavar="N",
        help="override the scenario's request count (fault schedules rescale)",
    )
    loadgen_group.add_argument(
        "--transport", choices=("local", "loopback", "http", "direct"),
        default="local",
        help="how the replay reaches the runtime: Serving API v2 in process "
        "(local), GatewayClient over the JSON loopback wire, GatewayClient "
        "over a real HTTP socket on an ephemeral port, or 'direct' — the "
        "deprecated raw-facade entry point, auto-adapted to the same "
        "backend as 'local'; default: local",
    )
    loadgen_group.add_argument(
        "--time-scale", type=float, default=1.0,
        help="virtual->wall pacing multiplier; 0 replays as fast as possible "
        "(default: 1.0)",
    )
    loadgen_group.add_argument(
        "--json", nargs="?", const="-", metavar="PATH",
        help="emit the report as JSON to PATH (or stdout when no PATH); "
        "without --measure the payload is deterministic and byte-stable "
        "across runs of the same scenario/seed",
    )
    loadgen_group.add_argument(
        "--measure", action="store_true",
        help="include the wall-clock SLO block (latency percentiles, goodput, "
        "cluster merged p99) in the JSON payload",
    )
    loadgen_group.add_argument(
        "--smoke", action="store_true",
        help=f"shrink the scenario to {LOADGEN_SMOKE_REQUESTS} requests "
        "(fast CI sanity run; 'pipeline' also honours it)",
    )
    loadgen_group.add_argument(
        "--trace", action="store_true",
        help="record per-request hop spans (gateway/middleware/frontend/"
        "shard/engine) into the SLO report; forces a gateway transport",
    )
    loadgen_group.add_argument(
        "--autoscale", action="store_true",
        help="close the control loop: attach an Autoscaler to the telemetry "
        "poller (implies --monitor); --shards is the floor, --max-shards "
        "the ceiling; the report gains an autoscale line and --measure "
        "JSON a slo.autoscale block",
    )
    loadgen_group.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="autoscale shard ceiling (default: shards * 4)",
    )
    loadgen_group.add_argument(
        "--decisions-jsonl", metavar="PATH",
        help="write the autoscaled run's decision log to PATH, one JSON "
        "object per line (requires --autoscale)",
    )
    monitor_group = parser.add_argument_group("monitor / metrics options")
    monitor_group.add_argument(
        "--monitor", action="store_true",
        help="attach the metrics plane (TelemetryPoller + EventLog + "
        "SLOMonitor) to the loadgen run; the report gains a metrics line "
        "and --measure JSON a slo.metrics block",
    )
    monitor_group.add_argument(
        "--metrics-json", metavar="PATH",
        help="write the monitored run's full time-series + alert dump to "
        "PATH (implies --monitor for loadgen; also honoured by 'monitor')",
    )
    monitor_group.add_argument(
        "--events-jsonl", metavar="PATH",
        help="write the monitored run's structured event log to PATH, one "
        "JSON object per line (implies --monitor)",
    )
    monitor_group.add_argument(
        "--poll-interval", type=float, default=0.05, metavar="SECONDS",
        help="metrics sampling interval (default: 0.05)",
    )
    monitor_group.add_argument(
        "--alert-p99-ms", type=float, default=250.0, metavar="MS",
        help="p99-over-threshold alert rule threshold (default: 250)",
    )
    monitor_group.add_argument(
        "--alert-burn-rate", type=float, default=0.05, metavar="RATIO",
        help="rejection/failure burn-rate alert threshold (default: 0.05)",
    )
    monitor_group.add_argument(
        "--alert-queue-depth", type=float, default=64.0, metavar="N",
        help="queue-depth-sustained alert threshold (default: 64)",
    )
    monitor_group.add_argument(
        "--url", metavar="BASE_URL",
        help="monitor: scrape a live gateway's GET /statsz instead of "
        "running a scenario in process (e.g. http://127.0.0.1:8080)",
    )
    monitor_group.add_argument(
        "--ticks", type=int, default=5, metavar="N",
        help="monitor --url: number of /statsz scrapes (default: 5)",
    )
    monitor_group.add_argument(
        "--watch", action="store_true",
        help="monitor: stream lifecycle events live (in-process mode) or "
        "redraw the dashboard per scrape (--url mode)",
    )
    lifecycle_group = parser.add_argument_group("lifecycle options")
    lifecycle_group.add_argument(
        "--managed-only", action="store_true",
        help="lifecycle: replay only the managed arm instead of the "
        "static-vs-managed compare",
    )
    lifecycle_group.add_argument(
        "--audit-jsonl", metavar="PATH",
        help="lifecycle: write the managed arm's state-machine audit log to "
        "PATH, one JSON transition per line (byte-stable per seed)",
    )
    pipeline_group = parser.add_argument_group("pipeline options")
    pipeline_group.add_argument(
        "--pipeline", default="standard", metavar="NAME",
        help="named pipeline to run (see --list-steps; default: standard)",
    )
    pipeline_group.add_argument(
        "--store", default=None, metavar="PATH",
        help="content-addressed store directory (default: .repro-pipeline)",
    )
    pipeline_group.add_argument(
        "--status", action="store_true",
        help="report per-step cache residency without executing anything",
    )
    pipeline_group.add_argument(
        "--list-steps", action="store_true",
        help="list the pipeline's steps (execution order, deps, params) and exit",
    )
    pipeline_group.add_argument(
        "--force", action="append", default=[], metavar="STEP",
        help="re-run STEP even when cached (repeatable)",
    )
    args = parser.parse_args(argv)

    configure_backend(args.backend or "reference")

    if args.list:
        for name in ALL_COMMANDS:
            print(name)
        return 0
    if args.list_steps:
        try:
            list_pipeline_steps(
                PipelineCliConfig(pipeline=args.pipeline, smoke=args.smoke)
            )
        except ValueError as exc:
            parser.error(str(exc))
        return 0
    if args.list_scenarios:
        from repro.loadgen import SCENARIOS

        for name in sorted(SCENARIOS):
            print(f"{name:>16}: {SCENARIOS[name]().description}")
        return 0

    requested = list(args.experiments)
    if not requested:
        parser.print_help()
        return 1
    if requested == ["all"]:
        # 'pipeline' is excluded: it persists an on-disk store, which should
        # only happen when explicitly requested.
        requested = [name for name in ALL_COMMANDS if name != "pipeline"]

    unknown = [name for name in requested if name not in ALL_COMMANDS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; available: {ALL_COMMANDS}")

    if "serve" in requested:
        try:
            serve_config = ServeDemoConfig(
                users=args.serve_users,
                requests=args.serve_requests,
                cache_capacity=args.serve_capacity,
                shards=args.shards,
                workers=args.workers,
            )
        except ValueError as exc:
            parser.error(str(exc))

    if "loadgen" in requested:
        try:
            loadgen_config = LoadgenConfig(
                scenario=args.scenario,
                shards=args.shards,
                workers=args.workers,
                tenants=args.loadgen_tenants,
                requests=args.loadgen_requests,
                seed=args.seed,
                cache_capacity=args.serve_capacity,
                time_scale=args.time_scale,
                backend=args.backend or "fast",
                transport=args.transport,
                smoke=args.smoke,
                trace=args.trace,
                # The dump flags only make sense on a monitored run, so they
                # imply --monitor rather than silently writing nothing.
                monitor=bool(
                    args.monitor or args.metrics_json or args.events_jsonl
                ),
                autoscale=bool(args.autoscale or args.decisions_jsonl),
                max_shards=args.max_shards,
                poll_interval_s=args.poll_interval,
                alert_p99_ms=args.alert_p99_ms,
                alert_burn_rate=args.alert_burn_rate,
                alert_queue_depth=args.alert_queue_depth,
            )
        except ValueError as exc:
            parser.error(str(exc))

    if "monitor" in requested:
        try:
            monitor_config = MonitorConfig(
                scenario=args.scenario,
                shards=args.shards,
                workers=args.workers,
                tenants=args.loadgen_tenants,
                requests=args.loadgen_requests,
                seed=args.seed,
                cache_capacity=args.serve_capacity,
                time_scale=args.time_scale,
                backend=args.backend or "fast",
                transport=args.transport,
                smoke=args.smoke,
                poll_interval_s=args.poll_interval,
                alert_p99_ms=args.alert_p99_ms,
                alert_burn_rate=args.alert_burn_rate,
                alert_queue_depth=args.alert_queue_depth,
                url=args.url,
                ticks=args.ticks,
                watch=args.watch,
            )
        except ValueError as exc:
            parser.error(str(exc))

    if "lifecycle" in requested:
        try:
            lifecycle_config = LifecycleCliConfig(
                scenario=args.scenario if args.scenario != "steady-uniform"
                else "drift-step",
                tenants=args.loadgen_tenants if args.loadgen_tenants != 8 else 4,
                requests=args.loadgen_requests,
                seed=args.seed,
                compare=not args.managed_only,
                smoke=args.smoke,
            )
        except ValueError as exc:
            parser.error(str(exc))

    if "pipeline" in requested:
        try:
            pipeline_config = PipelineCliConfig(
                pipeline=args.pipeline,
                store=args.store if args.store is not None else ".repro-pipeline",
                smoke=args.smoke,
                force=tuple(args.force),
                status_only=args.status,
            )
        except ValueError as exc:
            parser.error(str(exc))

    for name in requested:
        if name == "serve":
            print("\n===== serve =====")
            report = print_serve_demo(serve_config)
            if args.stats_json:
                _write_stats_json(args.stats_json, report)
        elif name == "loadgen":
            # No banner in JSON-to-stdout mode: the output must stay a
            # clean, diffable JSON document.
            if args.json != "-":
                print("\n===== loadgen =====")
            print_loadgen(
                loadgen_config,
                json_target=args.json,
                measure=args.measure,
                metrics_json=args.metrics_json,
                events_jsonl=args.events_jsonl,
                decisions_jsonl=args.decisions_jsonl,
            )
        elif name == "monitor":
            if args.json != "-":
                print("\n===== monitor =====")
            print_monitor(monitor_config, json_target=args.metrics_json or args.json)
        elif name == "lifecycle":
            if args.json != "-":
                print("\n===== lifecycle =====")
            print_lifecycle(
                lifecycle_config,
                json_target=args.json,
                audit_jsonl=args.audit_jsonl,
                decisions_jsonl=args.decisions_jsonl,
            )
        elif name == "pipeline":
            print("\n===== pipeline =====")
            print_pipeline(pipeline_config)
        else:
            run_experiment(name)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
