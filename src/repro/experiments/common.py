"""Shared experiment plumbing: pre-training, personalisation setups and tables.

Every figure-reproduction experiment follows the paper's protocol:

1. train (or reuse) a *universal* model over the full class set of the
   dataset — the stand-in for the pre-trained ImageNet checkpoints the paper
   starts from;
2. sample a user profile (a handful of preferred classes) and build loaders
   restricted to those classes;
3. personalise the model with CRISP or a baseline pruner and measure
   accuracy / FLOPs / sparsity.

Pre-trained universal models are cached per configuration so sweeps that
reuse the same backbone do not retrain it for every point.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..data import DataLoader, SyntheticImageDataset, UserProfile, build_user_loaders, make_dataset, sample_user_profile
from ..nn.models.base import ClassifierModel
from ..serve import (
    EngineSpec,
    PersonalizationService,
    ServiceConfig,
    clear_universal_model_cache,
    restrict_head_to_classes,
    universal_model,
)

__all__ = [
    "PersonalizationSetup",
    "ExperimentScale",
    "TINY_SCALE",
    "SMALL_SCALE",
    "configure_backend",
    "pretrained_universal_model",
    "make_personalization_setup",
    "make_service",
    "clone_model",
    "format_table",
    "clear_model_cache",
]


def configure_backend(name: str) -> str:
    """Select the compute backend every experiment kernel routes through.

    Called by the CLI's ``--backend`` flag before any experiment runs.
    Returns the resolved backend name.
    """
    from ..backend import set_backend

    return set_backend(name).name


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how heavy an experiment run is.

    The ``tiny`` scale keeps every sweep point in the sub-second range so the
    test-suite and pytest-benchmark harness stay fast; ``small`` is the
    default for producing the EXPERIMENTS.md numbers.
    """

    name: str
    dataset_preset: str
    model_name: str
    pretrain_epochs: int
    finetune_epochs: int
    prune_iterations: int
    batch_size: int = 16
    samples_per_class: Optional[int] = None


TINY_SCALE = ExperimentScale(
    name="tiny",
    dataset_preset="synthetic-tiny",
    model_name="resnet_tiny",
    pretrain_epochs=2,
    finetune_epochs=1,
    prune_iterations=2,
)

SMALL_SCALE = ExperimentScale(
    name="small",
    dataset_preset="synthetic-cifar100",
    model_name="resnet_tiny",
    pretrain_epochs=4,
    finetune_epochs=1,
    prune_iterations=3,
    batch_size=16,
)


@dataclass
class PersonalizationSetup:
    """Everything a personalisation experiment needs for one sweep point."""

    dataset: SyntheticImageDataset
    profile: UserProfile
    model: ClassifierModel
    train_loader: DataLoader
    val_loader: DataLoader
    universal_accuracy: float


def clear_model_cache() -> None:
    """Drop cached pre-trained universal models (used by tests)."""
    clear_universal_model_cache()


def clone_model(model: ClassifierModel) -> ClassifierModel:
    """Deep-copy a model so pruning one sweep point does not affect the next."""
    return copy.deepcopy(model)


def pretrained_universal_model(
    scale: ExperimentScale,
    num_classes: int,
    input_size: int,
    seed: int = 0,
    dataset: Optional[SyntheticImageDataset] = None,
) -> Tuple[ClassifierModel, float]:
    """Train (or fetch from cache) a universal model over ``num_classes`` classes.

    Returns ``(model, validation_accuracy)``.  The cached model is never
    handed out directly — callers receive a deep copy so they can prune it.
    The cache itself lives in the serving layer
    (:func:`repro.serve.universal_model`) and is keyed by the full training
    protocol, so experiments and a :class:`~repro.serve.PersonalizationService`
    running the same protocol share one pre-trained backbone.
    """
    return universal_model(
        scale.model_name,
        scale.dataset_preset,
        scale.pretrain_epochs,
        num_classes=num_classes,
        input_size=input_size,
        batch_size=scale.batch_size,
        seed=seed,
        dataset=dataset,
    )


def make_service(
    scale: ExperimentScale,
    cache_capacity: int = 4,
    max_batch_size: Optional[int] = None,
    engine: Optional[EngineSpec] = None,
    seed: int = 0,
) -> PersonalizationService:
    """Build a :class:`~repro.serve.PersonalizationService` from an experiment scale.

    This is the bridge the CLI's ``serve`` demo and the serving benchmarks
    use: the scale's training protocol becomes the service's
    personalization protocol, and the serving-specific knobs (engine spec,
    cache capacity, micro-batch limit) ride on top.
    """
    return PersonalizationService(
        ServiceConfig(
            model_name=scale.model_name,
            dataset_preset=scale.dataset_preset,
            pretrain_epochs=scale.pretrain_epochs,
            finetune_epochs=scale.finetune_epochs,
            prune_iterations=scale.prune_iterations,
            batch_size=scale.batch_size,
            samples_per_class=scale.samples_per_class,
            cache_capacity=cache_capacity,
            max_batch_size=max_batch_size,
            engine=engine or EngineSpec(),
            seed=seed,
        )
    )


def make_personalization_setup(
    scale: ExperimentScale,
    num_user_classes: int,
    seed: int = 0,
    user_id: int = 0,
) -> PersonalizationSetup:
    """Build the full personalisation setup for one sweep point.

    The universal model's classification head is re-sized to the user's class
    count by keeping only the head rows of the preferred classes — the same
    "focus the model on the classes the user sees" step the paper performs
    before pruning.
    """
    dataset = make_dataset(scale.dataset_preset, seed=seed)
    model, universal_acc = pretrained_universal_model(
        scale,
        num_classes=dataset.num_classes,
        input_size=dataset.image_size,
        seed=seed,
        dataset=dataset,
    )
    profile = sample_user_profile(dataset, num_user_classes, user_id=user_id, seed=seed + user_id)
    train_loader, val_loader = build_user_loaders(
        dataset,
        profile,
        batch_size=scale.batch_size,
        samples_per_class=scale.samples_per_class,
        seed=seed,
    )

    # Restrict the classifier head to the user's classes (rows of the weight
    # matrix), keeping the backbone intact — the same step the serving
    # facade's personalization path performs.
    restrict_head_to_classes(model, profile.preferred_classes, dataset.num_classes)

    return PersonalizationSetup(
        dataset=dataset,
        profile=profile,
        model=model,
        train_loader=train_loader,
        val_loader=val_loader,
        universal_accuracy=universal_acc,
    )


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row dicts as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    widths = {col: len(col) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(fmt(row.get(col, ""))))

    header = " | ".join(col.ljust(widths[col]) for col in columns)
    separator = "-+-".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(" | ".join(fmt(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)
