"""Shared experiment plumbing: pre-training, personalisation setups and tables.

Every figure-reproduction experiment follows the paper's protocol:

1. train (or reuse) a *universal* model over the full class set of the
   dataset — the stand-in for the pre-trained ImageNet checkpoints the paper
   starts from;
2. sample a user profile (a handful of preferred classes) and build loaders
   restricted to those classes;
3. personalise the model with CRISP or a baseline pruner and measure
   accuracy / FLOPs / sparsity.

Pre-trained universal models are cached per configuration so sweeps that
reuse the same backbone do not retrain it for every point.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data import DataLoader, SyntheticImageDataset, UserProfile, build_user_loaders, make_dataset, sample_user_profile
from ..nn.models import build_model
from ..nn.models.base import ClassifierModel
from ..nn.trainer import TrainConfig, Trainer, evaluate

__all__ = [
    "PersonalizationSetup",
    "ExperimentScale",
    "TINY_SCALE",
    "SMALL_SCALE",
    "configure_backend",
    "pretrained_universal_model",
    "make_personalization_setup",
    "clone_model",
    "format_table",
    "clear_model_cache",
]


def configure_backend(name: str) -> str:
    """Select the compute backend every experiment kernel routes through.

    Called by the CLI's ``--backend`` flag before any experiment runs.
    Returns the resolved backend name.
    """
    from ..backend import set_backend

    return set_backend(name).name


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how heavy an experiment run is.

    The ``tiny`` scale keeps every sweep point in the sub-second range so the
    test-suite and pytest-benchmark harness stay fast; ``small`` is the
    default for producing the EXPERIMENTS.md numbers.
    """

    name: str
    dataset_preset: str
    model_name: str
    pretrain_epochs: int
    finetune_epochs: int
    prune_iterations: int
    batch_size: int = 16
    samples_per_class: Optional[int] = None


TINY_SCALE = ExperimentScale(
    name="tiny",
    dataset_preset="synthetic-tiny",
    model_name="resnet_tiny",
    pretrain_epochs=2,
    finetune_epochs=1,
    prune_iterations=2,
)

SMALL_SCALE = ExperimentScale(
    name="small",
    dataset_preset="synthetic-cifar100",
    model_name="resnet_tiny",
    pretrain_epochs=4,
    finetune_epochs=1,
    prune_iterations=3,
    batch_size=16,
)


@dataclass
class PersonalizationSetup:
    """Everything a personalisation experiment needs for one sweep point."""

    dataset: SyntheticImageDataset
    profile: UserProfile
    model: ClassifierModel
    train_loader: DataLoader
    val_loader: DataLoader
    universal_accuracy: float


_MODEL_CACHE: Dict[Tuple, Tuple[ClassifierModel, float]] = {}


def clear_model_cache() -> None:
    """Drop cached pre-trained universal models (used by tests)."""
    _MODEL_CACHE.clear()


def clone_model(model: ClassifierModel) -> ClassifierModel:
    """Deep-copy a model so pruning one sweep point does not affect the next."""
    return copy.deepcopy(model)


def pretrained_universal_model(
    scale: ExperimentScale,
    num_classes: int,
    input_size: int,
    seed: int = 0,
    dataset: Optional[SyntheticImageDataset] = None,
) -> Tuple[ClassifierModel, float]:
    """Train (or fetch from cache) a universal model over ``num_classes`` classes.

    Returns ``(model, validation_accuracy)``.  The cached model is never
    handed out directly — callers receive a deep copy so they can prune it.
    """
    from ..backend import active_backend

    # The backend participates in the cache key: different backends may
    # accumulate different floating-point round-off during training, and a
    # cached model must be reproducible for the backend that trained it.
    key = (
        scale.name,
        scale.model_name,
        scale.dataset_preset,
        num_classes,
        input_size,
        seed,
        active_backend().name,
    )
    if key not in _MODEL_CACHE:
        dataset = dataset or make_dataset(scale.dataset_preset, seed=seed)
        all_classes = list(range(num_classes))
        train_x, train_y = dataset.split("train", classes=all_classes)
        val_x, val_y = dataset.split("val", classes=all_classes)
        train_loader = DataLoader(train_x, train_y, batch_size=scale.batch_size, seed=seed)
        val_loader = DataLoader(val_x, val_y, batch_size=scale.batch_size, shuffle=False)

        model = build_model(
            scale.model_name, num_classes=num_classes, input_size=input_size, seed=seed
        )
        trainer = Trainer(model, TrainConfig(epochs=scale.pretrain_epochs, lr=0.05))
        trainer.fit(train_loader, val_loader=None)
        accuracy = evaluate(model, iter(val_loader))
        _MODEL_CACHE[key] = (model, accuracy)

    cached_model, accuracy = _MODEL_CACHE[key]
    return clone_model(cached_model), accuracy


def make_personalization_setup(
    scale: ExperimentScale,
    num_user_classes: int,
    seed: int = 0,
    user_id: int = 0,
) -> PersonalizationSetup:
    """Build the full personalisation setup for one sweep point.

    The universal model's classification head is re-sized to the user's class
    count by keeping only the head rows of the preferred classes — the same
    "focus the model on the classes the user sees" step the paper performs
    before pruning.
    """
    dataset = make_dataset(scale.dataset_preset, seed=seed)
    model, universal_acc = pretrained_universal_model(
        scale,
        num_classes=dataset.num_classes,
        input_size=dataset.image_size,
        seed=seed,
        dataset=dataset,
    )
    profile = sample_user_profile(dataset, num_user_classes, user_id=user_id, seed=seed + user_id)
    train_loader, val_loader = build_user_loaders(
        dataset,
        profile,
        batch_size=scale.batch_size,
        samples_per_class=scale.samples_per_class,
        seed=seed,
    )

    # Restrict the classifier head to the user's classes (rows of the weight
    # matrix), keeping the backbone intact.
    head = model.classifier
    # VGG wraps its head in a Sequential; the last prunable Linear is the head.
    from ..nn.layers import Linear
    from ..nn.models.base import prunable_layers

    linear_layers = [m for m in prunable_layers(model).values() if isinstance(m, Linear)]
    final = linear_layers[-1] if linear_layers else head
    if isinstance(final, Linear) and final.out_features == dataset.num_classes:
        keep_rows = np.asarray(profile.preferred_classes)
        final.weight.data = final.weight.data[keep_rows].copy()
        if final.bias is not None:
            final.bias.data = final.bias.data[keep_rows].copy()
        final.out_features = len(keep_rows)
    model.num_classes = profile.num_classes

    return PersonalizationSetup(
        dataset=dataset,
        profile=profile,
        model=model,
        train_loader=train_loader,
        val_loader=val_loader,
        universal_accuracy=universal_acc,
    )


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row dicts as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    widths = {col: len(col) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(fmt(row.get(col, ""))))

    header = " | ".join(col.ljust(widths[col]) for col in columns)
    separator = "-+-".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(" | ".join(fmt(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)
