"""CLI ``loadgen``: run a traffic scenario against the serving runtime.

The experiments CLI's window into :mod:`repro.loadgen`: build a synthetic
tenant fleet, synthesize a named scenario, replay it through a
:class:`~repro.cluster.ClusterService` with ``--shards`` workers, and print
the :class:`~repro.loadgen.report.SLOReport`.

JSON output is split along the determinism line:

* ``--json [PATH]`` (default: stdout) emits the *deterministic* payload —
  scenario, plan digest, planned distribution and (for fault-free
  scenarios) outcome counts + predictions digest.  Two runs of
  ``loadgen --scenario zipf-burst --shards 4 --seed 0 --json`` produce
  byte-identical output; CI diffs them to enforce it.
* ``--measure`` adds the wall-clock ``slo`` block (latency percentiles,
  goodput, cluster merged p99) to the JSON — honest numbers that naturally
  differ between runs.  The human-readable report on stderr-free stdout
  always shows them.
"""

from __future__ import annotations

import json
import sys
from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cluster import ClusterConfig, ClusterService
from ..gateway import (
    ClusterBackend,
    Gateway,
    GatewayClient,
    LoopbackTransport,
    serve_http,
)
from ..loadgen import (
    SCENARIOS,
    DriverConfig,
    LoadDriver,
    SLOReport,
    build_scenario,
    synthetic_fleet,
)
from ..metrics import (
    EventLog,
    MetricsRegistry,
    SLOMonitor,
    TelemetryPoller,
    default_rules,
    set_event_log,
)

__all__ = ["LoadgenConfig", "run_loadgen", "print_loadgen", "TRANSPORTS"]

#: --smoke shrinks every scenario to this many requests.
SMOKE_REQUESTS = 16

#: How the driver reaches the serving runtime:
#: * ``local`` — Serving API v2 in process (ClusterBackend; async futures);
#: * ``loopback`` — GatewayClient through the full JSON wire, in process;
#: * ``http`` — GatewayClient over a real socket (ephemeral
#:   ThreadingHTTPServer booted for the run);
#: * ``direct`` — deprecated alias: the raw ClusterService is handed to the
#:   driver, which auto-adapts it onto the same ClusterBackend ``local``
#:   builds explicitly (the old entry point, one shim away from the new).
TRANSPORTS = ("local", "loopback", "http", "direct")


@dataclass
class LoadgenConfig:
    """Knobs of one CLI loadgen run."""

    scenario: str = "steady-uniform"
    shards: int = 1
    workers: str = "threaded"  #: cluster worker kind (see repro.cluster.WORKER_KINDS)
    tenants: int = 8
    requests: Optional[int] = None  #: None -> the preset's default
    seed: int = 0
    cache_capacity: int = 2
    time_scale: float = 1.0
    backend: str = "fast"  #: compute backend the tenant engines pin
    transport: str = "local"  #: see TRANSPORTS
    smoke: bool = False
    trace: bool = False  #: record per-request hop spans into the SLO report
    monitor: bool = False  #: attach TelemetryPoller + EventLog + SLOMonitor
    autoscale: bool = False  #: close the loop: Autoscaler on the poller (implies monitor)
    max_shards: Optional[int] = None  #: autoscale ceiling (default: shards * 4)
    poll_interval_s: float = 0.05  #: metrics sampling interval (monitor runs)
    alert_p99_ms: float = 250.0  #: p99-over-threshold rule (monitor runs)
    alert_burn_rate: float = 0.05  #: rejection-burn-rate rule (monitor runs)
    alert_queue_depth: float = 64.0  #: queue-depth-sustained rule (monitor runs)

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; available: {sorted(SCENARIOS)}"
            )
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; available: {TRANSPORTS}"
            )
        from ..cluster import WORKER_KINDS

        if self.workers not in WORKER_KINDS:
            raise ValueError(
                f"unknown worker kind {self.workers!r}; available: {WORKER_KINDS}"
            )
        for name in ("shards", "tenants", "cache_capacity"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.requests is not None and self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {self.time_scale}")
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be > 0, got {self.poll_interval_s}"
            )
        if self.smoke and self.requests is None:
            self.requests = SMOKE_REQUESTS
        if self.autoscale:
            # The control loop rides the telemetry plane: no poller, no loop.
            self.monitor = True
            if self.max_shards is None:
                self.max_shards = self.shards * 4
        if self.max_shards is not None and self.max_shards < self.shards:
            raise ValueError(
                f"max_shards must be >= shards, got "
                f"{self.max_shards} < {self.shards}"
            )
        # A one-shard fleet has nothing to fail over to: shard-kill chaos
        # needs at least two shards to demonstrate heal/reroute.
        faults = SCENARIOS[self.scenario]().faults
        actions = {f.action for f in faults}
        if self.shards < 2 and "kill_shard" in actions:
            raise ValueError(
                f"scenario {self.scenario!r} kills a shard; run it with --shards >= 2"
            )
        # The gateway client transports are synchronous; fault schedules need
        # the async cluster target to race faults against in-flight futures.
        if faults and self.transport in ("loopback", "http"):
            raise ValueError(
                f"chaos scenario {self.scenario!r} needs an async cluster "
                "target; use --transport local (or direct)"
            )
        if self.trace:
            if faults:
                # The two modes need incompatible transports: hop tracing
                # wants the gateway-fronted wire, chaos wants raw futures.
                raise ValueError(
                    f"--trace cannot run chaos scenario {self.scenario!r}; "
                    "trace a fault-free scenario instead"
                )
            if self.transport in ("local", "direct"):
                # Hop decomposition covers gateway → middleware → frontend →
                # shard → engine, so a traced run must cross the gateway.
                self.transport = "loopback"


def run_loadgen(config: LoadgenConfig) -> Tuple[SLOReport, Dict[str, object]]:
    """Run one scenario; returns (report, deterministic JSON payload).

    The cluster's queue bound is sized to the whole workload so fault-free
    scenarios never shed load for capacity reasons — that is what keeps
    their outcome counts deterministic.  Scenarios that exist to exercise
    admission control (e.g. ``slow-shard``) declare their own ``high_water``
    and genuinely reject under backlog, by design.

    The replay reaches the cluster through ``config.transport``: the
    Serving API v2 backend in process (``local``), a ``GatewayClient`` over
    the loopback wire or a real HTTP socket, or the deprecated raw-facade
    path (``direct``).  Outcome counts and the predictions digest are
    transport-invariant by construction; the plan's ``per_shard`` view is
    not — a wire client sees one opaque endpoint, so it reports the whole
    plan under shard "0" while in-process targets report true placement.
    Byte-compare artifacts per transport (as CI does for loopback vs HTTP),
    or compare digests across transports.
    """
    scenario = build_scenario(config.scenario, requests=config.requests)
    registry, model_ids = synthetic_fleet(
        tenants=config.tenants, seed=config.seed, backend=config.backend
    )
    workload = scenario.synthesize(model_ids, seed=config.seed)
    max_pending = max(256, len(workload))
    cluster_config = ClusterConfig(
        shards=config.shards,
        workers=config.workers,
        cache_capacity=config.cache_capacity,
        max_pending=max_pending,
        # Scenarios built to trip admission control carry their own
        # threshold; everything else gets an effectively unbounded queue so
        # deterministic scenarios never shed load for capacity reasons.
        high_water=min(scenario.high_water or max_pending, max_pending),
    )
    driver_config = DriverConfig(time_scale=config.time_scale)
    from .. import trace as _trace

    if config.trace:
        # Fresh per-hop aggregator for this run's stats/SLO surfaces.
        _trace.reset_aggregator()
    with _trace.tracing(config.trace) if config.trace else _nullcontext():
        with ClusterService(cluster_config, registry=registry) as cluster:
            poller = previous_log = scaler = None
            if config.monitor:
                # The continuous observability plane, attached for the run:
                # lifecycle events into a fresh process-wide log, the
                # cluster's unified stats sampled into ring-buffer series,
                # and the stock SLO rules evaluated on every sample.  The
                # poller watches the *cluster* regardless of transport — the
                # common denominator every front door serves from.
                events = EventLog()
                previous_log = set_event_log(events)
                monitor = SLOMonitor(
                    MetricsRegistry(),
                    default_rules(
                        p99_ms=config.alert_p99_ms,
                        burn_ratio=config.alert_burn_rate,
                        queue_depth=config.alert_queue_depth,
                    ),
                    event_log=events,
                )
                poller = TelemetryPoller(
                    cluster,
                    monitor.registry,
                    interval_s=config.poll_interval_s,
                    monitor=monitor,
                )
                if config.autoscale:
                    # Close the loop before the first sample: the Autoscaler
                    # ticks on every poll (rule path) and on every alert
                    # transition (SLOMonitor hand-off), actuating the live
                    # cluster's add_shard / graceful remove_shard.
                    from ..autoscale import Autoscaler, default_policy

                    scaler = Autoscaler(
                        cluster,
                        default_policy(
                            min_shards=config.shards,
                            max_shards=config.max_shards,
                        ),
                    )
                    scaler.attach(poller)
                    scaler.wire(monitor)
                poller.start()
            try:
                if config.transport == "direct":
                    report = LoadDriver(cluster, driver_config).run(workload)
                elif config.transport == "local":
                    report = LoadDriver(ClusterBackend(cluster), driver_config).run(workload)
                else:
                    gateway = Gateway(ClusterBackend(cluster))
                    if config.transport == "loopback":
                        client = GatewayClient(LoopbackTransport(gateway))
                        report = LoadDriver(client, driver_config).run(workload)
                    else:  # http: a real socket on an ephemeral port
                        with serve_http(gateway) as server:
                            with GatewayClient(server.transport()) as client:
                                report = LoadDriver(client, driver_config).run(workload)
            finally:
                if poller is not None:
                    # The final sample folds the run's tail window in, so a
                    # replay shorter than one poll interval still lands its
                    # whole story (and gets one post-run rule evaluation).
                    poller.stop(final_sample=True)
                    set_event_log(previous_log)
            if poller is not None:
                report.metrics_summary = {
                    "samples": poller.samples,
                    "events": len(events),
                    "event_counts": events.counts(),
                    "series": monitor.registry.summary(),
                    "alerts": [alert.to_dict() for alert in monitor.alerts],
                    "alerts_fired": monitor.fired,
                }
                # The full artifacts (ring buffers, event ring, rule state)
                # for --metrics-json / --events-jsonl and the monitor CLI.
                report.monitor_artifacts = {
                    "metrics": monitor.registry.to_dict(),
                    "exposition": monitor.registry.render(),
                    "events": [event.to_dict() for event in events.events()],
                    "monitor": monitor.to_dict(),
                }
            if scaler is not None:
                # Snapshot the control loop while the cluster is still open:
                # decisions, fleet history and the shard-seconds integral the
                # autoscaled-vs-static comparison scores on.
                report.autoscale_summary = {
                    **scaler.to_dict(),
                    "shard_seconds": round(scaler.shard_seconds(), 6),
                }
    return report, report.to_dict(timing=False)


def print_loadgen(
    config: LoadgenConfig,
    json_target: Optional[str] = None,
    measure: bool = False,
    metrics_json: Optional[str] = None,
    events_jsonl: Optional[str] = None,
    decisions_jsonl: Optional[str] = None,
) -> SLOReport:
    """Run, print the human report, and optionally emit/persist JSON.

    ``json_target``: ``None`` (no JSON), ``"-"`` (stdout), or a path.
    With ``measure`` the JSON gains the wall-clock ``slo`` block.
    ``metrics_json`` / ``events_jsonl`` persist a monitored run's full
    time-series dump and event log (they imply ``--monitor`` upstream);
    ``decisions_jsonl`` persists an autoscaled run's decision log, one
    sorted-keys JSON line per verdict.
    """
    report, payload = run_loadgen(config)
    if measure:
        payload = report.to_dict(timing=True)
    serialized = json.dumps(payload, indent=2, sort_keys=True)
    if json_target == "-":
        # JSON-only stdout so the output can be diffed/piped byte-for-byte.
        sys.stdout.write(serialized + "\n")
    else:
        print(report.render())
        if json_target is not None:
            with open(json_target, "w") as fh:
                fh.write(serialized + "\n")
            print(f"wrote {json_target}")
    artifacts = getattr(report, "monitor_artifacts", None)
    if metrics_json is not None and artifacts is not None:
        dump = {
            "metrics": artifacts["metrics"],
            "monitor": artifacts["monitor"],
        }
        with open(metrics_json, "w") as fh:
            fh.write(json.dumps(dump, indent=2, sort_keys=True) + "\n")
        if json_target != "-":
            print(f"wrote {metrics_json}")
    if events_jsonl is not None and artifacts is not None:
        with open(events_jsonl, "w") as fh:
            for event in artifacts["events"]:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        if json_target != "-":
            print(f"wrote {events_jsonl}")
    summary = getattr(report, "autoscale_summary", None)
    if decisions_jsonl is not None and summary is not None:
        with open(decisions_jsonl, "w") as fh:
            for decision in summary["decisions"]:
                fh.write(json.dumps(decision, sort_keys=True) + "\n")
        if json_target != "-":
            print(f"wrote {decisions_jsonl}")
    return report
