"""Experiment E3 — Fig. 3: CRISP against pure block pruning across sparsity levels.

The paper's Fig. 3 sweeps global sparsity (with ten user-preferred ImageNet
classes) and shows that pure coarse-grained block pruning collapses once the
sparsity rate exceeds ~80 %, while CRISP's hybrid pattern keeps accuracy high
(~85 %) beyond 92 % sparsity.  This experiment reproduces the sweep with both
methods sharing the same saliency criterion, fine-tuning budget and block
sizes, so the only difference is the sparsity pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..pruning import CRISPConfig, CRISPPruner
from ..pruning.baselines import block_prune, dense_finetune
from .common import ExperimentScale, TINY_SCALE, clone_model, format_table, make_personalization_setup

__all__ = ["Fig3Config", "run_fig3"]


@dataclass
class Fig3Config:
    """Sweep configuration for the CRISP-vs-block-pruning comparison."""

    sparsity_levels: Sequence[float] = (0.5, 0.75, 0.875)
    block_sizes: Sequence[int] = (8, 16)
    nm_ratios: Sequence[Tuple[int, int]] = ((2, 4),)
    num_user_classes: int = 4
    scale: ExperimentScale = TINY_SCALE
    seed: int = 0


def run_fig3(config: Fig3Config | None = None) -> List[Dict]:
    """Run the sparsity sweep; returns one row per (method, sparsity, block size).

    Row keys: ``method``, ``pattern``, ``block_size``, ``target_sparsity``,
    ``achieved_sparsity``, ``accuracy``, ``dense_accuracy``.
    """
    config = config or Fig3Config()
    setup = make_personalization_setup(config.scale, config.num_user_classes, seed=config.seed)

    dense_model = clone_model(setup.model)
    dense_result = dense_finetune(
        dense_model, setup.train_loader, setup.val_loader, epochs=config.scale.finetune_epochs
    )
    dense_accuracy = dense_result.final_accuracy

    rows: List[Dict] = []
    for block_size in config.block_sizes:
        for target in config.sparsity_levels:
            # Pure block pruning baseline.
            block_model = clone_model(setup.model)
            block_result = block_prune(
                block_model,
                target_sparsity=target,
                block_size=block_size,
                train_loader=setup.train_loader,
                val_loader=setup.val_loader,
                finetune_epochs=config.scale.finetune_epochs,
            )
            rows.append(
                {
                    "method": "block",
                    "pattern": f"block-{block_size}",
                    "block_size": block_size,
                    "target_sparsity": target,
                    "achieved_sparsity": block_result.achieved_sparsity,
                    "accuracy": block_result.final_accuracy,
                    "dense_accuracy": dense_accuracy,
                }
            )

            # CRISP hybrid pattern at matched target sparsity.
            for n, m in config.nm_ratios:
                if target < 1.0 - n / m - 1e-9:
                    # The hybrid pattern cannot be *less* sparse than its N:M floor.
                    continue
                crisp_model = clone_model(setup.model)
                pruner = CRISPPruner(
                    crisp_model,
                    CRISPConfig(
                        n=n,
                        m=m,
                        block_size=block_size,
                        target_sparsity=target,
                        iterations=config.scale.prune_iterations,
                        finetune_epochs=config.scale.finetune_epochs,
                    ),
                )
                crisp_result = pruner.prune(setup.train_loader, setup.val_loader)
                rows.append(
                    {
                        "method": "crisp",
                        "pattern": f"{n}:{m}+B{block_size}",
                        "block_size": block_size,
                        "target_sparsity": target,
                        "achieved_sparsity": crisp_result.final_sparsity,
                        "accuracy": crisp_result.final_accuracy,
                        "dense_accuracy": dense_accuracy,
                    }
                )
    return rows


def main() -> None:  # pragma: no cover - CLI helper
    rows = run_fig3()
    print(format_table(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
