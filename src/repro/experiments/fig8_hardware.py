"""Experiment E6 — Fig. 8: layer-wise speedup and energy efficiency of CRISP-STC.

Fig. 8 compares CRISP-STC (block sizes 16/32/64, N:M patterns 1:4 / 2:4 /
3:4, global sparsity 80-90 %) with NVIDIA-STC, DSTC and a dense accelerator
on representative ResNet-50 layers, reporting per-layer speedup and energy
efficiency relative to dense.  The experiment drives the analytical
accelerator models of :mod:`repro.hw` over the same layer set and sparsity
sweep and emits per-layer and aggregate rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..hw import CrispSTC, DenseAccelerator, DualSideSTC, NvidiaSTC, compare_accelerators, resnet50_reference_layers
from .common import format_table

__all__ = ["Fig8Config", "run_fig8", "aggregate_fig8"]


@dataclass
class Fig8Config:
    """Sweep configuration for the hardware comparison."""

    nm_ratios: Sequence[Tuple[int, int]] = ((1, 4), (2, 4), (3, 4))
    block_sizes: Sequence[int] = (16, 32, 64)
    global_sparsities: Sequence[float] = (0.80, 0.85, 0.90)
    activation_density: float = 0.6
    batch: int = 1


def run_fig8(config: Fig8Config | None = None) -> List[Dict]:
    """Run the accelerator comparison sweep.

    Row keys: ``pattern``, ``global_sparsity``, ``block_keep_ratio``,
    ``layer``, ``accelerator``, ``cycles``, ``energy_uj``,
    ``speedup_vs_dense``, ``energy_eff_vs_dense``, ``bound``.
    """
    config = config or Fig8Config()
    rows: List[Dict] = []

    for n, m in config.nm_ratios:
        for sparsity in config.global_sparsities:
            keep = min(1.0, (1.0 - sparsity) / (n / m))
            workloads = resnet50_reference_layers(
                n=n,
                m=m,
                block_keep_ratio=keep,
                activation_density=config.activation_density,
                batch=config.batch,
            )
            accelerators = [DenseAccelerator(), NvidiaSTC(), DualSideSTC()]
            accelerators.extend(CrispSTC(block_size=b) for b in config.block_sizes)
            report = compare_accelerators(workloads, accelerators)

            for record in report.rows():
                record = dict(record)
                record["pattern"] = f"{n}:{m}"
                record["global_sparsity"] = sparsity
                record["block_keep_ratio"] = keep
                rows.append(record)
    return rows


def aggregate_fig8(rows: List[Dict]) -> List[Dict]:
    """Aggregate the per-layer rows into network-level speedup / energy ratios.

    One row per (pattern, global sparsity, accelerator) with the total-cycle
    speedup and total-energy efficiency relative to dense — the summary
    numbers behind the paper's "up to 14x / 30x" claims.
    """
    groups: Dict[Tuple[str, float, str], Dict[str, float]] = {}
    for row in rows:
        key = (row["pattern"], row["global_sparsity"], row["accelerator"])
        entry = groups.setdefault(key, {"cycles": 0.0, "energy": 0.0})
        entry["cycles"] += row["cycles"]
        entry["energy"] += row["energy_uj"]

    aggregated: List[Dict] = []
    for (pattern, sparsity, accelerator), entry in groups.items():
        dense_entry = groups[(pattern, sparsity, "dense")]
        aggregated.append(
            {
                "pattern": pattern,
                "global_sparsity": sparsity,
                "accelerator": accelerator,
                "total_cycles": entry["cycles"],
                "total_energy_uj": entry["energy"],
                "speedup_vs_dense": dense_entry["cycles"] / entry["cycles"],
                "energy_eff_vs_dense": dense_entry["energy"] / entry["energy"],
            }
        )
    aggregated.sort(key=lambda r: (r["pattern"], r["global_sparsity"], r["accelerator"]))
    return aggregated


def main() -> None:  # pragma: no cover - CLI helper
    rows = run_fig8()
    print(format_table(aggregate_fig8(rows)))


if __name__ == "__main__":  # pragma: no cover
    main()
