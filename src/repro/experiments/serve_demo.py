"""Request-replay demo of the multi-tenant serving stack (CLI ``serve``).

Personalizes a handful of users end to end through the
:class:`~repro.serve.PersonalizationService`, records a mixed-tenant request
stream over their validation data, and replays it twice:

* **per-request** — every request submitted and flushed on its own (the
  pre-serving pattern: one engine lookup + one forward per request);
* **micro-batched** — the whole stream submitted, then one flush, so the
  :class:`~repro.serve.BatchScheduler` fuses each tenant's requests into a
  single dispatch.

Both replays go through the Serving API v2 surface
(:class:`~repro.gateway.LocalBackend`), and the stream is additionally
replayed through a full :class:`~repro.gateway.Gateway` loopback wire
round-trip (envelope → middleware → router → backend and back) to show the
gateway's overhead next to the raw facade.  With ``shards > 1`` the
identical stream is replayed once more through a
:class:`~repro.cluster.ClusterService` (consistent-hash routing, one worker
thread per shard), and the cluster's telemetry — per-shard latency
percentiles, queue depths, batch-size distribution — joins the report.

All replays produce identical predictions; the demo prints the per-request
rows, the cache/scheduler counters and the throughput comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..gateway import Gateway, GatewayClient, LocalBackend, LoopbackTransport
from ..serve import EngineSpec, PersonalizeRequest, PredictRequest
from .common import ExperimentScale, TINY_SCALE, format_table, make_service

__all__ = ["ServeDemoConfig", "run_serve_demo", "print_serve_demo"]


@dataclass
class ServeDemoConfig:
    """Knobs of the request-replay demo."""

    users: int = 2
    num_user_classes: int = 3
    requests: int = 12
    request_batch: int = 1  #: images per request (real traffic is single-image)
    cache_capacity: int = 2
    shards: int = 1  #: > 1 replays the stream through a ClusterService too
    workers: str = "threaded"
    target_sparsity: float = 0.8
    scale: ExperimentScale = TINY_SCALE
    engine: EngineSpec = field(default_factory=lambda: EngineSpec(block_size=8))
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "users", "num_user_classes", "requests", "request_batch", "cache_capacity", "shards",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        from ..cluster import WORKER_KINDS

        if self.workers not in WORKER_KINDS:
            raise ValueError(f"workers must be one of {WORKER_KINDS}, got {self.workers!r}")


def _request_stream(service, config: ServeDemoConfig, model_ids: List[str]) -> List[PredictRequest]:
    """A round-robin mixed-tenant request stream over each user's val split."""
    dataset = service.dataset(config.seed)
    rng = np.random.default_rng(config.seed)
    per_user_images = []
    for model_id in model_ids:
        profile = service.registry.get(model_id).profile
        images, _ = dataset.split("val", classes=profile.preferred_classes)
        per_user_images.append(images)
    requests = []
    for i in range(config.requests):
        images = per_user_images[i % len(model_ids)]
        picks = rng.integers(0, len(images), size=config.request_batch)
        requests.append(
            PredictRequest(model_ids[i % len(model_ids)], images[picks], request_id=f"replay-{i:04d}")
        )
    return requests


def run_serve_demo(config: Optional[ServeDemoConfig] = None) -> Dict:
    """Run the demo; returns rows, timings and service counters."""
    config = config or ServeDemoConfig()
    service = make_service(
        config.scale,
        cache_capacity=config.cache_capacity,
        engine=config.engine,
        seed=config.seed,
    )

    model_ids = [
        service.personalize(
            PersonalizeRequest(
                user_id=user_id,
                num_classes=config.num_user_classes,
                target_sparsity=config.target_sparsity,
                seed=config.seed,
                engine=config.engine,
            )
        )
        for user_id in range(config.users)
    ]

    requests = _request_stream(service, config, model_ids)

    # Every replay goes through the Serving API v2 surface; the raw service
    # keeps working underneath it (LocalBackend is a thin adapter).
    api = LocalBackend(service)

    # Warm both dispatch shapes (engine build + im2col workspaces) so the
    # timed replays compare steady-state serving, not first-call allocation.
    api.predict_batch(list(requests))
    api.predict(requests[0])

    # Per-request replay: one flush per request (no micro-batching possible).
    start = time.perf_counter()
    solo = [api.predict(r) for r in requests]
    per_request_s = time.perf_counter() - start

    # Micro-batched replay of the identical stream.
    start = time.perf_counter()
    batched = api.predict_batch(requests)
    batched_s = time.perf_counter() - start

    for a, b in zip(solo, batched):
        np.testing.assert_array_equal(a.classes, b.classes)

    # Gateway replay: the same stream through the full loopback wire
    # (JSON envelope -> middleware -> router -> backend), per request.
    gateway = Gateway(api)
    client = GatewayClient(LoopbackTransport(gateway))
    start = time.perf_counter()
    gatewayed = [
        client.predict(r.model_id, r.inputs, request_id=r.request_id)
        for r in requests
    ]
    gateway_s = time.perf_counter() - start
    for a, b in zip(batched, gatewayed):
        np.testing.assert_array_equal(a.classes, b.classes)

    cluster_report = None
    if config.shards > 1:
        from ..cluster import ClusterConfig, ClusterService

        with ClusterService.from_service(
            service,
            ClusterConfig(
                shards=config.shards,
                workers=config.workers,
                cache_capacity=config.cache_capacity,
            ),
        ) as cluster:
            cluster.predict_batch(requests)  # warm per-shard engines
            start = time.perf_counter()
            clustered = cluster.predict_batch(requests)
            cluster_s = time.perf_counter() - start
            for a, b in zip(batched, clustered):
                np.testing.assert_array_equal(a.classes, b.classes)
            cluster_report = {
                "shards": config.shards,
                "workers": config.workers,
                "cluster_s": cluster_s,
                "stats": cluster.stats(),
            }

    rows = [
        {
            "request": r.request_id,
            "model_id": r.model_id,
            "images": resp.logits.shape[0],
            "batched_with": resp.batched_with,
            "top_class": int(resp.classes[0]),
        }
        for r, resp in zip(requests, batched)
    ]
    return {
        "model_ids": model_ids,
        "rows": rows,
        "timings": {
            "per_request_s": per_request_s,
            "batched_s": batched_s,
            "speedup": per_request_s / max(batched_s, 1e-12),
            "gateway_s": gateway_s,
        },
        "stats": api.stats(),
        "gateway": gateway.stats()["gateway"],
        "cluster": cluster_report,
    }


def print_serve_demo(config: Optional[ServeDemoConfig] = None) -> Dict:
    """CLI printer: replay table, counters and the throughput comparison.

    Returns the full report dict so the CLI can persist it (``--stats-json``).
    """
    report = run_serve_demo(config)
    print(f"tenants: {', '.join(report['model_ids'])}")
    print(format_table(report["rows"]))
    stats = report["stats"]
    print(f"\ncache:     {stats['cache']}")
    print(f"scheduler: {stats['scheduler']}")
    t = report["timings"]
    print(
        f"\nreplay: per-request {t['per_request_s'] * 1e3:.1f}ms, "
        f"micro-batched {t['batched_s'] * 1e3:.1f}ms "
        f"({t['speedup']:.1f}x, identical predictions)"
    )
    gateway = report["gateway"]
    print(
        f"gateway: loopback wire replay {t['gateway_s'] * 1e3:.1f}ms "
        f"({gateway['per_route']['predict']['requests']} calls through "
        "validation/metrics middleware, identical predictions)"
    )
    cluster = report.get("cluster")
    if cluster is not None:
        cstats = cluster["stats"]
        latency = cstats["totals"]["latency"]
        print(
            f"cluster: {cluster['shards']} {cluster['workers']} shards, "
            f"{cluster['cluster_s'] * 1e3:.1f}ms replay (identical predictions)"
        )
        print(
            f"  latency p50 {latency['p50_ms']:.1f}ms / p95 {latency['p95_ms']:.1f}ms "
            f"/ p99 {latency['p99_ms']:.1f}ms; "
            f"cache hit rate {cstats['cache']['hit_rate']:.2f}"
        )
        for shard in cstats["per_shard"]:
            telemetry = shard["telemetry"]
            print(
                f"  shard {shard['shard']}: {telemetry['completed']} served, "
                f"{telemetry['rejected']} rejected, "
                f"mean batch {telemetry['batch_size']['mean']:.1f}, "
                f"max queue {telemetry['queue_depth']['max']}"
            )
    return report
