"""``python -m repro.experiments`` — regenerate the paper's figures from the CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
