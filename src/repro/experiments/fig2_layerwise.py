"""Experiment E2 — Fig. 2: layer-wise sparsity distribution.

Fig. 2 of the paper motivates non-uniform pruning: when pruning is driven by
a class-aware global criterion, some layers can be pruned to ~99 % while
others must stay comparatively dense.  The experiment runs CRISP at a high
global sparsity target and reports the achieved per-layer sparsity
distribution, demonstrating that the global rank-position selection indeed
produces a non-uniform allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..pruning import CRISPConfig, CRISPPruner
from .common import ExperimentScale, TINY_SCALE, format_table, make_personalization_setup

__all__ = ["Fig2Config", "run_fig2"]


@dataclass
class Fig2Config:
    """Configuration for the layer-wise sparsity distribution experiment."""

    num_user_classes: int = 4
    target_sparsity: float = 0.85
    n: int = 2
    m: int = 4
    block_size: int = 8
    scale: ExperimentScale = TINY_SCALE
    seed: int = 0


def run_fig2(config: Fig2Config | None = None) -> List[Dict]:
    """Run CRISP once and report per-layer sparsity.

    Row keys: ``layer``, ``sparsity``, ``weights``, ``global_sparsity``.
    The last row (``layer == "<global>"``) aggregates the distribution
    statistics (min / max / spread) that make the Fig. 2 point.
    """
    config = config or Fig2Config()
    setup = make_personalization_setup(config.scale, config.num_user_classes, seed=config.seed)

    pruner = CRISPPruner(
        setup.model,
        CRISPConfig(
            n=config.n,
            m=config.m,
            block_size=config.block_size,
            target_sparsity=config.target_sparsity,
            iterations=config.scale.prune_iterations,
            finetune_epochs=config.scale.finetune_epochs,
        ),
    )
    result = pruner.prune(setup.train_loader, setup.val_loader)

    final_record = result.history[-1]
    rows: List[Dict] = []
    from ..nn.models.base import prunable_layers

    layer_sizes = {name: layer.weight.size for name, layer in prunable_layers(setup.model).items()}
    for layer_name, sparsity in final_record.layer_sparsity.items():
        rows.append(
            {
                "layer": layer_name,
                "sparsity": sparsity,
                "weights": layer_sizes.get(layer_name, 0),
                "global_sparsity": result.final_sparsity,
            }
        )

    sparsities = np.array([row["sparsity"] for row in rows])
    rows.append(
        {
            "layer": "<global>",
            "sparsity": result.final_sparsity,
            "weights": int(sum(layer_sizes.values())),
            "global_sparsity": result.final_sparsity,
            "min_layer_sparsity": float(sparsities.min()),
            "max_layer_sparsity": float(sparsities.max()),
            "sparsity_spread": float(sparsities.max() - sparsities.min()),
        }
    )
    return rows


def main() -> None:  # pragma: no cover - CLI helper
    rows = run_fig2()
    print(format_table(rows, columns=["layer", "weights", "sparsity", "global_sparsity"]))


if __name__ == "__main__":  # pragma: no cover
    main()
