"""Experiment E5 — Fig. 7: accuracy vs. number of user-preferred classes.

Fig. 7 is the paper's main accuracy result: for ResNet-50, VGG-16 and
MobileNetV2 on CIFAR-100 and ImageNet, CRISP tracks the dense fine-tuned
upper bound across user class counts while pruning far more aggressively
(lower normalized FLOPs) than the channel-pruning baselines (OCAP / CAP'NN).
The global sparsity target scales with the number of classes: fewer classes
allow more pruning.

This experiment reproduces the sweep on the synthetic datasets with three
methods per point: dense fine-tuning (upper bound), CRISP, and the
class-aware channel-pruning baseline, reporting accuracy and the normalized
FLOPs ratio for each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..pruning import CRISPConfig, CRISPPruner, flops_ratio
from ..pruning.baselines import channel_prune, dense_finetune
from .common import ExperimentScale, TINY_SCALE, clone_model, format_table, make_personalization_setup

__all__ = ["Fig7Config", "run_fig7", "sparsity_for_class_count"]


def sparsity_for_class_count(
    num_classes: int, total_classes: int, max_sparsity: float = 0.9, min_sparsity: float = 0.5
) -> float:
    """Global sparsity target as a function of the user's class count.

    The paper varies the global sparsity with the number of user-preferred
    classes ("since we are primarily focusing on a small subset of the
    original class distribution, it becomes feasible to proportionally reduce
    the model size").  We interpolate between ``max_sparsity`` (one class)
    and ``min_sparsity`` (all classes) on a logarithmic class-count axis.
    """
    if not 1 <= num_classes <= total_classes:
        raise ValueError(f"num_classes must be in [1, {total_classes}], got {num_classes}")
    import math

    fraction = math.log(num_classes) / math.log(max(2, total_classes))
    fraction = min(1.0, fraction)
    return max_sparsity - (max_sparsity - min_sparsity) * fraction


@dataclass
class Fig7Config:
    """Sweep configuration for the class-count experiment."""

    class_counts: Sequence[int] = (2, 4, 8)
    datasets: Sequence[str] = ("synthetic-tiny",)
    models: Sequence[str] = ("resnet_tiny",)
    n: int = 2
    m: int = 4
    block_size: int = 8
    scale: ExperimentScale = TINY_SCALE
    max_sparsity: float = 0.875
    min_sparsity: float = 0.5
    seed: int = 0


def run_fig7(config: Fig7Config | None = None) -> List[Dict]:
    """Run the class-count sweep.

    Row keys: ``dataset``, ``model``, ``num_classes``, ``method``,
    ``accuracy``, ``flops_ratio``, ``sparsity``.
    """
    config = config or Fig7Config()
    rows: List[Dict] = []

    for dataset_preset in config.datasets:
        for model_name in config.models:
            scale = ExperimentScale(
                name=f"{config.scale.name}-{model_name}-{dataset_preset}",
                dataset_preset=dataset_preset,
                model_name=model_name,
                pretrain_epochs=config.scale.pretrain_epochs,
                finetune_epochs=config.scale.finetune_epochs,
                prune_iterations=config.scale.prune_iterations,
                batch_size=config.scale.batch_size,
            )
            for num_classes in config.class_counts:
                setup = make_personalization_setup(scale, num_classes, seed=config.seed)
                total_classes = setup.dataset.num_classes
                target = sparsity_for_class_count(
                    num_classes,
                    total_classes,
                    max_sparsity=config.max_sparsity,
                    min_sparsity=config.min_sparsity,
                )

                # Dense fine-tuned upper bound.
                dense_model = clone_model(setup.model)
                dense_result = dense_finetune(
                    dense_model,
                    setup.train_loader,
                    setup.val_loader,
                    epochs=scale.finetune_epochs,
                )
                rows.append(
                    {
                        "dataset": dataset_preset,
                        "model": model_name,
                        "num_classes": num_classes,
                        "method": "dense",
                        "accuracy": dense_result.final_accuracy,
                        "flops_ratio": 1.0,
                        "sparsity": 0.0,
                    }
                )

                # CRISP.
                crisp_model = clone_model(setup.model)
                pruner = CRISPPruner(
                    crisp_model,
                    CRISPConfig(
                        n=config.n,
                        m=config.m,
                        block_size=config.block_size,
                        target_sparsity=target,
                        iterations=scale.prune_iterations,
                        finetune_epochs=scale.finetune_epochs,
                    ),
                )
                crisp_result = pruner.prune(setup.train_loader, setup.val_loader)
                rows.append(
                    {
                        "dataset": dataset_preset,
                        "model": model_name,
                        "num_classes": num_classes,
                        "method": "crisp",
                        "accuracy": crisp_result.final_accuracy,
                        "flops_ratio": flops_ratio(crisp_model, setup.dataset.image_size),
                        "sparsity": crisp_result.final_sparsity,
                    }
                )

                # Channel-pruning baseline (OCAP / CAP'NN style) at a FLOPs
                # budget that is *less* aggressive than CRISP's, as in the paper.
                channel_model = clone_model(setup.model)
                channel_result = channel_prune(
                    channel_model,
                    target_sparsity=min(0.6, target),
                    train_loader=setup.train_loader,
                    val_loader=setup.val_loader,
                    finetune_epochs=scale.finetune_epochs,
                )
                rows.append(
                    {
                        "dataset": dataset_preset,
                        "model": model_name,
                        "num_classes": num_classes,
                        "method": "channel",
                        "accuracy": channel_result.final_accuracy,
                        "flops_ratio": channel_result.flops_ratio,
                        "sparsity": channel_result.achieved_sparsity,
                    }
                )
    return rows


def main() -> None:  # pragma: no cover - CLI helper
    rows = run_fig7()
    print(format_table(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
