"""Experiment E4 — Fig. 4 (right): metadata overhead of sparse storage formats.

The paper reports that encoding a CRISP-pruned weight matrix with
general-purpose sparse formats costs roughly 5x (CSR) and 7x (ELLPACK) more
metadata than the CRISP hybrid format (block indices + 2-bit intra-group
offsets).  The experiment builds hybrid-sparse weight matrices with the
shapes of representative ResNet-50 layers, encodes them in every format and
reports metadata bits and overhead ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..sparsity import HybridSparsityConfig, compare_formats, hybrid_mask
from .common import format_table

__all__ = ["Fig4Config", "run_fig4", "DEFAULT_LAYER_SHAPES"]

#: Reshaped (HWR, S) weight shapes of representative ResNet-50 layers,
#: reduced by 4x in each dimension to keep the dense encodings cheap to build.
DEFAULT_LAYER_SHAPES: Tuple[Tuple[str, int, int], ...] = (
    ("layer1.conv2", 144, 16),
    ("layer2.conv2", 288, 32),
    ("layer3.conv2", 576, 64),
    ("layer3.conv3", 64, 256),
)


@dataclass
class Fig4Config:
    """Configuration of the storage-format comparison."""

    layer_shapes: Sequence[Tuple[str, int, int]] = DEFAULT_LAYER_SHAPES
    n: int = 2
    m: int = 4
    block_size: int = 16
    target_sparsity: float = 0.875
    seed: int = 0


def run_fig4(config: Fig4Config | None = None) -> List[Dict]:
    """Encode hybrid-sparse matrices in every format.

    Row keys: ``layer``, ``format``, ``nnz``, ``data_bits``, ``metadata_bits``,
    ``total_bits``, ``metadata_vs_crisp`` (the Fig. 4 overhead ratio).
    """
    config = config or Fig4Config()
    rng = np.random.default_rng(config.seed)
    hybrid_config = HybridSparsityConfig(config.n, config.m, config.block_size)

    rows: List[Dict] = []
    for name, rows_dim, cols_dim in config.layer_shapes:
        weight = rng.normal(size=(rows_dim, cols_dim))
        mask, _ = hybrid_mask(
            np.abs(weight), hybrid_config, target_sparsity=config.target_sparsity
        )
        sparse_weight = weight * mask

        summaries = compare_formats(
            sparse_weight,
            n=config.n,
            m=config.m,
            block_size=config.block_size,
        )
        crisp_meta = summaries["crisp"].metadata_bits
        for fmt_name, summary in summaries.items():
            rows.append(
                {
                    "layer": name,
                    "format": fmt_name,
                    "nnz": summary.nnz,
                    "data_bits": summary.data_bits,
                    "metadata_bits": summary.metadata_bits,
                    "total_bits": summary.total_bits,
                    "metadata_vs_crisp": (
                        summary.metadata_bits / crisp_meta if crisp_meta else float("inf")
                    ),
                }
            )
    return rows


def aggregate_overheads(rows: List[Dict]) -> Dict[str, float]:
    """Average metadata-overhead ratio (vs. CRISP) per format across layers."""
    totals: Dict[str, List[float]] = {}
    for row in rows:
        totals.setdefault(row["format"], []).append(row["metadata_vs_crisp"])
    return {fmt: float(np.mean(vals)) for fmt, vals in totals.items()}


def main() -> None:  # pragma: no cover - CLI helper
    rows = run_fig4()
    print(format_table(rows))
    print()
    for fmt, ratio in aggregate_overheads(rows).items():
        print(f"{fmt:>16}: {ratio:5.1f}x metadata vs CRISP")


if __name__ == "__main__":  # pragma: no cover
    main()
