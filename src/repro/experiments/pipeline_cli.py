"""CLI ``pipeline``: run and inspect content-addressed experiment DAGs.

The experiments CLI's window into :mod:`repro.pipeline`: pick a named
pipeline (``--pipeline``, see :data:`repro.pipeline.PIPELINES`), point it at
an on-disk store (``--store``), and either execute it (cached steps are
verified byte-identical hits, everything else runs) or report per-step cache
residency without executing anything (``--status``).

Resumability is the point: interrupt a run, re-invoke the same command, and
every step that already completed is a cache hit — only the remainder (and
anything whose params/code/inputs changed) executes.  ``--smoke`` selects
each pipeline's shrunken variant for CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Tuple

from ..pipeline import Pipeline, PipelineStore, RunSummary, build_pipeline, pipeline_names

__all__ = ["PipelineCliConfig", "build_cli_pipeline", "print_pipeline"]

#: Default on-disk store root (relative to the working directory).
DEFAULT_STORE = ".repro-pipeline"


@dataclass
class PipelineCliConfig:
    """Knobs of one CLI pipeline invocation."""

    pipeline: str = "standard"
    store: str = DEFAULT_STORE
    smoke: bool = False
    force: Tuple[str, ...] = ()
    status_only: bool = False

    def __post_init__(self) -> None:
        if self.pipeline not in pipeline_names():
            raise ValueError(
                f"unknown pipeline {self.pipeline!r}; available: {pipeline_names()}"
            )


def build_cli_pipeline(config: PipelineCliConfig) -> Pipeline:
    return build_pipeline(
        config.pipeline, PipelineStore(config.store), smoke=config.smoke
    )


def list_pipeline_steps(config: PipelineCliConfig) -> None:
    """``--list-steps``: the DAG in execution order, with deps and params."""
    import tempfile

    # Listing never touches the store; a throwaway root avoids creating the
    # real store directory as a side effect of an inspection command.
    with tempfile.TemporaryDirectory() as tmp:
        pipeline = build_pipeline(config.pipeline, PipelineStore(tmp), smoke=config.smoke)
    print(f"pipeline {config.pipeline} ({len(pipeline.order)} steps):")
    for name in pipeline.order:
        step = pipeline.steps[name]
        deps = ", ".join(step.deps) if step.deps else "-"
        params = json.dumps(step.params, sort_keys=True)
        print(f"  {name:<28} deps: {deps:<40} params: {params}")


def print_pipeline_status(config: PipelineCliConfig) -> None:
    """``--status``: per-step cache residency, no execution."""
    pipeline = build_cli_pipeline(config)
    rows = pipeline.status()
    cached = sum(1 for row in rows if row["cached"])
    print(f"pipeline {config.pipeline} @ {config.store}: {cached}/{len(rows)} cached")
    for row in rows:
        state = "cached" if row["cached"] else "stale"
        print(f"  {state:>6}  {row['name']:<28} key={row['key'][:16]}")


def run_pipeline(config: PipelineCliConfig) -> RunSummary:
    """``pipeline`` (run): execute the DAG, streaming per-step progress."""
    from ..serve import set_universal_model_store

    pipeline = build_cli_pipeline(config)

    def progress(result) -> None:
        print(
            f"  {result.status:>4}  {result.name:<28} "
            f"{result.elapsed_s * 1e3:8.1f}ms",
            flush=True,
        )

    print(f"pipeline {config.pipeline} @ {config.store}:")
    # Steps that pre-train universal backbones share the pipeline store as
    # their disk tier, so a backbone is trained once per content key across
    # runs (and across pipelines pointed at the same store).
    set_universal_model_store(pipeline.store)
    try:
        summary = pipeline.run(force=config.force, progress=progress)
    finally:
        set_universal_model_store(None)
    print(f"  {summary.hits} hit(s), {summary.ran} ran")
    return summary


def print_pipeline(config: PipelineCliConfig) -> Optional[RunSummary]:
    """Dispatch one CLI pipeline invocation (status or run)."""
    if config.status_only:
        print_pipeline_status(config)
        return None
    return run_pipeline(config)
