"""CLI ``lifecycle``: drift-detect → re-prune → canary a drifting fleet.

The experiments CLI's window into :mod:`repro.lifecycle`: replay a named
class-drift scenario through the virtually-clocked lifecycle harness, in
one arm (``--static`` disables the control loop) or both
(``--lifecycle-compare``), and print what the state machine did.

Everything the command emits is deterministic: the replay is a pure
function of (scenario, tenants, requests, seed, policy), so ``--json``
payloads, ``--audit-jsonl`` transition logs and ``--decisions-jsonl``
rollout decision logs are byte-identical across same-seed runs — CI diffs
two runs to enforce it.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from typing import Dict, Optional

from ..lifecycle import run_lifecycle_compare, run_lifecycle_replay
from ..loadgen import SCENARIOS, build_scenario
from ..loadgen.popularity import ClassDriftPopularity

__all__ = ["LifecycleCliConfig", "run_lifecycle_cli", "print_lifecycle"]

#: --smoke shrinks the replay to this many requests.
SMOKE_REQUESTS = 128


def _drift_scenarios() -> list:
    names = []
    for name in sorted(SCENARIOS):
        if isinstance(SCENARIOS[name]().popularity, ClassDriftPopularity):
            names.append(name)
    return names


@dataclass
class LifecycleCliConfig:
    """Knobs of one CLI lifecycle run."""

    scenario: str = "drift-step"
    tenants: int = 4
    requests: Optional[int] = None  #: None -> the harness default (192)
    seed: int = 0
    compare: bool = True  #: run both arms; False replays the managed arm only
    smoke: bool = False

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; available: {sorted(SCENARIOS)}"
            )
        if not isinstance(SCENARIOS[self.scenario]().popularity, ClassDriftPopularity):
            raise ValueError(
                f"scenario {self.scenario!r} has no class-drift schedule; "
                f"drift scenarios: {_drift_scenarios()}"
            )
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.requests is not None and self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.smoke and self.requests is None:
            self.requests = SMOKE_REQUESTS


def run_lifecycle_cli(config: LifecycleCliConfig) -> Dict[str, object]:
    """Run the configured replay; returns the JSON-stable payload."""
    kwargs = dict(
        scenario=config.scenario,
        tenants=config.tenants,
        seed=config.seed,
    )
    if config.requests is not None:
        kwargs["requests"] = config.requests
    if config.compare:
        return run_lifecycle_compare(**kwargs)
    return run_lifecycle_replay(lifecycle=True, **kwargs)


def _managed_arm(payload: Dict[str, object]) -> Dict[str, object]:
    return payload["managed"] if "managed" in payload else payload


def _dump(path: str, text: str) -> None:
    with open(path, "w") as fh:
        fh.write(text)
        if text and not text.endswith("\n"):
            fh.write("\n")
    print(f"wrote {path}", file=sys.stderr)


def print_lifecycle(
    config: LifecycleCliConfig,
    json_target: Optional[str] = None,
    audit_jsonl: Optional[str] = None,
    decisions_jsonl: Optional[str] = None,
) -> Dict[str, object]:
    """Run + report one lifecycle replay; optionally dump the artifacts.

    ``json_target`` of ``"-"`` streams the full payload to stdout (no
    banner — the output stays a clean, diffable JSON document).
    """
    payload = run_lifecycle_cli(config)
    managed = _managed_arm(payload)

    if audit_jsonl:
        _dump(audit_jsonl, managed["audit_jsonl"])
    if decisions_jsonl:
        _dump(decisions_jsonl, managed["decisions_jsonl"])

    if json_target == "-":
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return payload
    if json_target:
        with open(json_target, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {json_target}", file=sys.stderr)

    scenario = build_scenario(config.scenario)
    print(f"scenario: {config.scenario} ({scenario.description})")
    print(
        f"tenants={managed['tenants']} requests={managed['requests']} "
        f"seed={managed['seed']}"
    )
    mgr = managed["manager"]
    print(
        f"lifecycle: cycles={mgr['cycles']} promoted={mgr['promoted']} "
        f"rolled_back={mgr['rolled_back']} transitions={mgr['transitions']}"
    )
    acc = managed["accuracy"]
    print(
        f"accuracy: first_window={acc['first_window']} "
        f"final_window={acc['final_window']} overall={acc['overall']}"
    )
    if "compare" in payload:
        cmp_block = payload["compare"]
        print(
            f"compare: static={cmp_block['static_final_accuracy']} "
            f"managed={cmp_block['managed_final_accuracy']} "
            f"delta={cmp_block['accuracy_delta']} "
            f"slo_held={cmp_block['slo_held']} "
            f"lifecycle_wins={cmp_block['lifecycle_wins']}"
        )
    print("audit:")
    for record in managed["audit"]:
        print(
            f"  t={record['at']:.4f} {record['tenant']:>10} "
            f"{record['from_state']:>11} -> {record['to_state']:<11} "
            f"({record['reason']})"
        )
    return payload
