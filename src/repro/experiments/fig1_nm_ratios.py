"""Experiment E1 — Fig. 1: model accuracy at different N:M ratios.

The paper's Fig. 1 shows that models differ widely in how well they tolerate
fine-grained N:M pruning: over-parameterised ResNet-50 barely notices 2:4,
while compact MobileNetV2 loses accuracy quickly, and 1:4 opens a visible
accuracy gap everywhere.  The experiment prunes each model with N:M-only
masks (no block component), fine-tunes briefly and reports accuracy against
the dense fine-tuned upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..pruning.baselines import dense_finetune, nm_prune
from .common import ExperimentScale, TINY_SCALE, clone_model, format_table, make_personalization_setup

__all__ = ["Fig1Config", "run_fig1", "DEFAULT_MODELS"]

DEFAULT_MODELS: Tuple[str, ...] = ("resnet_tiny", "vgg_tiny", "mobilenet_tiny")


@dataclass
class Fig1Config:
    """Sweep configuration for the Fig. 1 reproduction."""

    models: Sequence[str] = DEFAULT_MODELS
    nm_ratios: Sequence[Tuple[int, int]] = ((3, 4), (2, 4), (1, 4))
    num_user_classes: int = 4
    scale: ExperimentScale = TINY_SCALE
    seed: int = 0
    finetune_epochs: int = 1


def run_fig1(config: Fig1Config | None = None) -> List[Dict]:
    """Run the N:M-ratio sweep; returns one row per (model, pattern) point.

    Row keys: ``model``, ``pattern``, ``sparsity``, ``accuracy``,
    ``dense_accuracy``, ``accuracy_drop``.
    """
    config = config or Fig1Config()
    rows: List[Dict] = []

    for model_name in config.models:
        scale = ExperimentScale(
            name=f"{config.scale.name}-{model_name}",
            dataset_preset=config.scale.dataset_preset,
            model_name=model_name,
            pretrain_epochs=config.scale.pretrain_epochs,
            finetune_epochs=config.scale.finetune_epochs,
            prune_iterations=config.scale.prune_iterations,
            batch_size=config.scale.batch_size,
        )
        setup = make_personalization_setup(scale, config.num_user_classes, seed=config.seed)

        dense_model = clone_model(setup.model)
        dense_result = dense_finetune(
            dense_model,
            setup.train_loader,
            setup.val_loader,
            epochs=config.finetune_epochs,
        )
        dense_accuracy = dense_result.final_accuracy

        rows.append(
            {
                "model": model_name,
                "pattern": "dense",
                "sparsity": 0.0,
                "accuracy": dense_accuracy,
                "dense_accuracy": dense_accuracy,
                "accuracy_drop": 0.0,
            }
        )

        for n, m in config.nm_ratios:
            pruned_model = clone_model(setup.model)
            result = nm_prune(
                pruned_model,
                n,
                m,
                train_loader=setup.train_loader,
                val_loader=setup.val_loader,
                finetune_epochs=config.finetune_epochs,
            )
            rows.append(
                {
                    "model": model_name,
                    "pattern": f"{n}:{m}",
                    "sparsity": result.achieved_sparsity,
                    "accuracy": result.final_accuracy,
                    "dense_accuracy": dense_accuracy,
                    "accuracy_drop": (dense_accuracy or 0.0) - (result.final_accuracy or 0.0),
                }
            )
    return rows


def main() -> None:  # pragma: no cover - CLI helper
    rows = run_fig1()
    print(format_table(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
