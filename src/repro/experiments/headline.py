"""Experiment E8 — headline claims of the paper.

Aggregates the sweeps behind the abstract-level claims:

* CRISP maintains high accuracy (relative to the dense fine-tuned upper
  bound) at >90 % sparsity, where block pruning collapses (from E3);
* CRISP-STC delivers up to ~14x latency and large energy reductions compared
  to existing sparse accelerators and the dense baseline (from E6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .fig3_crisp_vs_block import Fig3Config, run_fig3
from .fig8_hardware import Fig8Config, aggregate_fig8, run_fig8

__all__ = ["HeadlineConfig", "run_headline"]


@dataclass
class HeadlineConfig:
    """Configuration bundling the accuracy and hardware headline sweeps."""

    fig3: Fig3Config = None
    fig8: Fig8Config = None

    def __post_init__(self) -> None:
        if self.fig3 is None:
            self.fig3 = Fig3Config(sparsity_levels=(0.875,), block_sizes=(8,))
        if self.fig8 is None:
            self.fig8 = Fig8Config(global_sparsities=(0.90,))


def run_headline(config: HeadlineConfig | None = None) -> Dict[str, float]:
    """Compute the headline summary numbers.

    Returns a dict with:

    * ``crisp_accuracy`` / ``block_accuracy`` / ``dense_accuracy`` at the
      high-sparsity point and ``crisp_sparsity``,
    * ``max_speedup`` and ``max_energy_efficiency`` of CRISP-STC over the
      dense accelerator, plus the same for NVIDIA-STC and DSTC.
    """
    config = config or HeadlineConfig()

    accuracy_rows = run_fig3(config.fig3)
    crisp_rows = [r for r in accuracy_rows if r["method"] == "crisp"]
    block_rows = [r for r in accuracy_rows if r["method"] == "block"]

    hardware_rows = aggregate_fig8(run_fig8(config.fig8))
    crisp_hw = [r for r in hardware_rows if r["accelerator"].startswith("crisp")]
    nvidia_hw = [r for r in hardware_rows if r["accelerator"] == "nvidia-stc"]
    dstc_hw = [r for r in hardware_rows if r["accelerator"] == "dstc"]

    summary: Dict[str, float] = {
        "crisp_accuracy": max(r["accuracy"] for r in crisp_rows),
        "block_accuracy": max(r["accuracy"] for r in block_rows),
        "dense_accuracy": crisp_rows[0]["dense_accuracy"],
        "crisp_sparsity": max(r["achieved_sparsity"] for r in crisp_rows),
        "max_speedup": max(r["speedup_vs_dense"] for r in crisp_hw),
        "max_energy_efficiency": max(r["energy_eff_vs_dense"] for r in crisp_hw),
        "nvidia_max_speedup": max(r["speedup_vs_dense"] for r in nvidia_hw),
        "dstc_max_speedup": max(r["speedup_vs_dense"] for r in dstc_hw),
    }
    return summary


def main() -> None:  # pragma: no cover - CLI helper
    for key, value in run_headline().items():
        print(f"{key:>24}: {value:.3f}")


if __name__ == "__main__":  # pragma: no cover
    main()
