"""Inference engine: a pruned model + a compute backend + compressed weights.

:class:`Engine` is the one API experiments and the hardware workload model
consume for inference.  It encodes every prunable layer's (masked) weight
into a chosen storage format (dense / CSR / Blocked-Ellpack / CRISP),
re-routes those layers' forward passes through the backend's sparse matmul
family, and exposes ``predict`` plus batched multi-input dispatch.

Typical use::

    engine = Engine(pruned_model, backend="fast", weight_format="crisp",
                    n=2, m=4, block_size=16)
    logits = engine.predict(batch)            # (N, num_classes)
    classes = engine.predict_classes(batch)
    all_logits = engine.predict_many([b0, b1, b2])   # one fused dispatch

The engine only touches inference: attaching it swaps the ``forward`` of
Conv2d/Linear layers for compressed-format equivalents and leaves training
untouched (``detach`` restores the originals; the engine is also a context
manager that detaches on exit).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..nn import functional as F
from ..nn.layers import Conv2d, Linear
from ..nn.models.base import prunable_layers
from ..nn.module import Module
from ..sparsity.formats import (
    BlockedEllpackFormat,
    CRISPFormat,
    CSRFormat,
    FormatSummary,
)
from .base import Backend, resolve_backend

__all__ = ["Engine", "WEIGHT_FORMATS"]

#: Weight-format names accepted by :class:`Engine`.
WEIGHT_FORMATS = ("dense", "csr", "blocked-ellpack", "crisp")


class Engine:
    """Wrap a (pruned) module with a backend and compressed weight formats."""

    def __init__(
        self,
        module: Module,
        backend: Union[str, Backend] = "fast",
        weight_format: str = "crisp",
        n: int = 2,
        m: int = 4,
        block_size: int = 16,
        attach: bool = True,
        formats: Optional[Dict[str, object]] = None,
    ) -> None:
        if weight_format not in WEIGHT_FORMATS:
            raise ValueError(
                f"Unknown weight_format {weight_format!r}; available: {WEIGHT_FORMATS}"
            )
        self.module = module
        self.backend = resolve_backend(backend)
        self.weight_format = weight_format
        self.n = n
        self.m = m
        self.block_size = block_size
        self._formats: "OrderedDict[str, object]" = OrderedDict()
        self._original_forward: Dict[str, object] = {}
        if formats is None:
            self.refresh_formats()
        else:
            self.install_formats(formats)
        if attach:
            self.attach()

    @classmethod
    def from_spec(
        cls,
        module: Module,
        spec,
        attach: bool = True,
        formats: Optional[Dict[str, object]] = None,
    ) -> "Engine":
        """Build an engine from an :class:`~repro.serve.types.EngineSpec`.

        Accepts any object with ``backend`` / ``weight_format`` / ``n`` /
        ``m`` / ``block_size`` attributes, so the serving layer's specs (and
        their deserialized copies) materialize engines without this module
        importing :mod:`repro.serve`.
        """
        return cls(
            module,
            backend=spec.backend,
            weight_format=spec.weight_format,
            n=spec.n,
            m=spec.m,
            block_size=spec.block_size,
            attach=attach,
            formats=formats,
        )

    @property
    def spec(self):
        """This engine's configuration as a serializable ``EngineSpec``."""
        from ..serve.types import EngineSpec

        return EngineSpec(
            backend=self.backend.name,
            weight_format=self.weight_format,
            n=self.n,
            m=self.m,
            block_size=self.block_size,
        )

    # -- weight compression ---------------------------------------------------
    def _encode(self, weight2d: np.ndarray):
        if self.weight_format == "dense":
            return np.asarray(weight2d, dtype=np.float64)
        if self.weight_format == "csr":
            return CSRFormat.from_dense(weight2d)
        if self.weight_format == "blocked-ellpack":
            return BlockedEllpackFormat.from_dense(weight2d, self.block_size)
        return CRISPFormat.from_dense(weight2d, self.n, self.m, self.block_size)

    def refresh_formats(self) -> None:
        """(Re-)encode every prunable layer's effective weight.

        Call after pruning masks or weights change while an engine is alive.
        The *effective* (mask-applied) weight is encoded, so STE-style dense
        shadow weights never leak into inference.
        """
        self._formats.clear()
        for name, layer in prunable_layers(self.module).items():
            w_eff = layer.weight.effective()
            if isinstance(layer, Conv2d):
                weight2d = w_eff.reshape(layer.out_channels, -1).T
            else:  # Linear
                weight2d = w_eff.T
            self._formats[name] = self._encode(weight2d)

    def install_formats(self, formats: Dict[str, object]) -> None:
        """Install precomputed encodings instead of re-encoding the module.

        The seam for shared-memory serving: a worker process maps another
        process's encoded arrays and hands them in here, skipping the
        expensive per-layer encode entirely.  ``formats`` must cover exactly
        this module's prunable layers; entries are kept in layer order.
        """
        expected = list(prunable_layers(self.module))
        if sorted(formats) != sorted(expected):
            raise ValueError(
                f"formats must cover exactly the prunable layers {sorted(expected)}; "
                f"got {sorted(formats)}"
            )
        self._formats.clear()
        for name in expected:
            self._formats[name] = formats[name]

    @property
    def is_lossless(self) -> bool:
        """Whether every encoded weight round-trips exactly.

        Always true for dense/CSR/Blocked-Ellpack; for CRISP it requires the
        weights to satisfy the hybrid N:M + block pattern (i.e. the model was
        pruned with a compatible configuration).
        """
        return all(
            getattr(fmt, "is_lossless", True) for fmt in self._formats.values()
        )

    # -- layer re-routing -----------------------------------------------------
    # Forward closures look the format up by *name* on every call (instead of
    # capturing the format object at attach time), so refresh_formats() on a
    # live engine takes effect immediately — re-pruned tenants are never
    # served a stale encoding.
    def _conv_forward(self, layer: Conv2d, name: str):
        kernel = layer.kernel_size

        def forward(x: np.ndarray) -> np.ndarray:
            n = x.shape[0]
            out_h = F.conv_output_size(x.shape[2], kernel, layer.stride, layer.padding)
            out_w = F.conv_output_size(x.shape[3], kernel, layer.stride, layer.padding)
            cols = self.backend.im2col(
                x, kernel, kernel, layer.stride, layer.padding, training=False
            )
            out = self.backend.sparse_matmul(self._formats[name], cols.T).T  # (N*oh*ow, S)
            if layer.bias is not None:
                out = out + layer.bias.data
            layer._cache = {"x_shape": x.shape}
            return out.reshape(n, out_h, out_w, layer.out_channels).transpose(0, 3, 1, 2)

        return forward

    def _linear_forward(self, layer: Linear, name: str):
        def forward(x: np.ndarray) -> np.ndarray:
            out = self.backend.sparse_matmul(self._formats[name], x.T).T  # (batch, out_features)
            if layer.bias is not None:
                out = out + layer.bias.data
            layer._cache = {"x_shape": x.shape}
            return out

        return forward

    def attach(self) -> "Engine":
        """Swap prunable layers' forward passes for compressed-format compute."""
        if self._original_forward:
            return self
        for name, layer in prunable_layers(self.module).items():
            self._original_forward[name] = layer.__dict__.get("forward")
            if isinstance(layer, Conv2d):
                layer.forward = self._conv_forward(layer, name)
            else:
                layer.forward = self._linear_forward(layer, name)
        return self

    def detach(self) -> "Engine":
        """Restore the original layer forward passes."""
        for name, layer in prunable_layers(self.module).items():
            if name not in self._original_forward:
                continue
            original = self._original_forward[name]
            if original is None:
                layer.__dict__.pop("forward", None)
            else:  # pragma: no cover - nested engines
                layer.forward = original
        self._original_forward.clear()
        return self

    @property
    def attached(self) -> bool:
        return bool(self._original_forward)

    def __enter__(self) -> "Engine":
        return self.attach()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    # -- inference ------------------------------------------------------------
    def predict(self, batch: np.ndarray) -> np.ndarray:
        """Run one inference batch ``(N, C, H, W)`` and return the logits."""
        batch = np.asarray(batch, dtype=np.float64)
        was_training = self.module.training
        self.module.eval()
        try:
            return self.module(batch)
        finally:
            self.module.train(was_training)

    def predict_classes(self, batch: np.ndarray) -> np.ndarray:
        """Argmax class predictions for one batch."""
        return self.predict(batch).argmax(axis=1)

    def predict_many(self, batches: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Batched multi-input dispatch: fuse several inputs into one forward.

        Concatenating the requests amortises per-call overhead (im2col
        workspace setup, Python dispatch) across all of them — the serving
        pattern for aggregated inference traffic.  Returns one logits array
        per input, in order.
        """
        batches = [np.asarray(b, dtype=np.float64) for b in batches]
        if not batches:
            return []
        sizes = [b.shape[0] for b in batches]
        fused = batches[0] if len(batches) == 1 else np.concatenate(batches, axis=0)
        logits = self.predict(fused)
        splits = np.cumsum(sizes)[:-1]
        return np.split(logits, splits, axis=0)

    # -- reporting ------------------------------------------------------------
    def format_summaries(self) -> Dict[str, FormatSummary]:
        """Per-layer storage summaries of the encoded weights (dense excluded)."""
        return {
            name: fmt.summary()
            for name, fmt in self._formats.items()
            if hasattr(fmt, "summary")
        }

    def total_weight_bits(self) -> int:
        """Total bits (data + metadata) of all compressed prunable weights."""
        return sum(s.total_bits for s in self.format_summaries().values())

    def stats(self) -> Dict[str, object]:
        """Engine-level report: backend, format, storage and workspace counters."""
        return {
            "backend": self.backend.name,
            "weight_format": self.weight_format,
            "layers": len(self._formats),
            "lossless": self.is_lossless,
            "total_weight_bits": self.total_weight_bits(),
            "workspace": self.backend.workspace_stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Engine(backend={self.backend.name!r}, format={self.weight_format!r}, "
            f"layers={len(self._formats)}, attached={self.attached})"
        )
