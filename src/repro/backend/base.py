"""The compute-backend interface and registry.

A :class:`Backend` bundles every numerical kernel the reproduction executes:
the dense layer primitives (conv2d, linear, pooling, batch normalisation)
and the sparse matmul family keyed by storage format.  Two implementations
ship with the repo:

* ``reference`` — the original kernels, kept bit-exact so they can serve as
  the correctness oracle for everything else;
* ``fast`` — vectorized sparse kernels plus an im2col workspace cache for
  inference (see :mod:`repro.backend.fast`).

Backends are registered by name; the *active* backend is a process-global
selection (defaulting to ``reference``) that the layer classes and the
sparse-op dispatchers consult on every call.  Use :func:`set_backend` to
switch globally or :func:`use_backend` for a scoped override.
"""

from __future__ import annotations

import contextlib
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Tuple, Type, Union

import numpy as np

__all__ = [
    "Backend",
    "register_backend",
    "available_backends",
    "get_backend",
    "active_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
    "DEFAULT_BACKEND",
]

#: Name of the backend used when nothing has been selected.
DEFAULT_BACKEND = "reference"


class Backend(ABC):
    """Abstract compute backend: one method per numerical kernel.

    The dense-layer methods mirror the cache-returning signatures of
    :mod:`repro.nn.functional` so layers can swap backends without changing
    their own forward/backward plumbing.  The sparse matmul family computes
    ``weight.T @ activations`` from a compressed weight, exactly like the
    reference kernels in :mod:`repro.sparsity.sparse_ops`.
    """

    #: Registry name, set on subclasses.
    name: str = "abstract"

    # -- im2col ---------------------------------------------------------------
    @abstractmethod
    def im2col(
        self,
        x: np.ndarray,
        kernel_h: int,
        kernel_w: int,
        stride: int = 1,
        padding: int = 0,
        training: bool = True,
    ) -> np.ndarray:
        """Unfold ``(N, C, H, W)`` into receptive-field columns.

        ``training=False`` allows the backend to return a reused workspace
        buffer (only safe when no backward pass will consume the columns
        after a subsequent forward call).
        """

    # -- dense layer kernels --------------------------------------------------
    @abstractmethod
    def conv2d_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int = 1,
        padding: int = 0,
        training: bool = True,
    ) -> Tuple[np.ndarray, dict]:
        ...

    @abstractmethod
    def conv2d_backward(
        self, grad_out: np.ndarray, weight: np.ndarray, cache: dict
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        ...

    @abstractmethod
    def depthwise_conv2d_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int = 1,
        padding: int = 0,
        training: bool = True,
    ) -> Tuple[np.ndarray, dict]:
        ...

    @abstractmethod
    def depthwise_conv2d_backward(
        self, grad_out: np.ndarray, weight: np.ndarray, cache: dict
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        ...

    @abstractmethod
    def linear_forward(
        self, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, dict]:
        ...

    @abstractmethod
    def linear_backward(
        self, grad_out: np.ndarray, weight: np.ndarray, cache: dict
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        ...

    @abstractmethod
    def max_pool2d_forward(
        self, x: np.ndarray, kernel: int, stride: Optional[int] = None, padding: int = 0
    ) -> Tuple[np.ndarray, dict]:
        ...

    @abstractmethod
    def max_pool2d_backward(self, grad_out: np.ndarray, cache: dict) -> np.ndarray:
        ...

    @abstractmethod
    def avg_pool2d_forward(
        self, x: np.ndarray, kernel: int, stride: Optional[int] = None, padding: int = 0
    ) -> Tuple[np.ndarray, dict]:
        ...

    @abstractmethod
    def avg_pool2d_backward(self, grad_out: np.ndarray, cache: dict) -> np.ndarray:
        ...

    @abstractmethod
    def global_avg_pool_forward(self, x: np.ndarray) -> Tuple[np.ndarray, dict]:
        ...

    @abstractmethod
    def global_avg_pool_backward(self, grad_out: np.ndarray, cache: dict) -> np.ndarray:
        ...

    @abstractmethod
    def batchnorm_forward(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        running_mean: np.ndarray,
        running_var: np.ndarray,
        training: bool,
        momentum: float = 0.1,
        eps: float = 1e-5,
    ) -> Tuple[np.ndarray, dict]:
        ...

    @abstractmethod
    def batchnorm_backward(
        self, grad_out: np.ndarray, cache: dict
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        ...

    # -- sparse matmul family -------------------------------------------------
    @abstractmethod
    def dense_matmul(self, weight: np.ndarray, activations: np.ndarray) -> np.ndarray:
        ...

    @abstractmethod
    def masked_matmul(
        self, weight: np.ndarray, mask: np.ndarray, activations: np.ndarray
    ) -> np.ndarray:
        ...

    @abstractmethod
    def csr_matmul(self, fmt, activations: np.ndarray) -> np.ndarray:
        ...

    @abstractmethod
    def blocked_ellpack_matmul(self, fmt, activations: np.ndarray) -> np.ndarray:
        ...

    @abstractmethod
    def crisp_matmul(self, fmt, activations: np.ndarray) -> np.ndarray:
        ...

    def sparse_matmul(self, fmt, activations: np.ndarray) -> np.ndarray:
        """Dispatch a compressed-weight GEMM on the format type.

        Accepts any of the :mod:`repro.sparsity.formats` encodings or a raw
        dense weight array, and returns ``weight.T @ activations``.
        """
        from ..sparsity.formats import (
            BlockedEllpackFormat,
            CRISPFormat,
            CSRFormat,
            DenseFormat,
        )

        if isinstance(fmt, CSRFormat):
            return self.csr_matmul(fmt, activations)
        if isinstance(fmt, BlockedEllpackFormat):
            return self.blocked_ellpack_matmul(fmt, activations)
        if isinstance(fmt, CRISPFormat):
            return self.crisp_matmul(fmt, activations)
        if isinstance(fmt, DenseFormat):
            return self.dense_matmul(fmt.matrix, activations)
        if isinstance(fmt, np.ndarray):
            return self.dense_matmul(fmt, activations)
        raise TypeError(f"Unsupported weight format for sparse_matmul: {type(fmt)!r}")

    # -- workspace management -------------------------------------------------
    def clear_workspace(self) -> None:
        """Drop any cached workspace buffers (no-op for stateless backends)."""

    def workspace_stats(self) -> Dict[str, int]:
        """Hit/miss counters of the workspace cache (zeros when stateless)."""
        return {"hits": 0, "misses": 0, "buffers": 0}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} name={self.name!r}>"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BACKEND_CLASSES: Dict[str, Type[Backend]] = {}
_BACKEND_INSTANCES: Dict[str, Backend] = {}
_ACTIVE: Optional[Backend] = None


def register_backend(cls: Type[Backend]) -> Type[Backend]:
    """Class decorator: register a :class:`Backend` subclass under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise ValueError(f"Backend class {cls.__name__} must define a unique 'name'")
    _BACKEND_CLASSES[name] = cls
    _BACKEND_INSTANCES.pop(name, None)
    return cls


def available_backends() -> List[str]:
    """Names accepted by :func:`get_backend` / :func:`set_backend`."""
    return sorted(_BACKEND_CLASSES)


def get_backend(name: str) -> Backend:
    """Return the singleton instance of the backend registered as ``name``."""
    if name not in _BACKEND_CLASSES:
        raise KeyError(
            f"Unknown backend {name!r}; available: {available_backends()}"
        )
    if name not in _BACKEND_INSTANCES:
        _BACKEND_INSTANCES[name] = _BACKEND_CLASSES[name]()
    return _BACKEND_INSTANCES[name]


def resolve_backend(backend: Union[str, Backend, None]) -> Backend:
    """Normalise a backend argument: name, instance or ``None`` (= active)."""
    if backend is None:
        return active_backend()
    if isinstance(backend, Backend):
        return backend
    return get_backend(backend)


def active_backend() -> Backend:
    """The process-global backend every kernel call routes through."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = get_backend(DEFAULT_BACKEND)
    return _ACTIVE


def set_backend(backend: Union[str, Backend]) -> Backend:
    """Select the active backend (by name or instance) and return it."""
    global _ACTIVE
    _ACTIVE = resolve_backend(backend)
    return _ACTIVE


@contextlib.contextmanager
def use_backend(backend: Union[str, Backend]) -> Iterator[Backend]:
    """Context manager: temporarily switch the active backend."""
    global _ACTIVE
    previous = active_backend()
    _ACTIVE = resolve_backend(backend)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
