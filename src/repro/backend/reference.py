"""The ``reference`` backend: the repo's original kernels, unchanged.

Every method delegates to the pure functions in :mod:`repro.nn.functional`
and the loop-based sparse kernels in :mod:`repro.sparsity.sparse_ops`.
This backend is kept bit-exact with the pre-backend code so parity tests can
use it as the correctness oracle for any other backend.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..sparsity import sparse_ops
from .base import Backend, register_backend

__all__ = ["ReferenceBackend"]


@register_backend
class ReferenceBackend(Backend):
    """Bit-exact oracle backend delegating to the original implementations."""

    name = "reference"

    # -- im2col ---------------------------------------------------------------
    def im2col(
        self,
        x: np.ndarray,
        kernel_h: int,
        kernel_w: int,
        stride: int = 1,
        padding: int = 0,
        training: bool = True,
    ) -> np.ndarray:
        return F.im2col(x, kernel_h, kernel_w, stride, padding)

    # -- dense layer kernels --------------------------------------------------
    def conv2d_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int = 1,
        padding: int = 0,
        training: bool = True,
    ) -> Tuple[np.ndarray, dict]:
        return F.conv2d_forward(x, weight, bias, stride, padding)

    def conv2d_backward(self, grad_out, weight, cache):
        return F.conv2d_backward(grad_out, weight, cache)

    def depthwise_conv2d_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int = 1,
        padding: int = 0,
        training: bool = True,
    ) -> Tuple[np.ndarray, dict]:
        return F.depthwise_conv2d_forward(x, weight, bias, stride, padding)

    def depthwise_conv2d_backward(self, grad_out, weight, cache):
        return F.depthwise_conv2d_backward(grad_out, weight, cache)

    def linear_forward(self, x, weight, bias):
        return F.linear_forward(x, weight, bias)

    def linear_backward(self, grad_out, weight, cache):
        return F.linear_backward(grad_out, weight, cache)

    def max_pool2d_forward(self, x, kernel, stride=None, padding=0):
        return F.max_pool2d_forward(x, kernel, stride, padding)

    def max_pool2d_backward(self, grad_out, cache):
        return F.max_pool2d_backward(grad_out, cache)

    def avg_pool2d_forward(self, x, kernel, stride=None, padding=0):
        return F.avg_pool2d_forward(x, kernel, stride, padding)

    def avg_pool2d_backward(self, grad_out, cache):
        return F.avg_pool2d_backward(grad_out, cache)

    def global_avg_pool_forward(self, x):
        return F.global_avg_pool_forward(x)

    def global_avg_pool_backward(self, grad_out, cache):
        return F.global_avg_pool_backward(grad_out, cache)

    def batchnorm_forward(
        self,
        x,
        gamma,
        beta,
        running_mean,
        running_var,
        training,
        momentum=0.1,
        eps=1e-5,
    ):
        return F.batchnorm_forward(
            x, gamma, beta, running_mean, running_var, training, momentum, eps
        )

    def batchnorm_backward(self, grad_out, cache):
        return F.batchnorm_backward(grad_out, cache)

    # -- sparse matmul family -------------------------------------------------
    def dense_matmul(self, weight, activations):
        return sparse_ops.dense_matmul(weight, activations)

    def masked_matmul(self, weight, mask, activations):
        return sparse_ops.masked_matmul(weight, mask, activations)

    def csr_matmul(self, fmt, activations):
        return sparse_ops.csr_matmul_reference(fmt, activations)

    def blocked_ellpack_matmul(self, fmt, activations):
        return sparse_ops.blocked_ellpack_matmul_reference(fmt, activations)

    def crisp_matmul(self, fmt, activations):
        return sparse_ops.crisp_matmul_reference(fmt, activations)
