"""The ``fast`` backend: vectorized sparse kernels + im2col workspace reuse.

Three things distinguish this backend from ``reference``:

* the CSR / Blocked-Ellpack / CRISP matmuls are fully vectorized — a single
  gather + ``einsum``/``bincount`` pass replaces the per-row (and per-nnz)
  Python loops of :mod:`repro.sparsity.sparse_ops`;
* inference-time ``im2col`` writes into a shape-keyed workspace buffer that
  is reused across calls, so steady-state convolution stops paying a fresh
  column-matrix allocation per layer per batch;
* dense layer kernels are inherited from the reference backend unchanged, so
  training numerics stay bit-identical.

All kernels produce outputs within floating-point round-off of the reference
backend (the parity suite pins this to 1e-8); they are *not* guaranteed to
be bit-exact because vectorized reductions may re-associate sums.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..sparsity.formats import BlockedEllpackFormat, CRISPFormat, CSRFormat
from ..sparsity.sparse_ops import check_activation_rows
from .base import register_backend
from .reference import ReferenceBackend


__all__ = [
    "FastBackend",
    "WorkspaceCache",
    "csr_matmul_fast",
    "blocked_ellpack_matmul_fast",
    "crisp_matmul_fast",
]


def _pad_rows(activations: np.ndarray, block: int) -> np.ndarray:
    """Zero-pad activation rows up to a block multiple (no copy when aligned)."""
    short = (-activations.shape[0]) % block
    if short == 0:
        return activations
    return np.pad(activations, ((0, short), (0, 0)))


class WorkspaceCache:
    """Shape-keyed cache of reusable scratch buffers.

    ``get`` returns a buffer for ``key`` if one with a matching shape/dtype
    is already cached, otherwise allocates (evicting FIFO beyond
    ``max_buffers``).  Buffer contents are *not* preserved between calls —
    callers must overwrite them fully.
    """

    def __init__(self, max_buffers: int = 64) -> None:
        self.max_buffers = max_buffers
        self._buffers: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        # Callers key buffers per thread, but the table itself is shared —
        # concurrent serving shards insert/evict under one lock.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple, shape: Tuple[int, ...], dtype) -> np.ndarray:
        with self._lock:
            buf = self._buffers.get(key)
            if buf is not None and buf.shape == shape and buf.dtype == np.dtype(dtype):
                self.hits += 1
                self._buffers.move_to_end(key)
                return buf
            self.misses += 1
            while len(self._buffers) >= self.max_buffers:
                self._buffers.popitem(last=False)
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
            return buf

    def clear(self) -> None:
        with self._lock:
            self._buffers.clear()

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "buffers": len(self._buffers)}


# ---------------------------------------------------------------------------
# Vectorized sparse kernels
# ---------------------------------------------------------------------------

def _format_cache(fmt) -> dict:
    """Per-format memo of derived index arrays.

    Format objects are immutable encodings, so gather/scatter indices that
    depend only on the stored structure are computed once and reused across
    matmul calls.  (Mutating a format's arrays in place invalidates the memo;
    re-encode instead.)
    """
    cache = getattr(fmt, "_fast_cache", None)
    if cache is None:
        cache = {}
        fmt._fast_cache = cache
    return cache


def _tile_scatter_index(fmt, block: int, batch: int) -> np.ndarray:
    """Flat ``bincount`` indices scattering per-tile GEMM results by block column.

    Element ``(tile, c, b)`` of a ``(tiles, block, batch)`` contribution array
    lands at flat position ``block_cols[tile] * block * batch + c * batch + b``
    of the ``(out_block_cols * block, batch)`` output.
    """
    cache = _format_cache(fmt)
    key = ("scatter", batch)
    idx = cache.get(key)
    if idx is None:
        base = fmt.block_cols.reshape(-1) * (block * batch)
        idx = (base[:, None] + np.arange(block * batch)[None, :]).ravel()
        cache[key] = idx
    return idx


def csr_matmul_fast(fmt: CSRFormat, activations: np.ndarray) -> np.ndarray:
    """Vectorized CSR GEMM: one gather-scatter decode, then a BLAS GEMM.

    :meth:`CSRFormat.to_dense` (vectorized) scatters the stored values into a
    dense operand in a single fancy-indexing pass; the matmul itself then
    runs as one BLAS call instead of O(nnz) Python-level accumulations.  The
    decoded (transposed) operand is memoized on the format, so a served
    weight pays the decode once, not per request.
    """
    check_activation_rows(fmt, activations)
    activations = np.asarray(activations, dtype=np.float64)
    cache = _format_cache(fmt)
    dense_t = cache.get("dense_t")
    if dense_t is None:
        dense_t = np.ascontiguousarray(fmt.to_dense().T)
        cache["dense_t"] = dense_t
    return dense_t @ activations


def blocked_ellpack_matmul_fast(
    fmt: BlockedEllpackFormat, activations: np.ndarray
) -> np.ndarray:
    """Vectorized Blocked-Ellpack GEMM: block-row-batched matmul + bincount scatter.

    The retained tiles of each block-row are viewed as one
    ``(slots * B, B)`` operand (cached on the format), so the whole compute
    is a single batched matmul over block-rows; results are scattered to
    their output block columns with one ``bincount``.  Padded (unused) slots
    hold all-zero tiles, so their contributions vanish without a validity
    mask.
    """
    rows, cols = fmt.shape
    check_activation_rows(fmt, activations)
    activations = np.asarray(activations, dtype=np.float64)
    block = fmt.block_size
    batch = activations.shape[1]
    block_rows, slots = fmt.block_cols.shape
    out_block_cols = -(-cols // block)

    cache = _format_cache(fmt)
    row_tiles = cache.get("row_tiles")
    if row_tiles is None:
        # (block_rows, slots * B, B): tile c-axis first so each block-row's
        # retained tiles stack into one GEMM operand.
        row_tiles = np.ascontiguousarray(
            fmt.blocks.transpose(0, 1, 3, 2).reshape(block_rows, slots * block, block)
        )
        cache["row_tiles"] = row_tiles

    act_tiles = _pad_rows(activations, block).reshape(block_rows, block, batch)

    # contrib[r, s*B + c, b] = sum_i blocks[r, s, i, c] * act_tiles[r, i, b]
    contrib = np.matmul(row_tiles, act_tiles)

    flat_idx = _tile_scatter_index(fmt, block, batch)
    out = np.bincount(
        flat_idx, weights=contrib.ravel(), minlength=out_block_cols * block * batch
    )
    return out.reshape(out_block_cols * block, batch)[:cols]


def crisp_matmul_fast(fmt: CRISPFormat, activations: np.ndarray) -> np.ndarray:
    """Vectorized CRISP GEMM: offset gather (the N:M MUX) + einsum reduction.

    The stored intra-group offsets index directly into the activation groups
    — one fancy-indexing gather materialises the activation operand of every
    retained weight, and an einsum folds the N and group axes.  Zero-valued
    padding entries carry offset 0, so they gather a valid activation but
    contribute nothing; the block-column scatter is the same cached-index
    ``bincount`` as the Blocked-Ellpack kernel.
    """
    rows, cols = fmt.shape
    check_activation_rows(fmt, activations)
    activations = np.asarray(activations, dtype=np.float64)
    block, m = fmt.block_size, fmt.m
    batch = activations.shape[1]
    block_rows, slots = fmt.block_cols.shape
    groups = block // m
    out_block_cols = -(-cols // block)

    act_groups = _pad_rows(activations, block).reshape(block_rows, groups, m, batch)

    br = np.arange(block_rows)[:, None, None, None, None]
    g = np.arange(groups)[None, None, :, None, None]
    # gathered[r, s, g, c, k, b] = act_groups[r, g, offsets[r, s, g, c, k], b]
    gathered = act_groups[br, g, fmt.group_offsets]

    # tile_contrib[r, s, c, b] = sum_{g, k} values[r, s, g, c, k] * gathered[...]
    tile_contrib = np.einsum("rsgck,rsgckb->rscb", fmt.group_values, gathered)

    flat_idx = _tile_scatter_index(fmt, block, batch)
    out = np.bincount(
        flat_idx,
        weights=tile_contrib.ravel(),
        minlength=out_block_cols * block * batch,
    )
    return out.reshape(out_block_cols * block, batch)[:cols]


# ---------------------------------------------------------------------------
# Backend
# ---------------------------------------------------------------------------

@register_backend
class FastBackend(ReferenceBackend):
    """Vectorized backend with inference-time workspace reuse.

    Training-path numerics are inherited from :class:`ReferenceBackend`;
    only inference ``im2col`` (workspace-cached) and the sparse matmul
    family (vectorized) are overridden.
    """

    name = "fast"

    def __init__(self, max_buffers: int = 64) -> None:
        self._workspace = WorkspaceCache(max_buffers=max_buffers)

    # -- im2col ---------------------------------------------------------------
    def im2col(
        self,
        x: np.ndarray,
        kernel_h: int,
        kernel_w: int,
        stride: int = 1,
        padding: int = 0,
        training: bool = True,
    ) -> np.ndarray:
        if training:
            # A backward pass may hold onto the columns; never hand out a
            # shared buffer that a later forward would overwrite.
            return F.im2col(x, kernel_h, kernel_w, stride, padding)
        windows, (n, c, out_h, out_w) = F.im2col_windows(
            x, kernel_h, kernel_w, stride, padding
        )
        # The workspace is keyed by thread identity as well as shape: concurrent
        # serving shards (repro.cluster) run same-shaped convolutions in
        # parallel, and a shared buffer would let one thread overwrite another's
        # columns between the copy and the GEMM that consumes them.
        key = ("im2col", threading.get_ident(), x.shape, kernel_h, kernel_w, stride, padding)
        buf = self._workspace.get(key, (n, out_h, out_w, c, kernel_h, kernel_w), x.dtype)
        np.copyto(buf, windows.transpose(0, 4, 5, 1, 2, 3))
        return buf.reshape(n * out_h * out_w, c * kernel_h * kernel_w)

    # -- conv kernels (workspace-backed at inference) -------------------------
    def conv2d_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int = 1,
        padding: int = 0,
        training: bool = True,
    ) -> Tuple[np.ndarray, dict]:
        if training:
            return F.conv2d_forward(x, weight, bias, stride, padding)

        n, c_in, h, w = x.shape
        c_out, c_in_w, kh, kw = weight.shape
        if c_in != c_in_w:
            raise ValueError(f"Channel mismatch: input has {c_in}, weight expects {c_in_w}")
        out_h = F.conv_output_size(h, kh, stride, padding)
        out_w = F.conv_output_size(w, kw, stride, padding)

        cols = self.im2col(x, kh, kw, stride, padding, training=False)
        out = cols @ weight.reshape(c_out, -1).T
        if bias is not None:
            out = out + bias
        out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
        # `cols` aliases the shared workspace buffer and may be overwritten by
        # the next same-shaped forward, so the cache keeps the input instead;
        # conv2d_backward rebuilds fresh columns on the rare eval-mode
        # backward (e.g. saliency estimation).
        cache = {
            "x": x,
            "x_shape": x.shape,
            "weight_shape": weight.shape,
            "stride": stride,
            "padding": padding,
            "has_bias": bias is not None,
        }
        return out, cache

    def conv2d_backward(self, grad_out, weight, cache):
        if "cols" not in cache:
            _, _, kh, kw = weight.shape
            cache = dict(cache)
            cache["cols"] = F.im2col(cache["x"], kh, kw, cache["stride"], cache["padding"])
        return F.conv2d_backward(grad_out, weight, cache)

    def depthwise_conv2d_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int = 1,
        padding: int = 0,
        training: bool = True,
    ) -> Tuple[np.ndarray, dict]:
        if training:
            return F.depthwise_conv2d_forward(x, weight, bias, stride, padding)

        n, c, h, w = x.shape
        c_w, one, kh, kw = weight.shape
        if c_w != c or one != 1:
            raise ValueError(
                f"Depthwise weight shape {weight.shape} incompatible with input channels {c}"
            )
        out_h = F.conv_output_size(h, kh, stride, padding)
        out_w = F.conv_output_size(w, kw, stride, padding)

        cols = self.im2col(x, kh, kw, stride, padding, training=False)
        cols_g = cols.reshape(-1, c, kh * kw)
        out = np.einsum("bck,ck->bc", cols_g, weight.reshape(c, kh * kw))
        if bias is not None:
            out = out + bias
        out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        # Same workspace-aliasing rule as conv2d_forward: never cache the
        # shared buffer for a potential backward.
        cache = {
            "x": x,
            "x_shape": x.shape,
            "stride": stride,
            "padding": padding,
            "has_bias": bias is not None,
        }
        return out, cache

    def depthwise_conv2d_backward(self, grad_out, weight, cache):
        if "cols_g" not in cache:
            c, _, kh, kw = weight.shape
            cache = dict(cache)
            cols = F.im2col(cache["x"], kh, kw, cache["stride"], cache["padding"])
            cache["cols_g"] = cols.reshape(-1, c, kh * kw)
        return F.depthwise_conv2d_backward(grad_out, weight, cache)

    # -- sparse matmul family -------------------------------------------------
    def csr_matmul(self, fmt, activations):
        return csr_matmul_fast(fmt, activations)

    def blocked_ellpack_matmul(self, fmt, activations):
        return blocked_ellpack_matmul_fast(fmt, activations)

    def crisp_matmul(self, fmt, activations):
        return crisp_matmul_fast(fmt, activations)

    # -- workspace management -------------------------------------------------
    def clear_workspace(self) -> None:
        self._workspace.clear()

    def workspace_stats(self) -> Dict[str, int]:
        return self._workspace.stats()
