"""Pluggable compute backends for the CRISP reproduction.

* :mod:`repro.backend.base` — the :class:`Backend` interface and registry.
* :mod:`repro.backend.reference` — the original kernels (bit-exact oracle).
* :mod:`repro.backend.fast` — vectorized sparse kernels + workspace reuse.
* :mod:`repro.backend.engine` — the inference :class:`Engine` tying a pruned
  model to a backend and compressed weight formats.

Select a backend globally with :func:`set_backend` (the experiments CLI
exposes this as ``--backend {reference,fast}``) or locally with
:func:`use_backend`.
"""

from .base import (
    DEFAULT_BACKEND,
    Backend,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from .reference import ReferenceBackend
from .fast import (
    FastBackend,
    WorkspaceCache,
    blocked_ellpack_matmul_fast,
    crisp_matmul_fast,
    csr_matmul_fast,
)
from .engine import WEIGHT_FORMATS, Engine

__all__ = [
    "DEFAULT_BACKEND",
    "Backend",
    "active_backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
    "ReferenceBackend",
    "FastBackend",
    "WorkspaceCache",
    "csr_matmul_fast",
    "blocked_ellpack_matmul_fast",
    "crisp_matmul_fast",
    "Engine",
    "WEIGHT_FORMATS",
]
