"""The CRISP pruning framework (Algorithm 1 of the paper).

CRISP personalises a pre-trained model to a user's preferred classes through
an iterative three-step loop:

1. **Class-aware fine-tuning / saliency estimation** — gradients accumulated
   over user-class samples give the class-aware saliency score
   ``T_w = |dL/dW * W|`` for every weight.
2. **Fine-grained N:M pruning** — within every group of M consecutive
   reduction-dimension elements, the N most salient weights are kept; a
   straight-through estimator keeps dense weights evolving underneath the
   mask so early pruning decisions can be revisited.
3. **Coarse-grained uniform block pruning** — block saliencies are sorted
   within each block-row, the sorted rank positions are scored by aggregating
   over rows, rank positions are ranked *globally across the network* and the
   least important ones are pruned, which removes the same number of blocks
   from every row of a layer (perfect load balance) while letting different
   layers reach very different sparsities.

The loop ramps the global sparsity target ``kappa_p`` gradually and fine-tunes
for ``delta`` epochs after every pruning step to recover accuracy and avoid
layer collapse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.models.base import prunable_layers
from ..nn.module import Module
from ..nn.trainer import TrainConfig, Trainer, evaluate
from ..sparsity.block import BlockGrid, block_scores
from ..sparsity.hybrid import HybridSparsityConfig
from ..sparsity.masks import combine_masks
from ..sparsity.nm import nm_mask
from .metrics import layer_sparsities, model_sparsity
from .saliency import class_aware_saliency
from .schedule import SparsitySchedule, cubic_schedule, linear_schedule, one_shot_schedule
from .ste import STEConfig, ste_finetune

__all__ = ["CRISPConfig", "PruningIterationRecord", "PruningResult", "CRISPPruner", "crisp_prune"]


@dataclass
class CRISPConfig:
    """Configuration of the CRISP pruning loop.

    Attributes mirror the inputs of Algorithm 1: the N:M ratio, the block
    size B, the final global sparsity ``kappa``, the number of pruning
    iterations ``n`` and the per-iteration fine-tuning budget ``delta``.
    """

    n: int = 2
    m: int = 4
    block_size: int = 16
    target_sparsity: float = 0.9
    iterations: int = 3
    finetune_epochs: int = 1
    final_finetune_epochs: Optional[int] = None
    finetune_lr: float = 0.02
    momentum: float = 0.9
    weight_decay: float = 4e-5
    saliency_batches: int = 4
    use_ste: bool = True
    schedule: str = "linear"
    min_keep_blocks_per_row: int = 1
    normalize_rank_scores: bool = True
    max_batches_per_epoch: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        HybridSparsityConfig(self.n, self.m, self.block_size)  # validates pattern
        if not 0.0 <= self.target_sparsity < 1.0:
            raise ValueError(f"target_sparsity must be in [0, 1), got {self.target_sparsity}")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.schedule not in ("linear", "cubic", "one_shot"):
            raise ValueError(f"Unknown schedule {self.schedule!r}")
        if self.min_keep_blocks_per_row < 1:
            raise ValueError("min_keep_blocks_per_row must be >= 1")

    @property
    def hybrid(self) -> HybridSparsityConfig:
        return HybridSparsityConfig(self.n, self.m, self.block_size)

    @property
    def nm_base_sparsity(self) -> float:
        """Sparsity the fine-grained pattern alone provides: ``1 - N/M``."""
        return 1.0 - self.n / self.m

    def build_schedule(self) -> SparsitySchedule:
        base = min(self.nm_base_sparsity, self.target_sparsity)
        if self.schedule == "one_shot" or self.iterations == 1:
            return one_shot_schedule(self.target_sparsity)
        if self.schedule == "cubic":
            return cubic_schedule(base, self.target_sparsity, self.iterations)
        return linear_schedule(base, self.target_sparsity, self.iterations)


@dataclass
class PruningIterationRecord:
    """Diagnostics captured after each pruning iteration."""

    iteration: int
    target_sparsity: float
    achieved_sparsity: float
    finetune_loss: float
    val_accuracy: Optional[float]
    layer_sparsity: Dict[str, float]
    keep_blocks_per_row: Dict[str, int]


@dataclass
class PruningResult:
    """Outcome of a full CRISP pruning run."""

    config: CRISPConfig
    history: List[PruningIterationRecord] = field(default_factory=list)
    final_sparsity: float = 0.0
    final_accuracy: Optional[float] = None
    baseline_accuracy: Optional[float] = None

    @property
    def iterations_run(self) -> int:
        return len(self.history)

    @property
    def accuracy_drop(self) -> Optional[float]:
        if self.final_accuracy is None or self.baseline_accuracy is None:
            return None
        return self.baseline_accuracy - self.final_accuracy


class CRISPPruner:
    """Drives the iterative CRISP pruning loop on a model.

    Example
    -------
    >>> pruner = CRISPPruner(model, CRISPConfig(n=2, m=4, block_size=16,
    ...                                         target_sparsity=0.9))
    >>> result = pruner.prune(train_loader, val_loader)
    """

    def __init__(self, model: Module, config: Optional[CRISPConfig] = None) -> None:
        self.model = model
        self.config = config or CRISPConfig()
        self._layers = prunable_layers(model)
        if not self._layers:
            raise ValueError("Model has no prunable layers")
        self._keep_blocks: Dict[str, int] = {}

    # ------------------------------------------------------------------ utils
    def _layer_mask2d(self, name: str) -> Optional[np.ndarray]:
        layer = self._layers[name]
        if layer.weight.mask is None:
            return None
        c_out = layer.reshaped_weight().shape[1]
        return layer.weight.mask.reshape(c_out, -1).T

    def _saliency(self, batches_factory) -> Dict[str, np.ndarray]:
        return class_aware_saliency(
            self.model,
            batches_factory(),
            max_batches=self.config.saliency_batches,
        )

    # --------------------------------------------------------------- N:M step
    def _apply_nm_step(self, saliency: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Fine-grained N:M pruning (Algorithm 1, line 2) driven by the saliency."""
        fine_masks: Dict[str, np.ndarray] = {}
        for name, layer in self._layers.items():
            scores = saliency.get(name)
            if scores is None:
                scores = np.abs(layer.reshaped_weight())
            fine_masks[name] = nm_mask(scores, self.config.n, self.config.m, axis=0)
        return fine_masks

    # ------------------------------------------------------------- block step
    def _rank_position_scores(
        self, saliency: Dict[str, np.ndarray], fine_masks: Dict[str, np.ndarray]
    ) -> Dict[str, Tuple[np.ndarray, BlockGrid]]:
        """Per-layer scores of the per-row-sorted block rank positions.

        For each layer the block scores are sorted in increasing order within
        every block-row (Algorithm 1, line 6); summing each sorted column over
        the rows gives one aggregate score per rank position (line 7).  Lower
        scores mean the blocks occupying that rank position across rows are
        collectively unimportant.
        """
        results: Dict[str, Tuple[np.ndarray, BlockGrid]] = {}
        for name in self._layers:
            scores = saliency.get(name)
            if scores is None:
                scores = np.abs(self._layers[name].reshaped_weight())
            masked_scores = scores * fine_masks[name]
            blocks, grid = block_scores(masked_scores, self.config.block_size)
            sorted_rows = np.sort(blocks, axis=1)  # increasing per row
            rank_scores = sorted_rows.sum(axis=0)
            if self.config.normalize_rank_scores:
                rank_scores = rank_scores / max(1, grid.block_rows)
            results[name] = (rank_scores, grid)
        return results

    def _select_keep_blocks(
        self,
        rank_scores: Dict[str, Tuple[np.ndarray, BlockGrid]],
        target_sparsity: float,
    ) -> Dict[str, int]:
        """Globally rank all (layer, rank-position) candidates and pick how many
        blocks per row each layer keeps so the model meets ``target_sparsity``.
        """
        layer_elements = {
            name: layer.reshaped_weight().size for name, layer in self._layers.items()
        }
        total_elements = sum(layer_elements.values())
        nm_density = self.config.n / self.config.m

        # Start from the N:M-only state: all blocks kept.
        keep_blocks = {name: grid.block_cols for name, (_, grid) in rank_scores.items()}
        nonzero = sum(layer_elements[name] * nm_density for name in keep_blocks)
        allowed_nonzero = (1.0 - target_sparsity) * total_elements

        # Candidate rank positions, cheapest (least salient) first.  The
        # lowest rank positions are listed first per layer so pruning always
        # removes the least important remaining position of a layer.
        candidates: List[Tuple[float, str, int]] = []
        for name, (scores, grid) in rank_scores.items():
            max_prunable = grid.block_cols - self.config.min_keep_blocks_per_row
            for rank in range(max_prunable):
                candidates.append((float(scores[rank]), name, rank))
        candidates.sort(key=lambda item: item[0])

        pruned_positions: Dict[str, int] = {name: 0 for name in keep_blocks}
        for score, name, rank in candidates:
            if nonzero <= allowed_nonzero:
                break
            # Rank positions must be pruned in order within a layer.
            if rank != pruned_positions[name]:
                continue
            _, grid = rank_scores[name]
            elements_per_position = layer_elements[name] / grid.block_cols
            nonzero -= elements_per_position * nm_density
            pruned_positions[name] += 1
            keep_blocks[name] = grid.block_cols - pruned_positions[name]

        return keep_blocks

    def _apply_block_step(
        self,
        saliency: Dict[str, np.ndarray],
        fine_masks: Dict[str, np.ndarray],
        keep_blocks: Dict[str, int],
    ) -> None:
        """Install the hybrid (N:M x uniform-block) mask on every layer."""
        for name, layer in self._layers.items():
            scores = saliency.get(name)
            if scores is None:
                scores = np.abs(layer.reshaped_weight())
            fine = fine_masks[name]
            masked_scores = scores * fine
            blocks, grid = block_scores(masked_scores, self.config.block_size)
            keep = keep_blocks[name]
            keep = int(np.clip(keep, self.config.min_keep_blocks_per_row, grid.block_cols))
            # Keep the top-k blocks of every row; combined with the N:M mask this
            # is the hybrid pattern with uniform retained blocks per row.
            top_cols = np.argsort(blocks, axis=1)[:, ::-1][:, :keep]
            keep_grid = np.zeros_like(blocks)
            keep_grid[np.arange(grid.block_rows)[:, None], top_cols] = 1.0
            coarse = np.kron(keep_grid, np.ones((self.config.block_size, self.config.block_size)))
            coarse = coarse[: grid.rows, : grid.cols]
            layer.set_reshaped_mask(combine_masks(fine, coarse))
        self._keep_blocks = dict(keep_blocks)

    # --------------------------------------------------------------- finetune
    def _finetune(self, train_loader, val_loader) -> float:
        if self.config.use_ste:
            ste_config = STEConfig(
                epochs=self.config.finetune_epochs,
                lr=self.config.finetune_lr,
                momentum=self.config.momentum,
                weight_decay=self.config.weight_decay,
                max_batches_per_epoch=self.config.max_batches_per_epoch,
            )
            return ste_finetune(self.model, lambda: iter(train_loader), ste_config)
        trainer = Trainer(
            self.model,
            TrainConfig(
                epochs=self.config.finetune_epochs,
                lr=self.config.finetune_lr,
                momentum=self.config.momentum,
                weight_decay=self.config.weight_decay,
                max_batches_per_epoch=self.config.max_batches_per_epoch,
            ),
        )
        result = trainer.fit(train_loader, val_loader=None)
        _ = val_loader
        return result.train_loss[-1] if result.train_loss else float("nan")

    # ------------------------------------------------------------------ prune
    def prune(self, train_loader, val_loader=None) -> PruningResult:
        """Run the full iterative pruning loop.

        Parameters
        ----------
        train_loader:
            Loader over the user-preferred-class training samples; used both
            for saliency estimation and fine-tuning.
        val_loader:
            Optional loader for per-iteration accuracy tracking.
        """
        result = PruningResult(config=self.config)
        if val_loader is not None:
            result.baseline_accuracy = evaluate(self.model, iter(val_loader))

        schedule = self.config.build_schedule()
        for iteration, target in enumerate(schedule):
            saliency = self._saliency(lambda: iter(train_loader))
            fine_masks = self._apply_nm_step(saliency)
            rank_scores = self._rank_position_scores(saliency, fine_masks)
            keep_blocks = self._select_keep_blocks(rank_scores, target)
            self._apply_block_step(saliency, fine_masks, keep_blocks)

            loss = self._finetune(train_loader, val_loader)

            achieved = model_sparsity(self.model)
            val_acc = evaluate(self.model, iter(val_loader)) if val_loader is not None else None
            result.history.append(
                PruningIterationRecord(
                    iteration=iteration,
                    target_sparsity=target,
                    achieved_sparsity=achieved,
                    finetune_loss=loss,
                    val_accuracy=val_acc,
                    layer_sparsity=layer_sparsities(self.model),
                    keep_blocks_per_row=dict(self._keep_blocks),
                )
            )

        # Freeze the final masks into the weights and run a recovery fine-tune
        # with mask-respecting updates (the paper's post-pruning fine-tuning,
        # which also re-calibrates the batch-norm statistics).
        self.model.apply_masks()
        recovery_epochs = (
            self.config.final_finetune_epochs
            if self.config.final_finetune_epochs is not None
            else self.config.finetune_epochs
        )
        if recovery_epochs > 0:
            trainer = Trainer(
                self.model,
                TrainConfig(
                    epochs=recovery_epochs,
                    lr=self.config.finetune_lr,
                    momentum=self.config.momentum,
                    weight_decay=self.config.weight_decay,
                    max_batches_per_epoch=self.config.max_batches_per_epoch,
                ),
            )
            trainer.fit(train_loader, val_loader=None)
            self.model.apply_masks()

        result.final_sparsity = model_sparsity(self.model)
        if val_loader is not None:
            result.final_accuracy = evaluate(self.model, iter(val_loader))
        return result


def crisp_prune(
    model: Module,
    train_loader,
    val_loader=None,
    config: Optional[CRISPConfig] = None,
) -> PruningResult:
    """One-call convenience wrapper around :class:`CRISPPruner`."""
    return CRISPPruner(model, config).prune(train_loader, val_loader)
