"""Sparsity schedules for iterative pruning.

Algorithm 1 increases the global pruning ratio gradually:
``kappa_p = (1 - N/M) + delta`` per iteration, i.e. the schedule starts from
the sparsity the fine-grained pattern already provides and ramps the coarse
(block) component up to the final target over ``n`` iterations.  Ramping
gradually — rather than pruning everything at once — is what prevents layer
collapse (Tanaka et al., 2020), which the ablation bench demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["SparsitySchedule", "linear_schedule", "cubic_schedule", "one_shot_schedule"]


@dataclass(frozen=True)
class SparsitySchedule:
    """A sequence of per-iteration global sparsity targets.

    Attributes
    ----------
    targets:
        Monotonically non-decreasing sparsity targets, one per pruning
        iteration; the last entry is the final global target ``kappa``.
    """

    targets: tuple

    def __post_init__(self) -> None:
        targets = tuple(float(t) for t in self.targets)
        if not targets:
            raise ValueError("Schedule needs at least one target")
        for t in targets:
            if not 0.0 <= t < 1.0:
                raise ValueError(f"Sparsity targets must be in [0, 1), got {t}")
        if any(b < a - 1e-12 for a, b in zip(targets, targets[1:])):
            raise ValueError("Sparsity targets must be non-decreasing")
        object.__setattr__(self, "targets", targets)

    @property
    def num_iterations(self) -> int:
        return len(self.targets)

    @property
    def final_target(self) -> float:
        return self.targets[-1]

    def __iter__(self):
        return iter(self.targets)

    def __getitem__(self, idx: int) -> float:
        return self.targets[idx]


def linear_schedule(base_sparsity: float, final_sparsity: float, iterations: int) -> SparsitySchedule:
    """Linearly ramp from ``base_sparsity`` (the N:M floor) to ``final_sparsity``.

    This is the ``(1 - N/M) + delta`` schedule of Algorithm 1 with a constant
    per-iteration increment ``delta``.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if final_sparsity < base_sparsity:
        raise ValueError(
            f"final_sparsity ({final_sparsity}) must be >= base_sparsity ({base_sparsity})"
        )
    if iterations == 1:
        return SparsitySchedule((final_sparsity,))
    steps = np.linspace(base_sparsity, final_sparsity, iterations + 1)[1:]
    return SparsitySchedule(tuple(steps))


def cubic_schedule(base_sparsity: float, final_sparsity: float, iterations: int) -> SparsitySchedule:
    """Cubic ramp (fast early, slow late), the schedule popularised by gradual pruning."""
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if final_sparsity < base_sparsity:
        raise ValueError(
            f"final_sparsity ({final_sparsity}) must be >= base_sparsity ({base_sparsity})"
        )
    fractions = np.linspace(0.0, 1.0, iterations + 1)[1:]
    targets = final_sparsity - (final_sparsity - base_sparsity) * (1.0 - fractions) ** 3
    return SparsitySchedule(tuple(float(t) for t in targets))


def one_shot_schedule(final_sparsity: float) -> SparsitySchedule:
    """A single-iteration schedule (the ablation against iterative pruning)."""
    return SparsitySchedule((final_sparsity,))
