"""Shared plumbing for the baseline pruning methods."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ...nn.module import Module
from ...nn.trainer import TrainConfig, Trainer, evaluate
from ..metrics import flops_ratio, layer_sparsities, model_sparsity

__all__ = ["BaselineResult", "finetune", "finalize_result"]


@dataclass
class BaselineResult:
    """Common result record returned by every baseline pruner."""

    method: str
    target_sparsity: float
    achieved_sparsity: float
    final_accuracy: Optional[float] = None
    baseline_accuracy: Optional[float] = None
    flops_ratio: Optional[float] = None
    layer_sparsity: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def accuracy_drop(self) -> Optional[float]:
        if self.final_accuracy is None or self.baseline_accuracy is None:
            return None
        return self.baseline_accuracy - self.final_accuracy


def finetune(
    model: Module,
    train_loader,
    epochs: int = 1,
    lr: float = 0.02,
    max_batches_per_epoch: Optional[int] = None,
) -> float:
    """Mask-respecting fine-tuning shared by the baselines; returns final loss."""
    trainer = Trainer(
        model,
        TrainConfig(
            epochs=epochs,
            lr=lr,
            max_batches_per_epoch=max_batches_per_epoch,
        ),
    )
    result = trainer.fit(train_loader, val_loader=None)
    return result.train_loss[-1] if result.train_loss else float("nan")


def finalize_result(
    method: str,
    model: Module,
    target_sparsity: float,
    val_loader=None,
    baseline_accuracy: Optional[float] = None,
    input_size: Optional[int] = None,
) -> BaselineResult:
    """Measure achieved sparsity / accuracy / FLOPs after a baseline has pruned."""
    result = BaselineResult(
        method=method,
        target_sparsity=target_sparsity,
        achieved_sparsity=model_sparsity(model),
        baseline_accuracy=baseline_accuracy,
        layer_sparsity=layer_sparsities(model),
        flops_ratio=flops_ratio(model, input_size),
    )
    if val_loader is not None:
        result.final_accuracy = evaluate(model, iter(val_loader))
    return result
