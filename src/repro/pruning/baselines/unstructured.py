"""Unstructured (element-wise) global pruning baseline.

The classic magnitude / saliency criterion with no structural constraint:
the globally least-important weights are removed until the target sparsity is
hit.  It is the accuracy-friendliest pattern but — as the paper's
introduction argues — gives no hardware benefit until extreme (~99 %)
sparsity because of the irregular memory access pattern, which is exactly
what the hardware benchmarks show through its poor accelerator utilisation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...nn.models.base import prunable_layers
from ...nn.module import Module
from ..saliency import class_aware_saliency, magnitude_saliency
from .common import BaselineResult, finalize_result, finetune

__all__ = ["unstructured_prune"]


def unstructured_prune(
    model: Module,
    target_sparsity: float,
    train_loader=None,
    val_loader=None,
    finetune_epochs: int = 1,
    finetune_lr: float = 0.02,
    class_aware: bool = True,
    saliency_batches: int = 4,
    baseline_accuracy: Optional[float] = None,
) -> BaselineResult:
    """Globally remove the ``target_sparsity`` fraction of least-salient weights."""
    if not 0.0 <= target_sparsity < 1.0:
        raise ValueError(f"target_sparsity must be in [0, 1), got {target_sparsity}")

    if class_aware and train_loader is not None:
        saliency = class_aware_saliency(model, iter(train_loader), max_batches=saliency_batches)
    else:
        saliency = magnitude_saliency(model)

    layers = prunable_layers(model)
    all_scores = np.concatenate(
        [saliency.get(name, np.abs(layer.reshaped_weight())).ravel() for name, layer in layers.items()]
    )
    prune_count = int(target_sparsity * all_scores.size)
    if prune_count > 0:
        threshold = np.partition(all_scores, prune_count - 1)[prune_count - 1]
    else:
        threshold = -np.inf

    for name, layer in layers.items():
        scores = saliency.get(name, np.abs(layer.reshaped_weight()))
        mask = (scores > threshold).astype(np.float64)
        # Guarantee at least one weight per output column survives.
        empty_cols = mask.sum(axis=0) == 0
        if empty_cols.any():
            best_rows = scores.argmax(axis=0)
            mask[best_rows[empty_cols], np.nonzero(empty_cols)[0]] = 1.0
        layer.set_reshaped_mask(mask)

    if train_loader is not None and finetune_epochs > 0:
        finetune(model, train_loader, epochs=finetune_epochs, lr=finetune_lr)
    model.apply_masks()

    return finalize_result(
        method="unstructured",
        model=model,
        target_sparsity=target_sparsity,
        val_loader=val_loader,
        baseline_accuracy=baseline_accuracy,
    )
