"""Class-aware channel (filter) pruning baseline, in the spirit of OCAP / CAP'NN / MyML.

Whole output channels (columns of the reshaped weight matrix) are removed
based on their aggregate class-aware saliency.  Channel pruning is the
coarsest structure the paper compares against: it maps perfectly onto dense
hardware but removes entire feature detectors, so accuracy degrades quickly
at the high compression rates where CRISP still holds up (Fig. 7).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...nn.models.base import prunable_layers
from ...nn.layers import Linear
from ...nn.module import Module
from ..saliency import class_aware_saliency, magnitude_saliency
from .common import BaselineResult, finalize_result, finetune

__all__ = ["channel_prune"]


def channel_prune(
    model: Module,
    target_sparsity: float,
    train_loader=None,
    val_loader=None,
    finetune_epochs: int = 1,
    finetune_lr: float = 0.02,
    class_aware: bool = True,
    saliency_batches: int = 4,
    min_channels: int = 1,
    prune_classifier: bool = False,
    baseline_accuracy: Optional[float] = None,
) -> BaselineResult:
    """Remove the least-salient output channels of every layer.

    Parameters
    ----------
    target_sparsity:
        Fraction of each layer's channels to remove (rounded down, at least
        ``min_channels`` channels survive per layer).
    prune_classifier:
        Channel-pruning the final classifier would delete whole classes, so
        it is skipped by default (matching OCAP's setup).
    """
    if not 0.0 <= target_sparsity < 1.0:
        raise ValueError(f"target_sparsity must be in [0, 1), got {target_sparsity}")

    if class_aware and train_loader is not None:
        saliency = class_aware_saliency(model, iter(train_loader), max_batches=saliency_batches)
    else:
        saliency = magnitude_saliency(model)

    for name, layer in prunable_layers(model).items():
        if isinstance(layer, Linear) and not prune_classifier and layer.out_features == getattr(
            model, "num_classes", -1
        ):
            continue
        scores = saliency.get(name, np.abs(layer.reshaped_weight()))
        channel_scores = scores.sum(axis=0)  # one score per output channel (column)
        num_channels = channel_scores.shape[0]
        keep_count = max(min_channels, int(round((1.0 - target_sparsity) * num_channels)))
        keep_cols = np.argsort(channel_scores)[::-1][:keep_count]
        mask = np.zeros_like(scores)
        mask[:, keep_cols] = 1.0
        layer.set_reshaped_mask(mask)

    if train_loader is not None and finetune_epochs > 0:
        finetune(model, train_loader, epochs=finetune_epochs, lr=finetune_lr)
    model.apply_masks()

    return finalize_result(
        method="channel",
        model=model,
        target_sparsity=target_sparsity,
        val_loader=val_loader,
        baseline_accuracy=baseline_accuracy,
    )
