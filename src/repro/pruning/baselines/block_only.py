"""Coarse-grained block pruning baseline (Fig. 3 comparison).

Whole ``B x B`` blocks are removed based on their aggregate saliency; unlike
CRISP there is no fine-grained N:M component and no uniform-blocks-per-row
constraint — blocks are selected globally per layer by score, which is the
"block sparsity" configuration the paper shows collapsing above ~80 %
sparsity because critical weights concentrated in one block get removed
wholesale.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...nn.models.base import prunable_layers
from ...nn.module import Module
from ...sparsity.block import topk_block_mask
from ..saliency import class_aware_saliency, magnitude_saliency
from .common import BaselineResult, finalize_result, finetune

__all__ = ["block_prune"]


def block_prune(
    model: Module,
    target_sparsity: float,
    block_size: int = 16,
    train_loader=None,
    val_loader=None,
    finetune_epochs: int = 1,
    finetune_lr: float = 0.02,
    class_aware: bool = True,
    saliency_batches: int = 4,
    baseline_accuracy: Optional[float] = None,
) -> BaselineResult:
    """Prune ``target_sparsity`` of each layer's weights by removing whole blocks.

    Parameters
    ----------
    model:
        Network to prune in place.
    target_sparsity:
        Fraction of weights to remove per layer (block granularity rounds it).
    class_aware:
        When ``True`` and a ``train_loader`` is given, block scores use the
        class-aware saliency; otherwise pure weight magnitude.
    """
    if not 0.0 <= target_sparsity < 1.0:
        raise ValueError(f"target_sparsity must be in [0, 1), got {target_sparsity}")

    if class_aware and train_loader is not None:
        saliency = class_aware_saliency(model, iter(train_loader), max_batches=saliency_batches)
    else:
        saliency = magnitude_saliency(model)

    keep_ratio = 1.0 - target_sparsity
    for name, layer in prunable_layers(model).items():
        scores = saliency.get(name, np.abs(layer.reshaped_weight()))
        mask = topk_block_mask(scores, block_size, keep_ratio)
        layer.set_reshaped_mask(mask)

    if train_loader is not None and finetune_epochs > 0:
        finetune(model, train_loader, epochs=finetune_epochs, lr=finetune_lr)
    model.apply_masks()

    return finalize_result(
        method=f"block-{block_size}",
        model=model,
        target_sparsity=target_sparsity,
        val_loader=val_loader,
        baseline_accuracy=baseline_accuracy,
    )
