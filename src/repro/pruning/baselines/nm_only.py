"""Fine-grained N:M pruning baseline (the Fig. 1 comparison, NVIDIA-ASP style).

Every layer gets the same N:M ratio, so the model sparsity is pinned at
``1 - N/M`` — the limitation CRISP's hybrid pattern removes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...nn.models.base import prunable_layers
from ...nn.module import Module
from ...sparsity.nm import nm_mask
from ..saliency import class_aware_saliency, magnitude_saliency
from .common import BaselineResult, finalize_result, finetune

__all__ = ["nm_prune"]


def nm_prune(
    model: Module,
    n: int,
    m: int,
    train_loader=None,
    val_loader=None,
    finetune_epochs: int = 1,
    finetune_lr: float = 0.02,
    class_aware: bool = True,
    saliency_batches: int = 4,
    baseline_accuracy: Optional[float] = None,
) -> BaselineResult:
    """Apply a uniform N:M pattern to every prunable layer and fine-tune."""
    if class_aware and train_loader is not None:
        saliency = class_aware_saliency(model, iter(train_loader), max_batches=saliency_batches)
    else:
        saliency = magnitude_saliency(model)

    for name, layer in prunable_layers(model).items():
        scores = saliency.get(name, np.abs(layer.reshaped_weight()))
        layer.set_reshaped_mask(nm_mask(scores, n, m, axis=0))

    if train_loader is not None and finetune_epochs > 0:
        finetune(model, train_loader, epochs=finetune_epochs, lr=finetune_lr)
    model.apply_masks()

    return finalize_result(
        method=f"nm-{n}:{m}",
        model=model,
        target_sparsity=1.0 - n / m,
        val_loader=val_loader,
        baseline_accuracy=baseline_accuracy,
    )
