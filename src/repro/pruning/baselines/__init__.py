"""Baseline pruning methods the paper compares CRISP against.

* :mod:`block_only` — coarse-grained block pruning without the N:M component
  and without the uniform-rows constraint (the Fig. 3 comparison).
* :mod:`nm_only` — fine-grained N:M pruning at a fixed ratio (the Fig. 1
  comparison; also what NVIDIA ASP provides).
* :mod:`unstructured` — global magnitude / saliency pruning with no
  structure (upper bound on accuracy, useless for hardware).
* :mod:`channel` — class-aware channel (filter) pruning in the spirit of
  OCAP / CAP'NN / MyML.
* :mod:`dense` — dense fine-tuning on the user classes (the accuracy upper
  bound reported in Fig. 7).
"""

from .common import BaselineResult, finetune
from .block_only import block_prune
from .nm_only import nm_prune
from .unstructured import unstructured_prune
from .channel import channel_prune
from .dense import dense_finetune

__all__ = [
    "BaselineResult",
    "finetune",
    "block_prune",
    "nm_prune",
    "unstructured_prune",
    "channel_prune",
    "dense_finetune",
]
