"""Dense fine-tuning baseline: the paper's accuracy upper bound.

The original dense model is fine-tuned on the user-preferred classes with no
pruning at all.  Its accuracy is the "upper bound" row of Fig. 7 and the
reference against which every pruning method's accuracy drop is measured.
"""

from __future__ import annotations

from typing import Optional

from ...nn.module import Module
from ...nn.trainer import evaluate
from .common import BaselineResult, finalize_result, finetune

__all__ = ["dense_finetune"]


def dense_finetune(
    model: Module,
    train_loader,
    val_loader=None,
    epochs: int = 2,
    lr: float = 0.02,
    max_batches_per_epoch: Optional[int] = None,
) -> BaselineResult:
    """Fine-tune the dense model on the user classes and report its accuracy."""
    baseline_accuracy = (
        evaluate(model, iter(val_loader)) if val_loader is not None else None
    )
    finetune(
        model,
        train_loader,
        epochs=epochs,
        lr=lr,
        max_batches_per_epoch=max_batches_per_epoch,
    )
    return finalize_result(
        method="dense",
        model=model,
        target_sparsity=0.0,
        val_loader=val_loader,
        baseline_accuracy=baseline_accuracy,
    )
