"""Class-aware saliency scores (CASS) and alternative pruning criteria.

The CRISP pruning metric (Sec. III-D, Eq. 1) is a first-order Taylor
estimate of the loss change caused by removing a weight, computed from
gradients accumulated over samples of the *user-preferred classes* only:

    T_w = | (1 / H_uc) * dL/dW  *  W |

Weights that matter for the user's classes receive both a large gradient and
a large magnitude, so their product survives; weights that only matter for
other classes see small gradients on the personalised data and are pruned.

Alternative criteria (pure magnitude, pure gradient, random) are provided for
the ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from ..nn.loss import CrossEntropyLoss
from ..nn.models.base import prunable_layers
from ..nn.module import Module
from ..nn.trainer import accumulate_gradients

__all__ = [
    "class_aware_saliency",
    "magnitude_saliency",
    "gradient_saliency",
    "random_saliency",
    "SALIENCY_CRITERIA",
    "compute_saliency",
]

#: Saliency maps are keyed by prunable-layer name, each value in the reshaped
#: ``(HWR, S)`` layout so the sparsity generators can consume them directly.
SaliencyDict = Dict[str, np.ndarray]


def _reshaped_weights_and_grads(
    model: Module, grads: Dict[str, np.ndarray]
) -> Iterable[Tuple[str, np.ndarray, Optional[np.ndarray]]]:
    """Yield ``(layer_name, reshaped_weight, reshaped_grad)`` for prunable layers."""
    for name, layer in prunable_layers(model).items():
        weight2d = layer.reshaped_weight()
        grad_key = f"{name}.weight" if name else "weight"
        grad = grads.get(grad_key)
        grad2d = None
        if grad is not None:
            # Reshape the raw gradient the same way the layer reshapes its weight.
            c_out = weight2d.shape[1]
            grad2d = grad.reshape(c_out, -1).T
        yield name, weight2d, grad2d


def class_aware_saliency(
    model: Module,
    batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    loss_fn: Optional[CrossEntropyLoss] = None,
    max_batches: Optional[int] = None,
) -> SaliencyDict:
    """Compute the class-aware saliency score for every prunable layer.

    Parameters
    ----------
    model:
        The network being pruned (left unchanged; gradients are cleared).
    batches:
        Batches drawn from the user-preferred classes ``uc``.
    max_batches:
        Optional cap on the number of batches used for the estimate.

    Returns
    -------
    dict
        ``layer_name -> |grad * weight|`` in the reshaped layout.
    """
    grads = accumulate_gradients(model, batches, loss_fn=loss_fn, max_batches=max_batches)
    saliency: SaliencyDict = {}
    for name, weight2d, grad2d in _reshaped_weights_and_grads(model, grads):
        if grad2d is None:
            # Layer did not receive gradient (e.g. frozen); fall back to magnitude.
            saliency[name] = np.abs(weight2d)
        else:
            saliency[name] = np.abs(grad2d * weight2d)
    return saliency


def magnitude_saliency(model: Module) -> SaliencyDict:
    """Class-agnostic |W| saliency (the classic magnitude-pruning criterion)."""
    return {
        name: np.abs(layer.reshaped_weight())
        for name, layer in prunable_layers(model).items()
    }


def gradient_saliency(
    model: Module,
    batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    loss_fn: Optional[CrossEntropyLoss] = None,
    max_batches: Optional[int] = None,
) -> SaliencyDict:
    """Pure |grad| saliency (ablation: gradient magnitude without the weight factor)."""
    grads = accumulate_gradients(model, batches, loss_fn=loss_fn, max_batches=max_batches)
    saliency: SaliencyDict = {}
    for name, weight2d, grad2d in _reshaped_weights_and_grads(model, grads):
        saliency[name] = np.abs(grad2d) if grad2d is not None else np.abs(weight2d)
    return saliency


def random_saliency(model: Module, seed: int = 0) -> SaliencyDict:
    """Random scores (the weakest possible criterion, used as a sanity baseline)."""
    rng = np.random.default_rng(seed)
    return {
        name: rng.random(layer.reshaped_weight().shape)
        for name, layer in prunable_layers(model).items()
    }


#: Registry of saliency criteria usable by the pruners and the ablation bench.
SALIENCY_CRITERIA = ("class_aware", "magnitude", "gradient", "random")


def compute_saliency(
    criterion: str,
    model: Module,
    batches: Optional[Iterable[Tuple[np.ndarray, np.ndarray]]] = None,
    seed: int = 0,
    max_batches: Optional[int] = None,
) -> SaliencyDict:
    """Dispatch to one of the registered saliency criteria by name."""
    if criterion == "class_aware":
        if batches is None:
            raise ValueError("class_aware saliency requires data batches")
        return class_aware_saliency(model, batches, max_batches=max_batches)
    if criterion == "gradient":
        if batches is None:
            raise ValueError("gradient saliency requires data batches")
        return gradient_saliency(model, batches, max_batches=max_batches)
    if criterion == "magnitude":
        return magnitude_saliency(model)
    if criterion == "random":
        return random_saliency(model, seed=seed)
    raise ValueError(f"Unknown saliency criterion {criterion!r}; available: {SALIENCY_CRITERIA}")
