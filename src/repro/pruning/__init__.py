"""The CRISP pruning framework and its baselines (the paper's core contribution)."""

from .saliency import (
    SALIENCY_CRITERIA,
    class_aware_saliency,
    compute_saliency,
    gradient_saliency,
    magnitude_saliency,
    random_saliency,
)
from .ste import STEConfig, refresh_nm_masks, ste_finetune
from .schedule import SparsitySchedule, cubic_schedule, linear_schedule, one_shot_schedule
from .metrics import (
    LayerStats,
    ModelStats,
    collect_model_stats,
    flops_ratio,
    layer_sparsities,
    model_sparsity,
    model_storage_bits,
)
from .crisp import CRISPConfig, CRISPPruner, PruningIterationRecord, PruningResult, crisp_prune
from . import baselines

__all__ = [
    "SALIENCY_CRITERIA",
    "class_aware_saliency",
    "compute_saliency",
    "gradient_saliency",
    "magnitude_saliency",
    "random_saliency",
    "STEConfig",
    "refresh_nm_masks",
    "ste_finetune",
    "SparsitySchedule",
    "cubic_schedule",
    "linear_schedule",
    "one_shot_schedule",
    "LayerStats",
    "ModelStats",
    "collect_model_stats",
    "flops_ratio",
    "layer_sparsities",
    "model_sparsity",
    "model_storage_bits",
    "CRISPConfig",
    "CRISPPruner",
    "PruningIterationRecord",
    "PruningResult",
    "crisp_prune",
    "baselines",
]
