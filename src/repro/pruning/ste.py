"""Straight-through estimator (STE) fine-tuning for N:M pruning.

CRISP extends the straight-through estimator (Bengio et al., 2013) to the
N:M setting: the forward pass uses the masked weights, but gradients are
"back-projected" onto the *dense* weight copy.  Because the dense weights
keep evolving underneath the mask, weights that were pruned early — perhaps
due to small or noisy gradients — can grow back and be re-selected when the
N:M mask is recomputed, which matters when the relevant classes change
(Sec. III-C of the paper).

In this substrate the mechanism maps onto two switches:

* layers always compute with ``Parameter.effective()`` (``data * mask``), so
  installing a mask never destroys the dense copy;
* the optimiser is run with ``respect_masks=False`` so updates reach every
  dense weight, and the mask is refreshed from the updated dense weights at
  the end of each STE round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..nn.loss import CrossEntropyLoss
from ..nn.models.base import prunable_layers
from ..nn.module import Module
from ..nn.optim import SGD
from ..sparsity.nm import nm_mask

__all__ = ["STEConfig", "ste_finetune", "refresh_nm_masks"]


@dataclass
class STEConfig:
    """Hyper-parameters for one STE fine-tuning round."""

    epochs: int = 1
    lr: float = 0.02
    momentum: float = 0.9
    weight_decay: float = 4e-5
    max_batches_per_epoch: Optional[int] = None


def refresh_nm_masks(
    model: Module,
    n: int,
    m: int,
    saliency: Optional[Dict[str, np.ndarray]] = None,
) -> Dict[str, np.ndarray]:
    """Recompute the N:M component of every prunable layer's mask.

    The new fine-grained mask is derived from ``saliency`` when provided
    (class-aware selection) and from the dense weight magnitudes otherwise.
    Any existing coarse (block) component is preserved by intersecting the
    new N:M mask with the block structure of the previous mask: a block whose
    entries were all pruned stays pruned.

    Returns the installed reshaped masks keyed by layer name.
    """
    installed: Dict[str, np.ndarray] = {}
    for name, layer in prunable_layers(model).items():
        weight2d = layer.reshaped_weight()
        scores = np.abs(weight2d)
        if saliency is not None and name in saliency:
            scores = np.abs(saliency[name])
        fine = nm_mask(scores, n, m, axis=0)

        previous = layer.weight.mask
        if previous is not None:
            c_out = weight2d.shape[1]
            previous2d = previous.reshape(c_out, -1).T
            # Preserve fully-pruned regions (the coarse component) of the old mask.
            coarse_keep = (previous2d != 0).astype(np.float64)
            # Only constrain where an entire M-group was wiped out by block pruning;
            # element-level re-selection inside live blocks is the point of STE.
            fine = fine * np.where(coarse_keep.sum(axis=0, keepdims=True) > 0, 1.0, 0.0)
            fine = np.where(previous2d.sum(axis=0, keepdims=True) == 0, 0.0, fine)
        layer.set_reshaped_mask(fine)
        installed[name] = fine
    return installed


def ste_finetune(
    model: Module,
    batches_factory,
    config: Optional[STEConfig] = None,
    loss_fn: Optional[CrossEntropyLoss] = None,
) -> float:
    """Fine-tune with masked forward passes and dense (straight-through) updates.

    Parameters
    ----------
    model:
        Model whose prunable layers already carry masks.
    batches_factory:
        Zero-argument callable returning an iterable of ``(images, targets)``
        batches (called once per epoch so shuffling loaders work naturally).
    config:
        STE hyper-parameters.

    Returns
    -------
    float
        Mean training loss of the final epoch.
    """
    config = config or STEConfig()
    loss_fn = loss_fn or CrossEntropyLoss()
    optimizer = SGD(
        model.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
        respect_masks=False,
    )

    last_epoch_loss = float("nan")
    for _ in range(config.epochs):
        model.train()
        losses = []
        for batch_idx, (images, targets) in enumerate(batches_factory()):
            if (
                config.max_batches_per_epoch is not None
                and batch_idx >= config.max_batches_per_epoch
            ):
                break
            optimizer.zero_grad()
            logits = model(images)
            loss = loss_fn(logits, targets)
            grad_logits = loss_fn.backward()
            model.backward(grad_logits)
            optimizer.step()
            losses.append(loss)
        if losses:
            last_epoch_loss = float(np.mean(losses))
    return last_epoch_loss
