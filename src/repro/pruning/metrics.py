"""Compression metrics: sparsity, parameter counts, FLOPs and storage size.

The paper reports a *normalized FLOPs ratio* (pruned FLOPs / dense FLOPs) as
its compression measure (Fig. 7) and overall model sparsity for the headline
claims.  FLOPs are counted per layer from the traced activation shapes and
the retained-weight counts, so structured and unstructured masks are treated
consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..nn.layers import Conv2d, DepthwiseConv2d, Linear
from ..nn.models.base import prunable_layers
from ..nn.module import Module
from ..nn import functional as F
from ..sparsity.formats import CRISPFormat, DEFAULT_VALUE_BITS

__all__ = [
    "LayerStats",
    "ModelStats",
    "model_sparsity",
    "layer_sparsities",
    "collect_model_stats",
    "flops_ratio",
    "model_storage_bits",
]


@dataclass
class LayerStats:
    """Per-layer compression statistics."""

    name: str
    layer_type: str
    weight_shape: tuple
    total_weights: int
    nonzero_weights: int
    dense_flops: int
    sparse_flops: int

    @property
    def sparsity(self) -> float:
        return 1.0 - self.nonzero_weights / max(1, self.total_weights)

    @property
    def flops_ratio(self) -> float:
        return self.sparse_flops / max(1, self.dense_flops)


@dataclass
class ModelStats:
    """Whole-model compression statistics (aggregated over prunable layers)."""

    layers: List[LayerStats] = field(default_factory=list)

    @property
    def total_weights(self) -> int:
        return sum(layer.total_weights for layer in self.layers)

    @property
    def nonzero_weights(self) -> int:
        return sum(layer.nonzero_weights for layer in self.layers)

    @property
    def sparsity(self) -> float:
        return 1.0 - self.nonzero_weights / max(1, self.total_weights)

    @property
    def dense_flops(self) -> int:
        return sum(layer.dense_flops for layer in self.layers)

    @property
    def sparse_flops(self) -> int:
        return sum(layer.sparse_flops for layer in self.layers)

    @property
    def flops_ratio(self) -> float:
        """Normalized FLOPs ratio w.r.t. the dense model (smaller is better)."""
        return self.sparse_flops / max(1, self.dense_flops)

    def by_name(self) -> Dict[str, LayerStats]:
        return {layer.name: layer for layer in self.layers}


def _effective_nonzero(layer) -> int:
    """Non-zero weights of a layer, honouring the mask when installed."""
    weight = layer.weight
    if weight.mask is not None:
        return int(np.count_nonzero(weight.mask))
    return int(np.count_nonzero(weight.data))


def _trace_spatial_outputs(model: Module, input_size: Optional[int]) -> Dict[int, int]:
    """Run one dummy forward and map ``id(layer) -> output spatial positions``.

    Convolution FLOPs scale with the number of output positions; a forward
    trace with a single image captures them for arbitrary topologies.
    """
    size = input_size or getattr(model, "input_size", 16)
    channels = 3
    dummy = np.zeros((1, channels, size, size))
    was_training = model.training
    model.eval()
    model(dummy)
    model.train(was_training)

    positions: Dict[int, int] = {}
    for _, module in model.named_modules():
        if isinstance(module, (Conv2d, DepthwiseConv2d)) and module._cache:
            _, _, h, w = module._cache["x_shape"]
            out_h = F.conv_output_size(h, module.kernel_size, module.stride, module.padding)
            out_w = F.conv_output_size(w, module.kernel_size, module.stride, module.padding)
            positions[id(module)] = out_h * out_w
    return positions


def collect_model_stats(model: Module, input_size: Optional[int] = None) -> ModelStats:
    """Collect :class:`LayerStats` for every prunable layer of ``model``."""
    positions = _trace_spatial_outputs(model, input_size)
    stats = ModelStats()
    for name, layer in prunable_layers(model).items():
        total = layer.weight.size
        nonzero = _effective_nonzero(layer)
        if isinstance(layer, Conv2d):
            out_positions = positions.get(id(layer), 1)
            dense_flops = 2 * total * out_positions
            sparse_flops = 2 * nonzero * out_positions
            shape = layer.weight.shape
        elif isinstance(layer, Linear):
            dense_flops = 2 * total
            sparse_flops = 2 * nonzero
            shape = layer.weight.shape
        else:  # pragma: no cover - defensive
            continue
        stats.layers.append(
            LayerStats(
                name=name,
                layer_type=type(layer).__name__,
                weight_shape=shape,
                total_weights=total,
                nonzero_weights=nonzero,
                dense_flops=dense_flops,
                sparse_flops=sparse_flops,
            )
        )
    return stats


def model_sparsity(model: Module) -> float:
    """Global weight sparsity over the prunable layers."""
    total = 0
    nonzero = 0
    for _, layer in prunable_layers(model).items():
        total += layer.weight.size
        nonzero += _effective_nonzero(layer)
    if total == 0:
        raise ValueError("Model has no prunable layers")
    return 1.0 - nonzero / total


def layer_sparsities(model: Module) -> Dict[str, float]:
    """Per-layer weight sparsity keyed by layer name (Fig. 2's distribution)."""
    result: Dict[str, float] = {}
    for name, layer in prunable_layers(model).items():
        result[name] = 1.0 - _effective_nonzero(layer) / max(1, layer.weight.size)
    return result


def flops_ratio(model: Module, input_size: Optional[int] = None) -> float:
    """Normalized FLOPs ratio of the (possibly pruned) model vs. its dense self."""
    return collect_model_stats(model, input_size).flops_ratio


def model_storage_bits(
    model: Module,
    n: int = 2,
    m: int = 4,
    block_size: int = 16,
    value_bits: int = DEFAULT_VALUE_BITS,
) -> Dict[str, int]:
    """Total storage (data + metadata bits) of the model in the CRISP format.

    Returns a dict with ``data_bits``, ``metadata_bits``, ``total_bits`` and
    the equivalent dense ``dense_bits`` for comparison.
    """
    data_bits = 0
    metadata_bits = 0
    dense_bits = 0
    for _, layer in prunable_layers(model).items():
        weight2d = layer.reshaped_weight()
        if layer.weight.mask is not None:
            c_out = weight2d.shape[1]
            mask2d = layer.weight.mask.reshape(c_out, -1).T
            weight2d = weight2d * mask2d
        encoded = CRISPFormat.from_dense(weight2d, n=n, m=m, block_size=block_size, value_bits=value_bits)
        summary = encoded.summary()
        data_bits += summary.data_bits
        metadata_bits += summary.metadata_bits
        dense_bits += weight2d.size * value_bits
    return {
        "data_bits": data_bits,
        "metadata_bits": metadata_bits,
        "total_bits": data_bits + metadata_bits,
        "dense_bits": dense_bits,
    }
