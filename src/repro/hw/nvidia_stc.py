"""NVIDIA Sparse Tensor Core (STC) model.

NVIDIA's sparse tensor cores accelerate exactly one pattern — 2:4 — by
feeding two non-zero weights out of every four to the MAC array, which caps
the theoretical speedup at 2x.  The model reflects the paper's observations:

* a 1:4-pruned weight matrix still runs as 2:4 (one of the two slots is a
  zero), so the compute reduction never exceeds 2x;
* a 3:4-pruned matrix cannot be expressed in the 2:4 format and falls back
  to dense execution;
* coarse block sparsity is invisible to the hardware — all columns are
  fetched and processed;
* the edge-class configuration suffers a utilisation penalty (the paper's
  "poor utilization rate"), so achieved speedups stay below 2x.
"""

from __future__ import annotations

from .accelerator import Accelerator, _ResourceDemand
from .workload import LayerWorkload

__all__ = ["NvidiaSTC"]


class NvidiaSTC(Accelerator):
    """NVIDIA-style sparse tensor core supporting only the 2:4 pattern."""

    name = "nvidia-stc"

    #: Structured-sparse GEMMs on the edge configuration reach lower MAC
    #: occupancy than the dense pipeline (operand gather + tail effects).
    utilization = 0.88

    def _supported_density(self, workload: LayerWorkload) -> float:
        """Fraction of MACs that must still be executed given 2:4-only support."""
        if workload.m == 4 and workload.n <= 2:
            return 0.5  # runs as 2:4 even if the weights are 1:4
        return 1.0  # 3:4 or non-4 group sizes fall back to dense execution

    def _demand(self, workload: LayerWorkload) -> _ResourceDemand:
        density = self._supported_density(workload)
        macs = workload.dense_macs * density

        # Weights stored compressed (2 of 4 values) with 2-bit indices when
        # the pattern is supported; block pruning is not exploited, so the
        # full column extent is stored and streamed.
        weight_values = workload.out_channels * workload.reduction * density
        weight_bytes = weight_values * workload.weight_bits / 8.0
        metadata_bytes = weight_values * 2.0 / 8.0 if density < 1.0 else 0.0

        # Full activation tiles are fetched: block pruning is invisible to STC.
        smem_bytes = weight_bytes + metadata_bytes + workload.input_bytes + workload.output_bytes
        dram_bytes = weight_bytes + metadata_bytes + self._activation_dram_bytes(workload)
        rf_bytes = 2.0 * macs
        mux_selects = macs if density < 1.0 else 0.0
        metadata_decodes = weight_values if density < 1.0 else 0.0

        return _ResourceDemand(
            macs=macs,
            utilization=self.utilization,
            smem_bytes=smem_bytes,
            dram_bytes=dram_bytes,
            rf_bytes=rf_bytes,
            mux_selects=mux_selects,
            metadata_decodes=metadata_decodes,
        )
