"""Analytical accelerator performance model (Sparseloop-style).

Each accelerator front-end translates a :class:`~repro.hw.workload.LayerWorkload`
into three resource demands — useful compute (MAC operations with an
efficiency factor), shared-memory traffic and DRAM traffic — and the base
class turns them into a latency estimate with a roofline rule
(``cycles = max(compute, smem, dram)``) and an energy estimate from the
per-component energy model.

This mirrors how the paper evaluates CRISP-STC against NVIDIA-STC and DSTC:
none of the designs is emulated at RTL; an analytical cycle/energy model
driven by the sparsity structure of each layer is used instead (Sparseloop +
CACTI in the paper, this module here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .energy import DEFAULT_ENERGY_MODEL, EnergyBreakdown, EnergyModel
from .workload import LayerWorkload

__all__ = ["AcceleratorSpec", "LayerPerformance", "Accelerator", "EDGE_SPEC"]


@dataclass(frozen=True)
class AcceleratorSpec:
    """Shared hardware resources of the modelled accelerators.

    The default numbers follow the paper's edge-centric CRISP-STC
    configuration: four tensor cores of 64 MACs each behind a 256 KB SMEM,
    with only a fraction of a datacenter GPU's SMEM bandwidth.
    """

    name: str = "edge-stc"
    num_macs: int = 256
    smem_kb: int = 256
    rf_kb_per_core: int = 1
    num_cores: int = 4
    smem_bandwidth_bytes_per_cycle: float = 128.0
    dram_bandwidth_bytes_per_cycle: float = 32.0
    frequency_mhz: float = 500.0
    #: When True, feature maps are assumed to stay resident in the 256 KB SMEM
    #: between layers (batch-1 edge inference), so only weights and metadata
    #: cross the DRAM boundary.  Set False to charge every accelerator for
    #: streaming input/output feature maps from/to DRAM as well.
    fmap_resident: bool = True

    def __post_init__(self) -> None:
        if self.num_macs <= 0:
            raise ValueError("num_macs must be positive")
        if self.smem_bandwidth_bytes_per_cycle <= 0 or self.dram_bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidths must be positive")


#: The edge configuration used for every accelerator in the Fig. 8 comparison.
EDGE_SPEC = AcceleratorSpec()


@dataclass
class LayerPerformance:
    """Latency / energy estimate for one layer on one accelerator."""

    accelerator: str
    layer: str
    cycles: float
    compute_cycles: float
    smem_cycles: float
    dram_cycles: float
    energy: EnergyBreakdown
    effective_macs: float
    utilization: float

    @property
    def energy_uj(self) -> float:
        return self.energy.total_uj

    @property
    def bound(self) -> str:
        """Which resource dominates the latency of this layer."""
        bounds = {
            "compute": self.compute_cycles,
            "smem": self.smem_cycles,
            "dram": self.dram_cycles,
        }
        return max(bounds, key=bounds.get)

    def latency_us(self, frequency_mhz: float) -> float:
        return self.cycles / frequency_mhz


@dataclass
class _ResourceDemand:
    """Intermediate resource demands produced by an accelerator front-end."""

    macs: float
    utilization: float
    smem_bytes: float
    dram_bytes: float
    rf_bytes: float = 0.0
    mux_selects: float = 0.0
    metadata_decodes: float = 0.0
    extra_cycles: float = 0.0


class Accelerator:
    """Base class: converts resource demands into latency and energy."""

    name = "base"

    def __init__(
        self,
        spec: AcceleratorSpec = EDGE_SPEC,
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    ) -> None:
        self.spec = spec
        self.energy_model = energy_model

    # -- to be provided by subclasses ------------------------------------------
    def _demand(self, workload: LayerWorkload) -> _ResourceDemand:  # pragma: no cover
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------
    def _activation_dram_bytes(self, workload: LayerWorkload, input_scale: float = 1.0) -> float:
        """DRAM bytes spent on feature maps (zero when they stay SMEM-resident)."""
        if self.spec.fmap_resident:
            return 0.0
        return workload.fmap_bytes * input_scale + workload.output_bytes

    # -- shared machinery --------------------------------------------------------
    def estimate(self, workload: LayerWorkload) -> LayerPerformance:
        """Latency and energy of one layer on this accelerator."""
        demand = self._demand(workload)
        if demand.utilization <= 0 or demand.utilization > 1:
            raise ValueError(f"Utilization must be in (0, 1], got {demand.utilization}")

        compute_cycles = demand.macs / (self.spec.num_macs * demand.utilization)
        compute_cycles += demand.extra_cycles
        smem_cycles = demand.smem_bytes / self.spec.smem_bandwidth_bytes_per_cycle
        dram_cycles = demand.dram_bytes / self.spec.dram_bandwidth_bytes_per_cycle
        cycles = max(compute_cycles, smem_cycles, dram_cycles)

        em = self.energy_model
        energy = EnergyBreakdown(
            mac_pj=demand.macs * em.mac_pj,
            rf_pj=demand.rf_bytes * em.rf_access_pj,
            smem_pj=demand.smem_bytes * em.smem_access_pj,
            dram_pj=demand.dram_bytes * em.dram_access_pj,
            mux_pj=demand.mux_selects * em.mux_select_pj,
            metadata_pj=demand.metadata_decodes * em.metadata_decode_pj,
            leakage_pj=cycles * em.leakage_pj_per_cycle,
        )
        return LayerPerformance(
            accelerator=self.name,
            layer=workload.name,
            cycles=cycles,
            compute_cycles=compute_cycles,
            smem_cycles=smem_cycles,
            dram_cycles=dram_cycles,
            energy=energy,
            effective_macs=demand.macs,
            utilization=demand.utilization,
        )

    def estimate_network(self, workloads: List[LayerWorkload]) -> List[LayerPerformance]:
        """Estimate every layer of a network (no inter-layer pipelining modelled)."""
        return [self.estimate(workload) for workload in workloads]

    def total_cycles(self, workloads: List[LayerWorkload]) -> float:
        return sum(perf.cycles for perf in self.estimate_network(workloads))

    def total_energy_uj(self, workloads: List[LayerWorkload]) -> float:
        return sum(perf.energy_uj for perf in self.estimate_network(workloads))
