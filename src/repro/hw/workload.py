"""Layer workload descriptions consumed by the accelerator models.

A :class:`LayerWorkload` captures everything the analytical performance model
needs about one convolution/linear layer after im2col lowering: the GEMM
dimensions, the structured-sparsity parameters of the weights and the
activation density.  Workloads can be extracted from a live (pruned) model or
instantiated from the reference ResNet-50 layer table used for the Fig. 8
hardware comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.layers import Conv2d, Linear
from ..nn.models.base import prunable_layers
from ..nn.module import Module

__all__ = [
    "LayerWorkload",
    "workloads_from_model",
    "workloads_from_engine",
    "workloads_from_service",
    "resnet50_reference_layers",
]


@dataclass
class LayerWorkload:
    """One GEMM-shaped layer workload.

    Attributes
    ----------
    name:
        Layer identifier (for reporting).
    out_channels:
        ``S`` — output channels / GEMM output rows.
    reduction:
        ``K = H*W*R`` — the GEMM reduction dimension.
    output_positions:
        Number of output spatial positions times the batch size (GEMM columns).
    n, m:
        Fine-grained N:M ratio of the weights (``m == n`` means dense).
    block_keep_ratio:
        Fraction of weight blocks retained by coarse pruning (1.0 = no block
        pruning).
    weight_density:
        Overall fraction of non-zero weights (usually
        ``block_keep_ratio * n / m``; kept explicit so measured models can
        report their exact density).
    activation_density:
        Fraction of non-zero input activations (ReLU networks typically sit
        around 0.4-0.6; DSTC exploits this).
    weight_bits, activation_bits:
        Operand widths in bits (8-bit quantised inference by default).
    input_fmap_bytes:
        Bytes of the *unexpanded* input feature map (what actually crosses
        the DRAM boundary).  The im2col-expanded stream (``input_bytes``)
        over-counts DRAM traffic by the kernel-overlap factor, so extraction
        helpers fill this in; when ``None`` it falls back to ``input_bytes``.
    """

    name: str
    out_channels: int
    reduction: int
    output_positions: int
    n: int = 4
    m: int = 4
    block_keep_ratio: float = 1.0
    weight_density: float = 1.0
    activation_density: float = 0.6
    weight_bits: int = 8
    activation_bits: int = 8
    input_fmap_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if self.out_channels <= 0 or self.reduction <= 0 or self.output_positions <= 0:
            raise ValueError(f"Workload dimensions must be positive: {self}")
        if not 0 < self.n <= self.m:
            raise ValueError(f"Invalid N:M ratio {self.n}:{self.m}")
        if not 0.0 < self.block_keep_ratio <= 1.0:
            raise ValueError(f"block_keep_ratio must be in (0, 1], got {self.block_keep_ratio}")
        if not 0.0 < self.weight_density <= 1.0:
            raise ValueError(f"weight_density must be in (0, 1], got {self.weight_density}")
        if not 0.0 < self.activation_density <= 1.0:
            raise ValueError(
                f"activation_density must be in (0, 1], got {self.activation_density}"
            )

    # -- derived quantities ----------------------------------------------------
    @property
    def dense_macs(self) -> int:
        """MACs of the dense GEMM."""
        return self.out_channels * self.reduction * self.output_positions

    @property
    def effective_macs(self) -> float:
        """MACs that touch a non-zero weight."""
        return self.dense_macs * self.weight_density

    @property
    def nm_sparsity(self) -> float:
        return 1.0 - self.n / self.m

    @property
    def weight_sparsity(self) -> float:
        return 1.0 - self.weight_density

    @property
    def dense_weight_bytes(self) -> float:
        return self.out_channels * self.reduction * self.weight_bits / 8.0

    @property
    def input_bytes(self) -> float:
        """Bytes of the (dense) im2col input tile stream (on-chip traffic)."""
        return self.reduction * self.output_positions * self.activation_bits / 8.0

    @property
    def fmap_bytes(self) -> float:
        """Bytes of the raw input feature map (off-chip traffic)."""
        if self.input_fmap_bytes is not None:
            return self.input_fmap_bytes
        return self.input_bytes

    @property
    def output_bytes(self) -> float:
        return self.out_channels * self.output_positions * self.activation_bits / 8.0

    def with_sparsity(
        self,
        n: Optional[int] = None,
        m: Optional[int] = None,
        block_keep_ratio: Optional[float] = None,
        activation_density: Optional[float] = None,
    ) -> "LayerWorkload":
        """Return a copy with a different sparsity configuration."""
        n = self.n if n is None else n
        m = self.m if m is None else m
        keep = self.block_keep_ratio if block_keep_ratio is None else block_keep_ratio
        act = self.activation_density if activation_density is None else activation_density
        return LayerWorkload(
            name=self.name,
            out_channels=self.out_channels,
            reduction=self.reduction,
            output_positions=self.output_positions,
            n=n,
            m=m,
            block_keep_ratio=keep,
            weight_density=keep * n / m,
            activation_density=act,
            weight_bits=self.weight_bits,
            activation_bits=self.activation_bits,
            input_fmap_bytes=self.input_fmap_bytes,
        )


def workloads_from_model(
    model: Module,
    input_size: Optional[int] = None,
    batch: int = 1,
    activation_density: float = 0.6,
    n: Optional[int] = None,
    m: Optional[int] = None,
    block_size: Optional[int] = None,
) -> List[LayerWorkload]:
    """Extract per-layer workloads (with measured weight density) from a model.

    The model is traced with a dummy input to recover output spatial sizes;
    weight density comes from the installed masks, so a CRISP-pruned model
    yields workloads reflecting its actual sparsity.

    When the hybrid-sparsity structure of the model is known, pass ``n``,
    ``m`` and ``block_size`` so the per-layer block keep ratio is measured
    from the masks (retained blocks / total blocks) and the accelerator
    models can exploit it.  Without them, all measured sparsity is attributed
    to the coarse (block) component, which is the structure CRISP produces.
    """
    size = input_size or getattr(model, "input_size", 16)
    dummy = np.zeros((1, 3, size, size))
    was_training = model.training
    model.eval()
    model(dummy)
    model.train(was_training)

    workloads: List[LayerWorkload] = []
    for name, layer in prunable_layers(model).items():
        if isinstance(layer, Conv2d):
            _, _, h, w = layer._cache["x_shape"]
            out_h = F.conv_output_size(h, layer.kernel_size, layer.stride, layer.padding)
            out_w = F.conv_output_size(w, layer.kernel_size, layer.stride, layer.padding)
            positions = out_h * out_w * batch
            reduction = layer.in_channels * layer.kernel_size * layer.kernel_size
            out_channels = layer.out_channels
            fmap_bytes = float(layer.in_channels * h * w * batch)
        elif isinstance(layer, Linear):
            positions = batch
            reduction = layer.in_features
            out_channels = layer.out_features
            fmap_bytes = float(layer.in_features * batch)
        else:  # pragma: no cover - defensive
            continue
        density = max(layer.weight.density(), 1e-3)

        layer_n = n if n is not None else 4
        layer_m = m if m is not None else 4
        if block_size is not None and layer.weight.mask is not None:
            from ..sparsity.block import partition_into_blocks

            mask2d = layer.weight.mask.reshape(out_channels, -1).T
            tiles, grid = partition_into_blocks(mask2d, block_size)
            retained = (
                tiles.reshape(grid.block_rows, grid.block_cols, -1).any(axis=2).mean()
            )
            keep_ratio = max(float(retained), 1e-3)
        else:
            # Attribute all measured sparsity beyond the N:M floor to blocks.
            keep_ratio = min(1.0, max(density / (layer_n / layer_m), 1e-3))

        workloads.append(
            LayerWorkload(
                name=name,
                out_channels=out_channels,
                reduction=reduction,
                output_positions=positions,
                n=layer_n,
                m=layer_m,
                block_keep_ratio=keep_ratio,
                weight_density=density,
                activation_density=activation_density,
                input_fmap_bytes=fmap_bytes,
            )
        )
    return workloads


def workloads_from_engine(
    engine,
    batch: int = 1,
    activation_density: float = 0.6,
) -> List[LayerWorkload]:
    """Extract per-layer workloads from an inference :class:`~repro.backend.Engine`.

    The engine already knows the hybrid-sparsity configuration its weights
    were compressed with (``n``, ``m``, ``block_size``), so the accelerator
    models receive workloads whose block keep ratios are measured from the
    installed masks rather than inferred from overall density.  This is the
    bridge that lets experiments drive the hardware model and the inference
    engine from one object.
    """
    spec = engine.spec
    blocked = spec.weight_format in ("blocked-ellpack", "crisp")
    # Only the CRISP format guarantees the fine-grained N:M structure; for
    # dense/CSR/blocked-ELLPACK engines the spec's n:m is incidental, and
    # crediting it would let the accelerator models assume a speedup the
    # weights do not satisfy.
    nm_structured = spec.weight_format == "crisp"
    return workloads_from_model(
        engine.module,
        batch=batch,
        activation_density=activation_density,
        n=spec.n if nm_structured else None,
        m=spec.m if nm_structured else None,
        block_size=spec.block_size if blocked else None,
    )


def workloads_from_service(
    service,
    model_id: str,
    batch: int = 1,
    activation_density: float = 0.6,
) -> List[LayerWorkload]:
    """Extract workloads for one registered tenant of a serving facade.

    Accepts anything with the facade's ``engine(model_id)`` contract —
    including the Serving API v2 backends
    (:class:`~repro.gateway.LocalBackend`,
    :class:`~repro.gateway.ClusterBackend`), which is the canonical way in;
    the raw facades below keep working as deprecation shims:

    * a :class:`~repro.serve.PersonalizationService` — the engine comes from
      the single-process cache;
    * a :class:`~repro.cluster.ClusterService` — the request routes through
      the consistent-hash ring to the *owning shard's* cache, so hardware
      reports model exactly the engine a sharded deployment would serve this
      tenant with (same spec, same materialized formats, same shard
      residency).

    Either way, hardware-model sweeps over a fleet of personalized tenants
    reuse the same materialized engines as the inference traffic they are
    modelling.
    """
    engine = service.engine(model_id)
    return workloads_from_engine(
        engine, batch=batch, activation_density=activation_density
    )


#: Representative ResNet-50 layers (ImageNet, 224x224 input) used by Fig. 8:
#: (name, out_channels, in_channels, kernel, output_spatial, input_spatial).
#: Early layers have large spatial extent and few channels, late layers the
#: opposite — the property that flips DSTC from compute-bound to
#: data-movement/starvation-bound.
_RESNET50_LAYER_TABLE = [
    ("conv1", 64, 3, 7, 112, 224),
    ("layer1.0.conv2", 64, 64, 3, 56, 56),
    ("layer1.2.conv3", 256, 64, 1, 56, 56),
    ("layer2.0.conv2", 128, 128, 3, 28, 28),
    ("layer2.3.conv3", 512, 128, 1, 28, 28),
    ("layer3.0.conv2", 256, 256, 3, 14, 14),
    ("layer3.5.conv3", 1024, 256, 1, 14, 14),
    ("layer4.0.conv2", 512, 512, 3, 7, 7),
    ("layer4.2.conv3", 2048, 512, 1, 7, 7),
]


def resnet50_reference_layers(
    n: int = 2,
    m: int = 4,
    block_keep_ratio: float = 0.4,
    activation_density: float = 0.6,
    batch: int = 1,
) -> List[LayerWorkload]:
    """Workloads for representative full-scale ResNet-50 layers (Fig. 8 setup).

    The default ``block_keep_ratio`` of 0.4 together with 2:4 puts the global
    weight sparsity at 80 %, the lower end of the 80-90 % range the paper
    evaluates.
    """
    workloads = []
    for name, out_c, in_c, kernel, spatial, in_spatial in _RESNET50_LAYER_TABLE:
        workloads.append(
            LayerWorkload(
                name=name,
                out_channels=out_c,
                reduction=in_c * kernel * kernel,
                output_positions=spatial * spatial * batch,
                n=n,
                m=m,
                block_keep_ratio=block_keep_ratio,
                weight_density=block_keep_ratio * n / m,
                activation_density=activation_density,
                input_fmap_bytes=float(in_c * in_spatial * in_spatial * batch),
            )
        )
    return workloads
