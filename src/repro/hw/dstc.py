"""Dual-side Sparse Tensor Core (DSTC) model.

DSTC (Wang et al., ISCA'21) exploits unstructured sparsity on *both* the
weight and the activation side via an outer-product dataflow with sparse
partial-sum merging.  Two behaviours the paper highlights are captured:

* on early convolution layers — large spatial extent, small channel counts —
  the dual-side compute reduction pays off (roughly 3-8x over dense);
* on late layers the arithmetic intensity collapses: the compressed operands
  still have to be fetched, coordinate metadata accompanies every value, and
  the outer-product partial sums are written and re-read several times during
  merging, so data movement becomes the bottleneck and the speedup fades.
"""

from __future__ import annotations

from .accelerator import Accelerator, _ResourceDemand
from .workload import LayerWorkload

__all__ = ["DualSideSTC"]


class DualSideSTC(Accelerator):
    """Dual-side sparse tensor core with outer-product partial-sum merging."""

    name = "dstc"

    #: Peak MAC occupancy of the intersection/merging pipeline.
    peak_utilization = 0.72
    #: Output positions needed to keep the outer-product lanes fully fed; with
    #: fewer positions (late 1x1 layers) the lanes starve and data movement /
    #: merging dominates, which is the degradation the DSTC paper itself reports.
    reuse_saturation_positions = 1024
    #: Coordinate metadata per stored weight value (bytes).
    weight_coordinate_bytes = 0.5
    #: Each output element's partial sums are written/merged this many times
    #: on average (outer-product dataflow), 2 bytes per touch.
    psum_merge_factor = 6.0
    #: The coordinate-decode front-end scans a bounded number of operand pairs
    #: per cycle, capping how much of the dual-side sparsity can be converted
    #: into fewer cycles (DSTC's reported gains saturate around this factor).
    max_compute_reduction = 8.0

    def _utilization(self, workload: LayerWorkload) -> float:
        reuse = min(1.0, workload.output_positions / self.reuse_saturation_positions)
        return max(0.1, self.peak_utilization * reuse**0.35)

    def _demand(self, workload: LayerWorkload) -> _ResourceDemand:
        weight_density = workload.weight_density
        act_density = workload.activation_density

        compute_reduction = min(
            self.max_compute_reduction, 1.0 / (weight_density * act_density)
        )
        macs = workload.dense_macs / compute_reduction

        weight_values = workload.out_channels * workload.reduction * weight_density
        weight_bytes = weight_values * workload.weight_bits / 8.0
        weight_meta = weight_values * self.weight_coordinate_bytes

        # Activations travel compressed with a per-element bitmap (1 bit/element).
        act_bytes = workload.input_bytes * act_density
        act_bitmap = workload.input_bytes / 8.0

        output_bytes = workload.output_bytes
        # Partial-sum traffic through SMEM: outputs are touched several times
        # during sparse merging, each touch moving a 2-byte partial sum.
        psum_bytes = output_bytes * self.psum_merge_factor * 2.0

        smem_bytes = weight_bytes + weight_meta + act_bytes + act_bitmap + psum_bytes
        dram_bytes = (
            weight_bytes
            + weight_meta
            + self._activation_dram_bytes(workload, input_scale=act_density)
        )
        rf_bytes = 2.0 * macs
        metadata_decodes = weight_values + workload.input_bytes * act_density

        return _ResourceDemand(
            macs=macs,
            utilization=self._utilization(workload),
            smem_bytes=smem_bytes,
            dram_bytes=dram_bytes,
            rf_bytes=rf_bytes,
            metadata_decodes=metadata_decodes,
        )
