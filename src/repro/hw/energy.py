"""Component energy model (CACTI-style per-access energies).

The paper reports energy via the CACTI plugin of Sparseloop; absolute joules
depend on the technology node, so we use representative 45 nm-class per-access
energies (in picojoules) for the same component hierarchy the CRISP-STC
design describes: DRAM, a 256 KB shared memory (SMEM), per-core register
files and the MAC array.  All comparisons in the benchmark harness are
*relative* (energy-efficiency ratios), so the qualitative conclusions do not
depend on the exact constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["EnergyModel", "EnergyBreakdown", "DEFAULT_ENERGY_MODEL"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy costs in picojoules.

    Attributes
    ----------
    mac_pj:
        One 8-bit multiply-accumulate.
    rf_access_pj:
        One byte read/written from a per-core register file.
    smem_access_pj:
        One byte read/written from the shared memory (SMEM).
    dram_access_pj:
        One byte moved to/from off-chip DRAM.
    mux_select_pj:
        One N:M multiplexer selection (the activation-select stage of
        CRISP-STC / NVIDIA-STC).
    metadata_decode_pj:
        Decoding one metadata index (block index or intra-group offset).
    leakage_pj_per_cycle:
        Static energy per cycle for the whole accelerator.
    """

    mac_pj: float = 0.56
    rf_access_pj: float = 0.12
    smem_access_pj: float = 1.8
    dram_access_pj: float = 64.0
    mux_select_pj: float = 0.03
    metadata_decode_pj: float = 0.05
    leakage_pj_per_cycle: float = 2.0

    def scaled(self, factor: float) -> "EnergyModel":
        """Uniformly scale all dynamic energies (e.g. for a different node)."""
        return EnergyModel(
            mac_pj=self.mac_pj * factor,
            rf_access_pj=self.rf_access_pj * factor,
            smem_access_pj=self.smem_access_pj * factor,
            dram_access_pj=self.dram_access_pj * factor,
            mux_select_pj=self.mux_select_pj * factor,
            metadata_decode_pj=self.metadata_decode_pj * factor,
            leakage_pj_per_cycle=self.leakage_pj_per_cycle * factor,
        )


@dataclass
class EnergyBreakdown:
    """Energy (picojoules) attributed to each component for one layer."""

    mac_pj: float = 0.0
    rf_pj: float = 0.0
    smem_pj: float = 0.0
    dram_pj: float = 0.0
    mux_pj: float = 0.0
    metadata_pj: float = 0.0
    leakage_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.mac_pj
            + self.rf_pj
            + self.smem_pj
            + self.dram_pj
            + self.mux_pj
            + self.metadata_pj
            + self.leakage_pj
        )

    @property
    def total_uj(self) -> float:
        """Total energy in microjoules (the unit Fig. 8 reports)."""
        return self.total_pj * 1e-6

    def as_dict(self) -> Dict[str, float]:
        return {
            "mac_pj": self.mac_pj,
            "rf_pj": self.rf_pj,
            "smem_pj": self.smem_pj,
            "dram_pj": self.dram_pj,
            "mux_pj": self.mux_pj,
            "metadata_pj": self.metadata_pj,
            "leakage_pj": self.leakage_pj,
            "total_pj": self.total_pj,
        }

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            mac_pj=self.mac_pj + other.mac_pj,
            rf_pj=self.rf_pj + other.rf_pj,
            smem_pj=self.smem_pj + other.smem_pj,
            dram_pj=self.dram_pj + other.dram_pj,
            mux_pj=self.mux_pj + other.mux_pj,
            metadata_pj=self.metadata_pj + other.metadata_pj,
            leakage_pj=self.leakage_pj + other.leakage_pj,
        )


#: Default energy constants used by every accelerator model.
DEFAULT_ENERGY_MODEL = EnergyModel()
