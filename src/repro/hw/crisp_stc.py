"""CRISP-STC: the paper's accelerator, extending a sparse tensor core with
hybrid-sparsity support.

The datapath (Fig. 6 of the paper) processes a layer in three steps:

1. **Block skipping** — block indices (Blocked-Ellpack metadata) identify the
   retained weight blocks; only the activation rows belonging to retained
   blocks are loaded into SMEM, so activation traffic scales with the block
   keep ratio.
2. **N:M selection** — inside each retained block, 2-bit offsets drive the
   activation-select multiplexers so each MAC receives exactly the activation
   its non-zero weight needs; the uniform blocks-per-row constraint keeps all
   lanes busy (high utilisation, unlike NVIDIA-STC).
3. **MAC + accumulate** — only the ``keep_ratio * N/M`` fraction of the dense
   MACs is executed.

Smaller blocks pay a per-block control/setup overhead more often, which is
why block size 64 wins in Fig. 8; the model charges a fixed number of setup
cycles per (retained block x output tile).
"""

from __future__ import annotations

from .accelerator import Accelerator, _ResourceDemand
from .workload import LayerWorkload

__all__ = ["CrispSTC"]


class CrispSTC(Accelerator):
    """The CRISP-STC accelerator model.

    Parameters
    ----------
    block_size:
        Coarse block size ``B`` the accelerator is configured for (16-64).
    """

    name = "crisp-stc"

    #: Uniform blocks-per-row keeps every lane fed.
    base_utilization = 0.95
    #: Cycles spent decoding indices and setting up gather per retained block
    #: per output tile.
    block_setup_cycles = 2.0
    #: Output tile width processed per block pass (activations re-used inside).
    output_tile = 64

    def __init__(self, block_size: int = 64, **kwargs) -> None:
        super().__init__(**kwargs)
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.name = f"crisp-stc-b{block_size}"

    def _nm_efficiency(self, workload: LayerWorkload) -> float:
        """Selection-pipeline efficiency: denser N:M patterns stress the operand
        gather network and register-file ports slightly more."""
        return max(0.6, 1.0 - 0.12 * (workload.n - 1))

    def _demand(self, workload: LayerWorkload) -> _ResourceDemand:
        keep = workload.block_keep_ratio
        nm_density = workload.n / workload.m
        macs = workload.dense_macs * keep * nm_density

        utilization = self.base_utilization * self._nm_efficiency(workload)

        # Per-block setup overhead: retained blocks x output tiles.
        blocks_total = max(
            1.0,
            (workload.reduction / self.block_size) * (workload.out_channels / self.block_size),
        )
        retained_blocks = blocks_total * keep
        output_tiles = max(1.0, workload.output_positions / self.output_tile)
        extra_cycles = retained_blocks * output_tiles * self.block_setup_cycles

        # Weight storage: CRISP format — only the N:M survivors of retained
        # blocks, plus 2-bit offsets and per-block column indices.
        weight_values = workload.out_channels * workload.reduction * keep * nm_density
        weight_bytes = weight_values * workload.weight_bits / 8.0
        offset_bits = 2.0  # ceil(log2(M)) with M=4
        metadata_bytes = weight_values * offset_bits / 8.0 + retained_blocks * 1.0

        # Activations: only rows belonging to retained blocks are gathered from SMEM.
        input_bytes = workload.input_bytes * keep
        output_bytes = workload.output_bytes

        smem_bytes = weight_bytes + metadata_bytes + input_bytes + output_bytes
        dram_bytes = weight_bytes + metadata_bytes + self._activation_dram_bytes(workload)
        rf_bytes = 2.0 * macs
        mux_selects = macs
        metadata_decodes = weight_values + retained_blocks

        return _ResourceDemand(
            macs=macs,
            utilization=utilization,
            smem_bytes=smem_bytes,
            dram_bytes=dram_bytes,
            rf_bytes=rf_bytes,
            mux_selects=mux_selects,
            metadata_decodes=metadata_decodes,
            extra_cycles=extra_cycles,
        )
