"""Hardware substrate: analytical latency/energy models of sparse accelerators.

Replaces the paper's Sparseloop + CACTI evaluation flow with an analytical
roofline/energy model of the same accelerator line-up (dense, NVIDIA-STC,
DSTC and CRISP-STC); see DESIGN.md for the substitution rationale.
"""

from .energy import DEFAULT_ENERGY_MODEL, EnergyBreakdown, EnergyModel
from .workload import (
    LayerWorkload,
    resnet50_reference_layers,
    workloads_from_engine,
    workloads_from_model,
    workloads_from_service,
)
from .accelerator import Accelerator, AcceleratorSpec, EDGE_SPEC, LayerPerformance
from .dense import DenseAccelerator
from .nvidia_stc import NvidiaSTC
from .dstc import DualSideSTC
from .crisp_stc import CrispSTC
from .report import (
    ComparisonReport,
    LayerComparison,
    compare_accelerators,
    default_accelerators,
)

__all__ = [
    "DEFAULT_ENERGY_MODEL",
    "EnergyBreakdown",
    "EnergyModel",
    "LayerWorkload",
    "resnet50_reference_layers",
    "workloads_from_engine",
    "workloads_from_model",
    "workloads_from_service",
    "Accelerator",
    "AcceleratorSpec",
    "EDGE_SPEC",
    "LayerPerformance",
    "DenseAccelerator",
    "NvidiaSTC",
    "DualSideSTC",
    "CrispSTC",
    "ComparisonReport",
    "LayerComparison",
    "compare_accelerators",
    "default_accelerators",
]
