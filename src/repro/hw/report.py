"""Comparison reports across accelerators (the Fig. 8 harness primitive)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .accelerator import Accelerator, LayerPerformance
from .crisp_stc import CrispSTC
from .dense import DenseAccelerator
from .dstc import DualSideSTC
from .nvidia_stc import NvidiaSTC
from .workload import LayerWorkload

__all__ = ["LayerComparison", "ComparisonReport", "compare_accelerators", "default_accelerators"]


def default_accelerators(block_sizes: Sequence[int] = (16, 32, 64)) -> List[Accelerator]:
    """The accelerator line-up evaluated by the paper: dense, NVIDIA-STC, DSTC
    and CRISP-STC at several block sizes."""
    accelerators: List[Accelerator] = [DenseAccelerator(), NvidiaSTC(), DualSideSTC()]
    accelerators.extend(CrispSTC(block_size=b) for b in block_sizes)
    return accelerators


@dataclass
class LayerComparison:
    """Per-layer results across accelerators, with ratios vs. the dense baseline."""

    layer: str
    performance: Dict[str, LayerPerformance] = field(default_factory=dict)

    def speedup(self, accelerator: str, baseline: str = "dense") -> float:
        """Latency of ``baseline`` divided by latency of ``accelerator``."""
        return self.performance[baseline].cycles / self.performance[accelerator].cycles

    def energy_efficiency(self, accelerator: str, baseline: str = "dense") -> float:
        """Energy of ``baseline`` divided by energy of ``accelerator``."""
        return self.performance[baseline].energy_uj / self.performance[accelerator].energy_uj


@dataclass
class ComparisonReport:
    """Network-level comparison: one :class:`LayerComparison` per layer."""

    layers: List[LayerComparison] = field(default_factory=list)

    @property
    def accelerator_names(self) -> List[str]:
        return list(self.layers[0].performance) if self.layers else []

    def total_cycles(self, accelerator: str) -> float:
        return sum(layer.performance[accelerator].cycles for layer in self.layers)

    def total_energy_uj(self, accelerator: str) -> float:
        return sum(layer.performance[accelerator].energy_uj for layer in self.layers)

    def overall_speedup(self, accelerator: str, baseline: str = "dense") -> float:
        return self.total_cycles(baseline) / self.total_cycles(accelerator)

    def overall_energy_efficiency(self, accelerator: str, baseline: str = "dense") -> float:
        return self.total_energy_uj(baseline) / self.total_energy_uj(accelerator)

    def layer_speedups(self, accelerator: str, baseline: str = "dense") -> Dict[str, float]:
        return {layer.layer: layer.speedup(accelerator, baseline) for layer in self.layers}

    def layer_energy_efficiencies(
        self, accelerator: str, baseline: str = "dense"
    ) -> Dict[str, float]:
        return {
            layer.layer: layer.energy_efficiency(accelerator, baseline) for layer in self.layers
        }

    def rows(self, baseline: str = "dense") -> List[Dict[str, float]]:
        """Flat rows (one per layer x accelerator) suitable for tabular printing."""
        table: List[Dict[str, float]] = []
        for layer in self.layers:
            for name, perf in layer.performance.items():
                table.append(
                    {
                        "layer": layer.layer,
                        "accelerator": name,
                        "cycles": perf.cycles,
                        "energy_uj": perf.energy_uj,
                        "speedup_vs_dense": layer.speedup(name, baseline),
                        "energy_eff_vs_dense": layer.energy_efficiency(name, baseline),
                        "bound": perf.bound,
                    }
                )
        return table


def compare_accelerators(
    workloads: Sequence[LayerWorkload],
    accelerators: Optional[Sequence[Accelerator]] = None,
) -> ComparisonReport:
    """Run every accelerator model over every layer workload."""
    accelerators = list(accelerators) if accelerators is not None else default_accelerators()
    report = ComparisonReport()
    for workload in workloads:
        comparison = LayerComparison(layer=workload.name)
        for accelerator in accelerators:
            comparison.performance[accelerator.name] = accelerator.estimate(workload)
        report.layers.append(comparison)
    return report
