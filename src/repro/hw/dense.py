"""Dense accelerator baseline: no sparsity support at all.

Every MAC of the GEMM is executed, every weight and activation byte is
moved.  All speedup and energy-efficiency figures in the benchmark harness
are reported relative to this baseline, as in Fig. 8.
"""

from __future__ import annotations

from .accelerator import Accelerator, _ResourceDemand
from .workload import LayerWorkload

__all__ = ["DenseAccelerator"]


class DenseAccelerator(Accelerator):
    """A dense systolic/SIMD accelerator with the shared edge configuration."""

    name = "dense"

    #: Dense GEMMs map very well onto the MAC array; small residual losses
    #: come from edge tiling effects.
    utilization = 0.95

    def _demand(self, workload: LayerWorkload) -> _ResourceDemand:
        macs = float(workload.dense_macs)
        weight_bytes = workload.dense_weight_bytes

        # On-chip traffic sees the full im2col stream; off-chip traffic sees the
        # raw feature map (plus the weights, which always stream from DRAM).
        smem_bytes = weight_bytes + workload.input_bytes + workload.output_bytes
        dram_bytes = weight_bytes + self._activation_dram_bytes(workload)
        # Each MAC reads two operands from the register file (1 byte each at int8).
        rf_bytes = 2.0 * macs

        return _ResourceDemand(
            macs=macs,
            utilization=self.utilization,
            smem_bytes=smem_bytes,
            dram_bytes=dram_bytes,
            rf_bytes=rf_bytes,
        )
