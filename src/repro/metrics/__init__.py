"""The continuous metrics plane: time series, exposition, events, alerts.

Four pieces, composing into one observability loop over any serving facade:

* :class:`MetricsRegistry` — labeled counters/gauges backed by bounded
  ring-buffer :class:`TimeSeries` (seeded, byte-stable artifacts);
* :class:`TelemetryPoller` — samples the unified stats schema from any
  ``.stats()`` source on a fixed interval (or scrape-driven), via the shared
  :func:`record_sample` mapping;
* :class:`EventLog` + :func:`emit` — the structured JSONL lifecycle log
  (shard add/kill/drain, cache evict/poison, admission rejections, retries,
  alerts), off by default exactly like :mod:`repro.trace`;
* :class:`SLOMonitor` — declarative :class:`AlertRule` evaluation with a
  firing/resolved state machine, publishing typed :class:`Alert` events.

Exposed over the wire as ``GET /metrics`` (Prometheus text, see
:mod:`repro.metrics.exposition`) and ``GET /statsz`` on the gateway HTTP
server, and over the CLI as ``repro.experiments monitor`` and
``loadgen --monitor``.
"""

from .events import (
    EVENT_KINDS,
    Event,
    EventLog,
    emit,
    event_log,
    get_event_log,
    set_event_log,
)
from .exposition import CONTENT_TYPE, MetricFamily, parse_text, render_families
from .poller import TelemetryPoller, record_sample
from .registry import Counter, Gauge, Metric, MetricsRegistry, TimeSeries
from .slo import (
    Alert,
    AlertRule,
    SLOMonitor,
    accuracy_drop,
    default_rules,
    p99_over,
    queue_depth_sustained,
    rejection_burn_rate,
)

__all__ = [
    "MetricsRegistry",
    "Metric",
    "Counter",
    "Gauge",
    "TimeSeries",
    "TelemetryPoller",
    "record_sample",
    "CONTENT_TYPE",
    "MetricFamily",
    "parse_text",
    "render_families",
    "Event",
    "EventLog",
    "EVENT_KINDS",
    "emit",
    "event_log",
    "set_event_log",
    "get_event_log",
    "Alert",
    "AlertRule",
    "SLOMonitor",
    "p99_over",
    "rejection_burn_rate",
    "queue_depth_sustained",
    "accuracy_drop",
    "default_rules",
]
