"""Structured lifecycle event log: one JSON line per thing that happened.

Where metrics answer "how much" and traces answer "where did the time go",
the event log answers "what happened, in order": shard added / killed /
drained, cache entry evicted / poisoned, admission rejections, gateway
retries, alerts firing and resolving.  Producers call the module-level
:func:`emit` at their seams; like :mod:`repro.trace`, the default state is
*off* — ``emit`` is a near-free no-op until a log is installed with
:func:`set_event_log` — so the serving hot paths pay nothing when nobody is
watching.

An :class:`EventLog` is a thread-safe bounded ring plus an optional JSONL
file sink (one ``json.dumps`` per line, append-only, flushed per event so a
crashed run keeps its history).  Subscribers get every event synchronously;
the :class:`~repro.metrics.slo.SLOMonitor` publishes its alerts through the
same channel, so "tail the event log" is the one debugging story.

Events are per-process: process-mode shard children run with no log
installed and their seam emissions no-op; the parent still observes the
cluster-level lifecycle (add/kill/drain, admission, frontend failures).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

__all__ = [
    "Event",
    "EventLog",
    "EVENT_KINDS",
    "emit",
    "set_event_log",
    "get_event_log",
    "event_log",
]

#: The lifecycle vocabulary.  ``emit`` accepts only these, so a typo in a
#: producer fails its own test instead of silently creating a new kind.
EVENT_KINDS = (
    "shard_add",
    "shard_kill",
    "shard_drain",
    "shard_down",
    "cache_evict",
    "cache_poison",
    "admission_reject",
    "retry",
    "fault",
    "alert",
    "autoscale",   # one Autoscaler decision (scale_out/scale_in/suppress/clamp)
    "spillover",   # a federated request served off its home cluster
    "lifecycle",   # one LifecycleManager state transition (SERVING/DRIFTING/...)
    "rollout",     # rollout table change: split started / promoted / rolled back
)


@dataclass(frozen=True)
class Event:
    """One immutable lifecycle event: timestamp, kind, free-form fields."""

    ts: float
    kind: str
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"ts": self.ts, "kind": self.kind, **self.fields}

    def to_json(self) -> str:
        """One JSONL line (sorted keys, so identical events render identically)."""
        return json.dumps(self.to_dict(), sort_keys=True)


class EventLog:
    """Bounded in-memory event ring with optional JSONL sink + subscribers."""

    def __init__(
        self,
        capacity: int = 4096,
        path: Optional[str] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.clock = clock
        self._lock = threading.Lock()
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._subscribers: List[Callable[[Event], None]] = []
        self._sink = open(path, "a") if path is not None else None
        self.emitted = 0

    def emit(self, kind: str, ts: Optional[float] = None, **fields: object) -> Event:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; known: {EVENT_KINDS}")
        event = Event(ts=self.clock() if ts is None else float(ts), kind=kind,
                      fields=fields)
        with self._lock:
            self._events.append(event)
            self.emitted += 1
            subscribers = list(self._subscribers)
            if self._sink is not None:
                self._sink.write(event.to_json() + "\n")
                self._sink.flush()
        for subscriber in subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Register a synchronous observer of every future event."""
        with self._lock:
            self._subscribers.append(callback)

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """The resident events (oldest first), optionally filtered by kind."""
        with self._lock:
            resident = list(self._events)
        if kind is None:
            return resident
        return [e for e in resident if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Resident events per kind (sorted), for dashboards and summaries."""
        out: Dict[str, int] = {}
        for event in self.events():
            out[event.kind] = out.get(event.kind, 0) + 1
        return dict(sorted(out.items()))

    def dump_jsonl(self, path: str) -> int:
        """Write the resident ring to ``path`` as JSONL; returns line count."""
        resident = self.events()
        with open(path, "w") as fh:
            for event in resident:
                fh.write(event.to_json() + "\n")
        return len(resident)

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# -- the module-level producer seam (mirrors repro.trace's off switch) --------
_LOG: Optional[EventLog] = None


def set_event_log(log: Optional[EventLog]) -> Optional[EventLog]:
    """Install (or with ``None`` remove) the process-wide log; returns the old."""
    global _LOG
    previous = _LOG
    _LOG = log
    return previous


def get_event_log() -> Optional[EventLog]:
    return _LOG


def emit(kind: str, **fields: object) -> Optional[Event]:
    """Emit into the installed log, or no-op (cheaply) when none is installed.

    This is the call sprinkled through the serving seams, so the disabled
    path is one global read and a return.
    """
    log = _LOG
    if log is None:
        return None
    return log.emit(kind, **fields)


class event_log:
    """Context manager installing ``log`` for a scope, restoring the previous.

    >>> with event_log(EventLog()) as log:
    ...     cluster.add_shard()
    ...     assert log.events("shard_add")
    """

    def __init__(self, log: Optional[EventLog] = None) -> None:
        self.log = log if log is not None else EventLog()
        self._previous: Optional[EventLog] = None

    def __enter__(self) -> EventLog:
        self._previous = set_event_log(self.log)
        return self.log

    def __exit__(self, exc_type, exc, tb) -> None:
        set_event_log(self._previous)
