"""TelemetryPoller: the unified stats schema sampled into time series.

One poller watches one stats source — anything with a ``.stats()`` returning
the unified schema (``PersonalizationService``, ``ClusterService``, a
``ServingAPI`` backend, a ``Gateway``) — and folds each snapshot into a
:class:`~repro.metrics.registry.MetricsRegistry` via :func:`record_sample`,
the one mapping shared by the background thread, the scrape-driven
``GET /metrics`` route, and the ``monitor --url`` remote-scrape mode.

Two driving modes:

* **background** — :meth:`start` samples every ``interval_s`` from a daemon
  thread until :meth:`stop` (which takes one final sample, so short runs
  always capture their tail window);
* **manual** — call :meth:`sample` yourself, optionally with an explicit
  ``now``, which is what deterministic tests and the scrape route do.

When a :class:`~repro.metrics.slo.SLOMonitor` is attached, every sample is
followed by a rule-evaluation pass, so alert latency equals poll latency.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from .registry import MetricsRegistry
from .slo import SLOMonitor

__all__ = ["TelemetryPoller", "record_sample"]


def _num(block: Dict[str, object], key: str, default: float = 0.0) -> float:
    value = block.get(key, default)
    return float(value) if isinstance(value, (int, float)) else default


def record_sample(
    registry: MetricsRegistry, stats: Dict[str, object], now: float
) -> None:
    """Fold one unified-schema stats snapshot into the registry at time ``now``.

    The mapping (all under the registry namespace, default ``repro_``):

    ======================================  =======  ==========================
    metric                                  kind     source
    ======================================  =======  ==========================
    ``requests_total``                      counter  ``latency.count``
    ``errors_total{kind}``                  counter  ``errors.failed/.rejected``
    ``cache_{hits,misses,evictions}_total`` counter  ``cache.*``
    ``latency_ms{quantile}``                gauge    ``latency.p50/p95/p99_ms``
    ``latency_mean_ms`` / ``latency_max_ms``  gauge  ``latency.mean_ms/max_ms``
    ``queue_pending`` / ``queue_max_depth``  gauge   ``queue.*``
    ``cache_hit_rate``                      gauge    ``cache.hit_rate``
    ``shards``                              gauge    ``shards`` (cluster only)
    ``shard_queue_pending{shard}``          gauge    ``per_shard[].pending``
    ``shard_completed_total{shard}``        counter  ``per_shard[].telemetry``
    ``tenant_accuracy{tenant}``             gauge    ``tenants[].accuracy``
    ``tenant_staleness_s{tenant}``          gauge    ``tenants[].staleness_s``
    ``error_burn_rate``                     gauge    derived (per interval)
    ======================================  =======  ==========================

    ``error_burn_rate`` is the derived signal the rejection-burn-rate alert
    rule watches: the fraction of *this interval's* request outcomes that
    were bad, ``(Δfailed + Δrejected) / (Δcompleted + Δfailed + Δrejected)``
    — the deltas the counter clamp just applied, so a long-healthy history
    cannot dilute a fresh outage.
    """
    latency = stats.get("latency") or {}
    cache = stats.get("cache") or {}
    queue = stats.get("queue") or {}
    errors = stats.get("errors") or {}

    d_completed = registry.counter(
        "requests_total", "Completed requests observed via latency.count"
    ).observe_total(_num(latency, "count"), t=now)
    errors_total = registry.counter(
        "errors_total", "Failed and rejected requests, by kind"
    )
    d_failed = errors_total.observe_total(_num(errors, "failed"), t=now, kind="failed")
    d_rejected = errors_total.observe_total(
        _num(errors, "rejected"), t=now, kind="rejected"
    )

    registry.counter("cache_hits_total", "Engine cache hits").observe_total(
        _num(cache, "hits"), t=now
    )
    registry.counter("cache_misses_total", "Engine cache misses").observe_total(
        _num(cache, "misses"), t=now
    )
    registry.counter("cache_evictions_total", "Engine cache evictions").observe_total(
        _num(cache, "evictions"), t=now
    )

    quantiles = registry.gauge(
        "latency_ms", "Latency percentiles from the facade reservoir"
    )
    for quantile in ("p50", "p95", "p99"):
        key = f"{quantile}_ms"
        if key in latency:
            quantiles.set(_num(latency, key), t=now, quantile=quantile)
    registry.gauge("latency_mean_ms", "Mean request latency").set(
        _num(latency, "mean_ms"), t=now
    )
    registry.gauge("latency_max_ms", "Max request latency").set(
        _num(latency, "max_ms"), t=now
    )
    registry.gauge("queue_pending", "Requests queued across the fleet").set(
        _num(queue, "pending"), t=now
    )
    registry.gauge("queue_max_depth", "High-water queue depth seen").set(
        _num(queue, "max_depth"), t=now
    )
    registry.gauge("cache_hit_rate", "Engine cache hit rate").set(
        _num(cache, "hit_rate"), t=now
    )

    if "shards" in stats:
        registry.gauge("shards", "Live shard count").set(
            float(stats["shards"]), t=now
        )
    shard_pending = None
    shard_completed = None
    for shard in stats.get("per_shard") or []:
        if not isinstance(shard, dict):
            continue
        shard_id = str(shard.get("shard"))
        if shard_pending is None:
            shard_pending = registry.gauge(
                "shard_queue_pending", "Queued requests on one shard"
            )
            shard_completed = registry.counter(
                "shard_completed_total", "Requests completed by one shard"
            )
        shard_pending.set(_num(shard, "pending"), t=now, shard=shard_id)
        telemetry = shard.get("telemetry") or {}
        shard_completed.observe_total(
            _num(telemetry, "completed"), t=now, shard=shard_id
        )

    # Optional per-tenant lifecycle block (served-head accuracy/staleness):
    # stats sources without it pay nothing, sources with it get the labelled
    # gauges the accuracy-drop rule and the DriftDetector watch.
    tenant_accuracy = None
    tenant_staleness = None
    for row in stats.get("tenants") or []:
        if not isinstance(row, dict) or "tenant" not in row:
            continue
        tenant = str(row.get("tenant"))
        if tenant_accuracy is None:
            tenant_accuracy = registry.gauge(
                "tenant_accuracy",
                "Served-head accuracy over the tenant's recent window",
            )
            tenant_staleness = registry.gauge(
                "tenant_staleness_s",
                "Seconds since the tenant's active version was personalized",
            )
        tenant_accuracy.set(_num(row, "accuracy"), t=now, tenant=tenant)
        tenant_staleness.set(_num(row, "staleness_s"), t=now, tenant=tenant)

    interval_total = d_completed + d_failed + d_rejected
    burn = (d_failed + d_rejected) / interval_total if interval_total else 0.0
    registry.gauge(
        "error_burn_rate",
        "Fraction of this interval's outcomes that failed or were rejected",
    ).set(burn, t=now)


class TelemetryPoller:
    """Samples one stats source into a registry on a fixed interval."""

    def __init__(
        self,
        target,
        registry: Optional[MetricsRegistry] = None,
        interval_s: float = 0.25,
        monitor: Optional[SLOMonitor] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not hasattr(target, "stats"):
            raise TypeError(
                f"poller target {type(target).__name__} has no stats() method"
            )
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.target = target
        self.registry = registry if registry is not None else MetricsRegistry()
        self.interval_s = float(interval_s)
        self.monitor = monitor
        self.clock = clock
        self.samples = 0
        self.poll_errors = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._sample_lock = threading.Lock()
        self._subscribers: list = []

    def subscribe(self, callback) -> None:
        """Observe every sample as ``callback(stats, t)`` after rule evaluation.

        This is the seam a control loop consumes: the
        :class:`~repro.autoscale.Autoscaler` subscribes its ``observe`` here
        so every poll becomes one controller tick.  Callbacks run outside the
        sample lock (they may take arbitrarily long — a scale-in drains a
        shard) and a callback failure is counted in ``poll_errors`` instead
        of killing the poll loop.
        """
        self._subscribers.append(callback)

    def sample(self, now: Optional[float] = None) -> Optional[Dict[str, object]]:
        """Take one sample (and evaluate alert rules); returns the raw stats.

        A stats() failure — e.g. racing a shard teardown — is counted in
        ``poll_errors`` and returns ``None`` instead of killing the poll
        loop: observability must survive exactly the conditions it exists
        to observe.
        """
        t = self.clock() if now is None else float(now)
        try:
            stats = self.target.stats()
        except Exception:
            self.poll_errors += 1
            return None
        with self._sample_lock:
            record_sample(self.registry, stats, t)
            self.samples += 1
            if self.monitor is not None:
                self.monitor.evaluate(now=t)
        for callback in list(self._subscribers):
            try:
                callback(stats, t)
            except Exception:
                self.poll_errors += 1
        return stats

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "TelemetryPoller":
        """Sample every ``interval_s`` from a daemon thread (idempotent).

        Takes one priming sample synchronously before the thread launches:
        it sets every counter's raw baseline at attach time, so the *next*
        sample's deltas (and the burn-rate gauge derived from them) are
        honest even when the whole run fits inside one poll interval.
        """
        if self._thread is None:
            self.sample()
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-telemetry-poller", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def stop(self, final_sample: bool = True) -> None:
        """Stop the thread; by default take one last sample on the way out.

        The final sample is what lets short deterministic runs — shorter
        than one poll interval — still land their whole story in the series
        (and gives the SLO monitor one guaranteed post-run evaluation).
        """
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_sample:
            self.sample()

    def exposition(self, sample: bool = False) -> str:
        """The registry as Prometheus text; optionally sample first.

        ``sample=True`` is the scrape-driven mode ``GET /metrics`` uses when
        no background poller is attached: each scrape is a sample, exactly
        how Prometheus expects a target to behave.  This is also the
        loopback equivalent of the HTTP route — same bytes, no socket.
        """
        if sample:
            self.sample()
        return self.registry.render()

    def __enter__(self) -> "TelemetryPoller":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
