"""Prometheus text exposition: canonical rendering and a round-trip parser.

The render side is deliberately canonical — metrics sorted by name, series
sorted by label set, one float formatter, no timestamps — so the output of a
seeded deterministic run is *byte-stable*, the same contract every other
artifact in this repo honours.  The parse side exists so the contract is
testable: ``render_families(parse(text)) == text`` is the round-trip
invariant CI asserts, and the ``monitor --url`` scrape path reuses the
parser against live gateways.

Format reference: the Prometheus text exposition format 0.0.4 —
``# HELP`` / ``# TYPE`` comment lines followed by
``name{label="value",...} value`` samples.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "CONTENT_TYPE",
    "MetricFamily",
    "render_registry",
    "render_families",
    "parse_text",
]

#: The scrape content type ``GET /metrics`` answers with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass
class MetricFamily:
    """One parsed metric family: name, kind, help, and its samples."""

    name: str
    kind: str = "untyped"
    help: str = ""
    #: ``(sorted (label, value) pairs, sample value)`` in document order.
    samples: List[Tuple[Tuple[Tuple[str, str], ...], float]] = field(
        default_factory=list
    )


def format_value(value: float) -> str:
    """The one float formatter both render paths share (round-trip stable)."""
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _unescape_help(text: str) -> str:
    return text.replace(r"\n", "\n").replace(r"\\", "\\")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _unescape_label(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _render_sample(
    name: str, labels: Tuple[Tuple[str, str], ...], value: float
) -> str:
    if labels:
        inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
        return f"{name}{{{inner}}} {format_value(value)}"
    return f"{name} {format_value(value)}"


def render_families(families: Dict[str, MetricFamily]) -> str:
    """Canonical text for parsed families (sorted by name, then labels)."""
    lines: List[str] = []
    for name in sorted(families):
        family = families[name]
        if family.help:
            lines.append(f"# HELP {name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {name} {family.kind}")
        for labels, value in sorted(family.samples, key=lambda s: s[0]):
            lines.append(_render_sample(name, labels, value))
    return "\n".join(lines) + "\n" if lines else ""


def render_registry(registry) -> str:
    """Canonical text for a live :class:`~repro.metrics.MetricsRegistry`."""
    families: Dict[str, MetricFamily] = {}
    for metric in registry.metrics():
        family = MetricFamily(metric.name, kind=metric.kind, help=metric.help)
        family.samples = [(labels, value) for labels, value in metric.samples()]
        families[metric.name] = family
    return render_families(families)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)


def parse_text(text: str) -> Dict[str, MetricFamily]:
    """Parse Prometheus text exposition into metric families.

    Raises ``ValueError`` on any malformed line — the round-trip test wants
    a strict reader, not a forgiving one.
    """
    families: Dict[str, MetricFamily] = {}

    def family(name: str) -> MetricFamily:
        found = families.get(name)
        if found is None:
            found = families[name] = MetricFamily(name)
        return found

    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            name, _, help_text = rest.partition(" ")
            family(name).help = _unescape_help(help_text)
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE ") :]
            name, _, kind = rest.partition(" ")
            family(name).kind = kind.strip() or "untyped"
            continue
        if line.startswith("#"):
            continue  # plain comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        raw_labels = match.group("labels")
        labels: Tuple[Tuple[str, str], ...] = ()
        if raw_labels:
            parsed = _LABEL_RE.findall(raw_labels)
            # Strict: re-joining the matches must reproduce the label body.
            rebuilt = ",".join(f'{k}="{v}"' for k, v in parsed)
            if rebuilt != raw_labels:
                raise ValueError(f"line {lineno}: malformed labels {raw_labels!r}")
            labels = tuple(
                sorted((k, _unescape_label(v)) for k, v in parsed)
            )
        family(match.group("name")).samples.append(
            (labels, _parse_value(match.group("value")))
        )
    return families
