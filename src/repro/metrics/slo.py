"""Declarative SLO alert rules evaluated against the metric time series.

An :class:`AlertRule` names a metric (optionally a label subset), a
comparison, a threshold, and a ``for_samples`` hold count: the rule fires
for a series when the condition has held for that many *consecutive* recent
samples — the classic "for:" debounce, in samples rather than wall time so
deterministic tests can drive it tick by tick.

The :class:`SLOMonitor` owns the rule set and a per-(rule, series) firing
state machine.  Each :meth:`evaluate` pass emits typed :class:`Alert`
transitions — ``firing`` on entry, ``resolved`` on exit — into the alert
history, the structured event log (kind ``alert``), and any subscribed
callbacks.  That subscription channel is the seam the ROADMAP's closed-loop
autoscaler will consume: an alert stream, not a dashboard screenshot.

Three rule shapes ship as factories, matching the serving SLOs the loadgen
scenarios exercise:

* :func:`p99_over` — ``latency_ms{quantile="p99"}`` above a threshold;
* :func:`rejection_burn_rate` — ``error_burn_rate`` (the per-interval
  fraction of failed + rejected outcomes) above a ratio;
* :func:`queue_depth_sustained` — ``queue_pending`` at or above a depth;
* :func:`accuracy_drop` — per-tenant ``tenant_accuracy`` below a floor (the
  drift signal :class:`repro.lifecycle.DriftDetector` consumes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .events import EventLog
from .registry import MetricsRegistry

__all__ = [
    "AlertRule",
    "Alert",
    "SLOMonitor",
    "p99_over",
    "rejection_burn_rate",
    "queue_depth_sustained",
    "accuracy_drop",
    "default_rules",
]

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO condition over one metric's series."""

    name: str
    metric: str  #: metric name, without the registry namespace
    op: str  #: one of > >= < <=
    threshold: float
    for_samples: int = 1  #: consecutive samples the condition must hold
    labels: Mapping[str, str] = field(default_factory=dict)  #: series filter
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r}; known: {sorted(_OPS)}")
        if self.for_samples < 1:
            raise ValueError(f"for_samples must be >= 1, got {self.for_samples}")

    def condition(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def matches(self, labels: Tuple[Tuple[str, str], ...]) -> bool:
        """Whether a series' label set satisfies the rule's label filter."""
        series = dict(labels)
        return all(series.get(k) == str(v) for k, v in self.labels.items())

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "for_samples": self.for_samples,
            "labels": dict(self.labels),
            "description": self.description,
        }


@dataclass(frozen=True)
class Alert:
    """One typed alert transition: a rule started or stopped firing."""

    rule: str
    metric: str
    labels: Tuple[Tuple[str, str], ...]
    state: str  #: "firing" | "resolved"
    value: float
    threshold: float
    at: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "labels": {k: v for k, v in self.labels},
            "state": self.state,
            "value": self.value,
            "threshold": self.threshold,
            "at": self.at,
        }


class SLOMonitor:
    """Evaluates alert rules against a registry; emits alert transitions."""

    def __init__(
        self,
        registry: MetricsRegistry,
        rules: Tuple[AlertRule, ...] = (),
        event_log: Optional[EventLog] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.registry = registry
        self.rules: Tuple[AlertRule, ...] = tuple(rules)
        self.event_log = event_log
        self.clock = clock
        self.alerts: List[Alert] = []  #: full transition history, in order
        self._firing: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Alert] = {}
        self._subscribers: List[Callable[[Alert], None]] = []

    def subscribe(self, callback: Callable[[Alert], None]) -> None:
        """Observe every alert transition (the autoscaler-to-be's feed)."""
        self._subscribers.append(callback)

    def _emit(self, alert: Alert) -> None:
        self.alerts.append(alert)
        if self.event_log is not None:
            self.event_log.emit("alert", ts=alert.at, **alert.to_dict())
        for subscriber in self._subscribers:
            subscriber(alert)

    def evaluate(self, now: Optional[float] = None) -> List[Alert]:
        """One rule pass; returns the transitions *this* pass produced."""
        at = self.clock() if now is None else float(now)
        transitions: List[Alert] = []
        for rule in self.rules:
            metric = self.registry.get(rule.metric)
            if metric is None:
                continue
            for labels, ts in metric.all_series():
                if not rule.matches(labels):
                    continue
                window = ts.tail(rule.for_samples)
                holding = len(window) >= rule.for_samples and all(
                    rule.condition(v) for v in window
                )
                key = (rule.name, labels)
                active = self._firing.get(key)
                if holding and active is None:
                    alert = Alert(
                        rule=rule.name,
                        metric=metric.name,
                        labels=labels,
                        state="firing",
                        value=window[-1],
                        threshold=rule.threshold,
                        at=at,
                    )
                    self._firing[key] = alert
                    self._emit(alert)
                    transitions.append(alert)
                elif not holding and active is not None:
                    del self._firing[key]
                    resolved = Alert(
                        rule=rule.name,
                        metric=metric.name,
                        labels=labels,
                        state="resolved",
                        value=window[-1] if window else 0.0,
                        threshold=rule.threshold,
                        at=at,
                    )
                    self._emit(resolved)
                    transitions.append(resolved)
        return transitions

    def active(self) -> List[Alert]:
        """Currently-firing alerts, sorted by (rule, labels)."""
        return [self._firing[key] for key in sorted(self._firing)]

    @property
    def fired(self) -> int:
        """How many times any rule transitioned to firing."""
        return sum(1 for alert in self.alerts if alert.state == "firing")

    def to_dict(self) -> Dict[str, object]:
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "active": [alert.to_dict() for alert in self.active()],
            "history": [alert.to_dict() for alert in self.alerts],
            "fired": self.fired,
        }


# -- rule factories (the alert vocabulary the CLI exposes) --------------------
def p99_over(threshold_ms: float = 250.0, for_samples: int = 2) -> AlertRule:
    """p99 latency above ``threshold_ms`` for ``for_samples`` straight polls."""
    return AlertRule(
        name="p99-over-threshold",
        metric="latency_ms",
        op=">",
        threshold=float(threshold_ms),
        for_samples=for_samples,
        labels={"quantile": "p99"},
        description=f"p99 latency > {threshold_ms:g}ms for {for_samples} samples",
    )


def rejection_burn_rate(max_ratio: float = 0.05, for_samples: int = 1) -> AlertRule:
    """Bad-outcome fraction of an interval above ``max_ratio``.

    Watches ``error_burn_rate`` — failed + rejected over all outcomes,
    per poll interval — so one outage window trips it regardless of how
    much healthy history the counters carry.
    """
    return AlertRule(
        name="rejection-burn-rate",
        metric="error_burn_rate",
        op=">",
        threshold=float(max_ratio),
        for_samples=for_samples,
        description=(
            f"failed+rejected fraction of an interval > {max_ratio:g} "
            f"for {for_samples} sample(s)"
        ),
    )


def queue_depth_sustained(depth: float = 64.0, for_samples: int = 3) -> AlertRule:
    """Fleet-wide pending queue at/above ``depth`` for ``for_samples`` polls."""
    return AlertRule(
        name="queue-depth-sustained",
        metric="queue_pending",
        op=">=",
        threshold=float(depth),
        for_samples=for_samples,
        description=f"pending queue >= {depth:g} for {for_samples} samples",
    )


def accuracy_drop(min_accuracy: float = 0.75, for_samples: int = 2) -> AlertRule:
    """A tenant's served-head accuracy below ``min_accuracy`` for
    ``for_samples`` straight polls.

    ``tenant_accuracy`` is a per-tenant labelled gauge, so each drifting
    tenant fires (and resolves) its own alert; the alert's ``tenant`` label
    tells the lifecycle plane *who* to re-personalize.  Not part of
    :func:`default_rules` — lifecycle-managed runs install it explicitly.
    """
    return AlertRule(
        name="accuracy-drop",
        metric="tenant_accuracy",
        op="<",
        threshold=float(min_accuracy),
        for_samples=for_samples,
        description=(
            f"served-head accuracy < {min_accuracy:g} for {for_samples} samples"
        ),
    )


def default_rules(
    p99_ms: float = 250.0,
    burn_ratio: float = 0.05,
    queue_depth: float = 64.0,
) -> Tuple[AlertRule, ...]:
    """The stock rule set ``loadgen --monitor`` and ``monitor`` install."""
    return (
        p99_over(p99_ms),
        rejection_burn_rate(burn_ratio),
        queue_depth_sustained(queue_depth),
    )
