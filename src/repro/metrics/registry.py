"""Labeled metric registry over ring-buffer time series.

The continuous half of the observability story: where the unified stats
schema answers "what is the state right now", the registry records *how the
system evolves* — every metric is a family of labeled series, every series a
bounded ring buffer of ``(t, value)`` points.  The
:class:`~repro.metrics.poller.TelemetryPoller` feeds it from any
``ServingAPI`` facade; the :class:`~repro.metrics.slo.SLOMonitor` evaluates
alert rules against it; ``GET /metrics`` renders it in Prometheus text
format.

Determinism is a first-class contract here, exactly as elsewhere in the
repo: the clock is injectable, samples recorded with explicit timestamps
produce byte-identical :meth:`MetricsRegistry.render` /
:meth:`MetricsRegistry.to_dict` output across runs, and CI diffs them.

Counters deserve one note: the raw counters in a stats payload are *not*
monotonic cluster-wide — removing a dead shard drops its counts from the
totals.  :meth:`Counter.observe_total` therefore folds raw readings in with
a positive-delta clamp, so the published series never decreases (the
Prometheus counter contract) even while the fleet underneath churns.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "TimeSeries",
    "Metric",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "DEFAULT_WINDOW",
]

#: Ring-buffer capacity per series: enough for ~2 minutes at a 250ms poll.
DEFAULT_WINDOW = 512

#: A canonical label set: sorted ``(key, value)`` pairs, hashable.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


class TimeSeries:
    """A bounded ring buffer of ``(t, value)`` points (oldest dropped first)."""

    __slots__ = ("points",)

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.points: Deque[Tuple[float, float]] = deque(maxlen=window)

    def record(self, t: float, value: float) -> None:
        self.points.append((float(t), float(value)))

    def last(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def tail(self, n: int) -> List[float]:
        """The last ``n`` recorded values (fewer when the series is young)."""
        if n >= len(self.points):
            return self.values()
        return [v for _, v in list(self.points)[-n:]]

    def __len__(self) -> int:
        return len(self.points)


class _Series:
    """One labeled instance of a metric: current value + its history."""

    __slots__ = ("labels", "value", "raw", "ts")

    def __init__(self, labels: LabelKey, window: int) -> None:
        self.labels = labels
        self.value = 0.0
        self.raw: Optional[float] = None  # last raw reading (delta clamp)
        self.ts = TimeSeries(window)


class Metric:
    """A named family of labeled series sharing one help string and kind."""

    kind = "untyped"

    def __init__(self, name: str, help: str, window: int = DEFAULT_WINDOW) -> None:
        self.name = _check_name(name)
        self.help = help
        self.window = window
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, _Series] = {}

    def _get(self, labels: Mapping[str, str]) -> _Series:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series(key, self.window)
        return series

    def series(self, **labels: str) -> Optional[TimeSeries]:
        """The history ring for one label set (``None`` if never recorded)."""
        with self._lock:
            found = self._series.get(_label_key(labels))
            return found.ts if found is not None else None

    def samples(self) -> List[Tuple[LabelKey, float]]:
        """Current ``(labels, value)`` per series, sorted by label set."""
        with self._lock:
            return sorted(
                (series.labels, series.value) for series in self._series.values()
            )

    def all_series(self) -> List[Tuple[LabelKey, TimeSeries]]:
        with self._lock:
            return sorted(
                ((s.labels, s.ts) for s in self._series.values()),
                key=lambda item: item[0],
            )


class Counter(Metric):
    """A monotonically non-decreasing cumulative metric."""

    kind = "counter"

    def inc(self, amount: float = 1.0, t: Optional[float] = None, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            series = self._get(labels)
            series.value += float(amount)
            series.ts.record(self._now(t), series.value)

    def observe_total(
        self, raw: float, t: Optional[float] = None, **labels: str
    ) -> float:
        """Fold one *raw cumulative reading* in; returns the applied delta.

        The clamp: the published value grows by ``max(0, raw - last_raw)``,
        so a raw counter that drops (a dead shard leaving the totals, a
        restarted backend) flattens the series instead of bending it
        backwards.  The very first reading establishes the baseline — its
        delta is 0, which keeps attach-time derived rates (burn rate) from
        spiking on whatever history predates the poller.
        """
        with self._lock:
            series = self._get(labels)
            if series.raw is None:
                delta = 0.0
                series.value = float(raw)
            else:
                delta = max(0.0, float(raw) - series.raw)
                series.value += delta
            series.raw = float(raw)
            series.ts.record(self._now(t), series.value)
            return delta

    @staticmethod
    def _now(t: Optional[float]) -> float:
        return time.time() if t is None else t


class Gauge(Metric):
    """A point-in-time measurement that can go up and down."""

    kind = "gauge"

    def set(self, value: float, t: Optional[float] = None, **labels: str) -> None:
        with self._lock:
            series = self._get(labels)
            series.value = float(value)
            series.ts.record(time.time() if t is None else t, series.value)


class MetricsRegistry:
    """All metrics of one serving deployment, under one namespace.

    ``counter`` / ``gauge`` are get-or-create: asking twice for the same
    name returns the same object (a kind conflict raises), so independent
    samplers can share a registry without coordination.
    """

    def __init__(
        self,
        namespace: str = "repro",
        window: int = DEFAULT_WINDOW,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.namespace = _check_name(namespace) if namespace else ""
        self.window = window
        self.clock = clock
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def qualify(self, name: str) -> str:
        """The fully-qualified (namespaced) metric name."""
        if self.namespace and not name.startswith(self.namespace + "_"):
            return f"{self.namespace}_{name}"
        return name

    def _register(self, cls, name: str, help: str) -> Metric:
        full = self.qualify(name)
        with self._lock:
            metric = self._metrics.get(full)
            if metric is None:
                metric = self._metrics[full] = cls(full, help, window=self.window)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {full!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(self.qualify(name))

    def metrics(self) -> List[Metric]:
        """Every registered metric, sorted by name (the exposition order)."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def metric_names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def series(self, name: str, **labels: str) -> Optional[TimeSeries]:
        metric = self.get(name)
        return metric.series(**labels) if metric is not None else None

    def render(self) -> str:
        """Prometheus text exposition of the current values (byte-stable)."""
        from .exposition import render_registry

        return render_registry(self)

    def to_dict(self) -> Dict[str, object]:
        """The full registry — values *and* ring buffers — as JSON.

        Sorted at every level, so ``json.dumps(..., sort_keys=True)`` of two
        registries fed identical (stats, t) sequences is byte-identical.
        """
        payload: Dict[str, object] = {}
        for metric in self.metrics():
            payload[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "series": [
                    {
                        "labels": {k: v for k, v in labels},
                        "value": ts.last()[1] if len(ts) else 0.0,
                        "points": [[t, v] for t, v in ts.points],
                    }
                    for labels, ts in metric.all_series()
                ],
            }
        return payload

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-series last/min/max/samples — the SLOReport's compact block."""
        out: Dict[str, Dict[str, float]] = {}
        for metric in self.metrics():
            for labels, ts in metric.all_series():
                if not len(ts):
                    continue
                rendered = metric.name
                if labels:
                    inner = ",".join(f'{k}="{v}"' for k, v in labels)
                    rendered = f"{metric.name}{{{inner}}}"
                values = ts.values()
                out[rendered] = {
                    "last": values[-1],
                    "min": min(values),
                    "max": max(values),
                    "samples": len(values),
                }
        return out
