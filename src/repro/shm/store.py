"""Shared-memory weight store: publish once, map zero-copy everywhere.

One :class:`SharedWeightStore` lives in the serving frontend's process and
owns a named :mod:`multiprocessing.shared_memory` segment per published
model.  A segment packs, 64-byte aligned, every array a worker needs to
serve that model:

* the module state dict (parameter data, pruning masks, batch-norm
  buffers) — small, dense, copied into the rebuilt module once per worker;
* the *encoded* compressed formats of every prunable layer (CSR values /
  column indices / row pointers, blocked-ELLPACK block tables, CRISP group
  values + offsets, dense fallbacks) — the hot inference payload, consumed
  in place as read-only ``np.ndarray`` views.

The manifest entry describing a segment is a plain JSON-compatible dict
(segment name + per-array dtype/shape/offset), so it rides the gateway's
wire envelopes between parent and worker; the weights themselves never
touch a pipe or a pickle.

Lifetime: the parent is the single owner.  Workers attach by name (and are
immediately unregistered from the ``resource_tracker`` so a crashing worker
can never reap a segment the fleet still serves from), the store counts
attached workers, and :meth:`SharedWeightStore.close` unlinks every segment
it ever created — including ones already retired by re-publication — which
is what the no-leaked-``/dev/shm`` tests assert.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import InternalError, NotFoundError
from ..sparsity.formats import BlockedEllpackFormat, CRISPFormat, CSRFormat

__all__ = ["SegmentLayout", "SharedWeightStore", "SharedModelSource", "attach_segment"]

#: Alignment of every packed array within a segment.  64 bytes keeps any
#: dtype naturally aligned and arrays cache-line separated.
_ALIGN = 64


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def attach_segment(name: str, untrack: bool = False) -> shared_memory.SharedMemory:
    """Open an existing segment, optionally without tracker registration.

    ``SharedMemory(name=...)`` registers the segment with the process's
    ``resource_tracker`` even for plain attachments.  Whether that matters
    depends on *whose* tracker this process talks to:

    * fork children (and same-process attachments) inherit the creator's
      tracker — the registry is a name *set*, so the attach-register is a
      no-op and must NOT be undone, or the creator loses its crash guard.
    * spawn children run their own tracker — left registered, a worker's
      exit (clean or SIGKILLed) unlinks segments the parent still serves
      from.  Those callers pass ``untrack=True`` (``track=False`` on Python
      3.13+, manual unregister before that).
    """
    if not untrack:
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg; unregister by hand
        segment = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker internals shifted
            pass
        return segment


def _close_segment(segment: shared_memory.SharedMemory) -> None:
    """Close a mapping, tolerating still-exported views.

    ``mmap.close`` refuses while ndarray views are alive (``BufferError``).
    Views die with the process anyway, and closing the mapping is not what
    frees the segment — unlinking is — so a refused close is non-fatal.
    """
    try:
        segment.close()
    except BufferError:
        pass


def _view(segment: shared_memory.SharedMemory, desc: Dict) -> np.ndarray:
    """A read-only ndarray view over one packed array (zero-copy)."""
    arr = np.ndarray(
        tuple(desc["shape"]),
        dtype=np.dtype(str(desc["dtype"])),
        buffer=segment.buf,
        offset=int(desc["offset"]),
        order=str(desc.get("order", "C")),
    )
    arr.flags.writeable = False
    return arr


@dataclass
class SegmentLayout:
    """Accumulates arrays into one contiguous, aligned segment image."""

    arrays: List[Tuple[Dict, np.ndarray]] = field(default_factory=list)
    size: int = 0

    def add(self, array: np.ndarray) -> Dict:
        """Reserve space for ``array``; returns its manifest descriptor.

        Memory order is preserved: the engine's dense fallback is an
        F-contiguous transposed view, and repacking it C-contiguous would
        change BLAS summation order — a 1-ulp drift that breaks the
        bit-exact parity contract between process and threaded serving.
        """
        if array.flags.f_contiguous and not array.flags.c_contiguous:
            order = "F"
            array = np.asfortranarray(array)
        else:
            order = "C"
            array = np.ascontiguousarray(array)
        offset = _align(self.size)
        self.size = offset + array.nbytes
        desc = {
            "offset": offset,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "order": order,
        }
        self.arrays.append((desc, array))
        return desc

    def write_into(self, segment: shared_memory.SharedMemory) -> None:
        """Copy every reserved array to its offset in ``segment``."""
        for desc, array in self.arrays:
            if array.nbytes == 0:
                continue
            target = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=segment.buf,
                offset=desc["offset"],
                order=desc["order"],
            )
            target[...] = array


# ---------------------------------------------------------------------------
# Compressed-format (de)serialization
# ---------------------------------------------------------------------------

def _describe_format(fmt, layout: SegmentLayout) -> Dict:
    """Manifest block for one encoded layer: kind + params + array descriptors."""
    if isinstance(fmt, np.ndarray):  # the engine's dense fallback
        return {"kind": "dense", "params": {}, "arrays": {"matrix": layout.add(fmt)}}
    if isinstance(fmt, CSRFormat):
        return {
            "kind": "csr",
            "params": {"shape": list(fmt.shape), "value_bits": fmt.value_bits},
            "arrays": {
                "values": layout.add(fmt.values),
                "col_indices": layout.add(fmt.col_indices),
                "row_ptr": layout.add(fmt.row_ptr),
            },
        }
    if isinstance(fmt, BlockedEllpackFormat):
        return {
            "kind": "blocked-ellpack",
            "params": {
                "shape": list(fmt.shape),
                "block_size": fmt.block_size,
                "value_bits": fmt.value_bits,
            },
            "arrays": {
                "blocks": layout.add(fmt.blocks),
                "block_cols": layout.add(fmt.block_cols),
                "blocks_per_row": layout.add(fmt.blocks_per_row),
            },
        }
    if isinstance(fmt, CRISPFormat):
        return {
            "kind": "crisp",
            "params": {
                "shape": list(fmt.shape),
                "n": fmt.n,
                "m": fmt.m,
                "block_size": fmt.block_size,
                "is_lossless": bool(fmt.is_lossless),
                "value_bits": fmt.value_bits,
            },
            "arrays": {
                "block_cols": layout.add(fmt.block_cols),
                "blocks_per_row": layout.add(fmt.blocks_per_row),
                "group_values": layout.add(fmt.group_values),
                "group_offsets": layout.add(fmt.group_offsets),
            },
        }
    raise InternalError(f"cannot share unknown weight format {type(fmt).__name__}")


def _rebuild_format(block: Dict, segment: shared_memory.SharedMemory):
    """Reconstruct one encoded layer over shared-buffer views (no copies)."""
    kind = block["kind"]
    params = block["params"]
    arrays = {name: _view(segment, desc) for name, desc in block["arrays"].items()}
    if kind == "dense":
        return arrays["matrix"]
    if kind == "csr":
        return CSRFormat(
            shape=tuple(params["shape"]),
            values=arrays["values"],
            col_indices=arrays["col_indices"],
            row_ptr=arrays["row_ptr"],
            value_bits=int(params["value_bits"]),
        )
    if kind == "blocked-ellpack":
        return BlockedEllpackFormat(
            shape=tuple(params["shape"]),
            block_size=int(params["block_size"]),
            blocks=arrays["blocks"],
            block_cols=arrays["block_cols"],
            blocks_per_row=arrays["blocks_per_row"],
            value_bits=int(params["value_bits"]),
        )
    if kind == "crisp":
        return CRISPFormat(
            shape=tuple(params["shape"]),
            n=int(params["n"]),
            m=int(params["m"]),
            block_size=int(params["block_size"]),
            block_cols=arrays["block_cols"],
            blocks_per_row=arrays["blocks_per_row"],
            group_values=arrays["group_values"],
            group_offsets=arrays["group_offsets"],
            is_lossless=bool(params["is_lossless"]),
            value_bits=int(params["value_bits"]),
        )
    raise InternalError(f"unknown shared format kind {kind!r}")


def _build_engine_from_entry(entry: Dict, segment: shared_memory.SharedMemory):
    """Materialize an attached engine from one installed manifest entry.

    The module (biases, batch-norm buffers, non-prunable layers) is rebuilt
    from the zoo and its state *copied* out of the shared segment — it is
    tiny next to the encoded weights, and modules mutate their buffers in
    eval bookkeeping.  The compressed formats stay views: the arrays the
    backend's sparse matmuls actually stream are the shared bytes.
    """
    from ..backend.engine import Engine
    from ..nn.models import build_model
    from ..serve.types import EngineSpec

    record = entry["record"]
    module = build_model(
        record["arch"],
        num_classes=int(record["num_classes"]),
        input_size=int(record["input_size"]),
        seed=0,
    )
    state = {key: _view(segment, desc) for key, desc in entry["state"].items()}
    module.load_state_dict(state)
    formats = {
        name: _rebuild_format(block, segment)
        for name, block in entry["formats"].items()
    }
    spec = EngineSpec.from_dict(record["spec"])
    return Engine.from_spec(module, spec, attach=True, formats=formats)


# ---------------------------------------------------------------------------
# Parent side: the publisher
# ---------------------------------------------------------------------------

class _Published:
    """Bookkeeping for one live publication of a model."""

    __slots__ = ("entry", "version", "record", "segment")

    def __init__(self, entry, version, record, segment) -> None:
        self.entry = entry
        self.version = version
        self.record = record
        self.segment = segment


class SharedWeightStore:
    """Parent-side publisher of per-model shared-memory weight segments.

    Wraps a :class:`~repro.serve.registry.ModelRegistry` and publishes
    models lazily: :meth:`ensure` is cheap when the registry still holds
    the record a segment was built from, and re-publishes (bumping the
    version and retiring the old segment) when re-personalization replaced
    it.  The store also doubles as an engine source for the *parent*
    process — :meth:`build_engine` maps its own segments exactly the way a
    worker does, so frontend introspection (``ClusterService.engine``)
    reflects the bytes workers serve from.
    """

    def __init__(self, registry, prefix: Optional[str] = None) -> None:
        self.registry = registry
        # Unique per store: two clusters over one registry must not collide.
        self.prefix = prefix or f"repro-shm-{os.getpid()}-{secrets.token_hex(3)}"
        self._published: Dict[str, _Published] = {}
        self._version = 0
        self._refs = 0
        self._closed = False
        #: Names of every segment ever created (leak-test bookkeeping):
        #: name -> whether it has been unlinked.
        self._segments: Dict[str, bool] = {}
        self._local = SharedModelSource()

    # -- publication ----------------------------------------------------------
    def ensure(self, model_id: str) -> Tuple[Dict, int]:
        """Publish ``model_id`` if absent or stale; returns (entry, version).

        Staleness is record identity: re-registering a model id (the
        re-personalization path) installs a new record object in the
        registry, which forces a fresh segment on the next ensure.
        """
        self._ensure_open()
        record = self.registry.get(model_id)
        published = self._published.get(model_id)
        if published is not None and published.record is record:
            return published.entry, published.version
        return self.publish(model_id)

    def publish(self, model_id: str) -> Tuple[Dict, int]:
        """Encode and publish one model into a fresh segment."""
        self._ensure_open()
        record = self.registry.get(model_id)
        engine = record.spec.build(record.build_module(), attach=False)

        layout = SegmentLayout()
        state_desc = {
            key: layout.add(array) for key, array in sorted(record.state.items())
        }
        formats_desc = {
            name: _describe_format(fmt, layout)
            for name, fmt in engine._formats.items()
        }

        self._version += 1
        name = f"{self.prefix}-{self._version}"
        segment = shared_memory.SharedMemory(
            create=True, name=name, size=max(1, layout.size)
        )
        layout.write_into(segment)
        self._segments[name] = False

        entry = {
            "model_id": model_id,
            "segment": name,
            "version": self._version,
            "record": {
                "arch": record.arch,
                "num_classes": record.num_classes,
                "input_size": record.input_size,
                "spec": record.spec.to_dict(),
            },
            "state": state_desc,
            "formats": formats_desc,
        }

        previous = self._published.get(model_id)
        self._published[model_id] = _Published(entry, self._version, record, segment)
        # The parent consumes its own mapping directly — re-attaching by name
        # would double-register the segment with the resource tracker.
        self._local.install(entry, segment=segment)
        if previous is not None:
            # Retire the replaced segment immediately: POSIX keeps existing
            # mappings valid after unlink, so workers mid-batch on the old
            # version finish safely while /dev/shm stays clean.
            self._unlink(previous.segment)
        return entry, self._version

    def build_engine(self, model_id: str):
        """A parent-process engine over this store's own shared segments."""
        self.ensure(model_id)
        return self._local.build_engine(model_id)

    # -- introspection ---------------------------------------------------------
    def model_ids(self) -> List[str]:
        return sorted(self._published)

    def segment_names(self, live_only: bool = True) -> List[str]:
        """Segment-name bookkeeping: live names, or every name ever created."""
        if live_only:
            return sorted(
                name for name, unlinked in self._segments.items() if not unlinked
            )
        return sorted(self._segments)

    @property
    def refs(self) -> int:
        """Number of attached workers currently holding the store open."""
        return self._refs

    # -- lifetime --------------------------------------------------------------
    def acquire(self) -> "SharedWeightStore":
        """Register one attached worker (refcounted cleanup bookkeeping)."""
        self._ensure_open()
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one worker's reference (on its drain/stop/kill)."""
        self._refs = max(0, self._refs - 1)

    def _unlink(self, segment: shared_memory.SharedMemory) -> None:
        _close_segment(segment)
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            # ``unlink`` unregisters only after a successful shm_unlink; do
            # it by hand so the tracker doesn't warn about the name at exit.
            try:
                resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:
                pass
        self._segments[segment.name] = True

    def close(self) -> None:
        """Unlink every segment this store ever created (idempotent).

        Called by the owning service after its workers stopped; also safe
        while stragglers are attached — their mappings stay valid, only the
        names disappear, which is the leak-free-shutdown contract.
        """
        if self._closed:
            return
        self._closed = True
        self._local.close()
        for published in self._published.values():
            self._unlink(published.segment)
        self._published.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise InternalError("SharedWeightStore is closed")

    def __enter__(self) -> "SharedWeightStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker side: the consumer
# ---------------------------------------------------------------------------

class _AttachedModel:
    __slots__ = ("entry", "segment")

    def __init__(self, entry: Dict, segment: shared_memory.SharedMemory) -> None:
        self.entry = entry
        self.segment = segment


class SharedModelSource:
    """Worker-side engine source over installed shared-memory manifests.

    Satisfies the engine-source protocol of
    :class:`~repro.serve.cache.EngineCache` (``build_engine(model_id)``), so
    a process shard wires it in where the threaded shard wires the registry.
    Models arrive as manifest entries over the control channel
    (:meth:`install`); their weight bytes are mapped, never copied.
    """

    def __init__(self, untrack: bool = False) -> None:
        self._models: Dict[str, _AttachedModel] = {}
        #: Whether attachments bypass this process's resource tracker.  Set
        #: by spawn-started workers, whose private tracker would otherwise
        #: unlink live segments on worker exit (see :func:`attach_segment`).
        self.untrack = untrack

    def install(self, entry: Dict, segment: Optional[shared_memory.SharedMemory] = None) -> bool:
        """Install (or version-replace) one model's manifest entry.

        Returns whether an older version was replaced.  ``segment`` lets a
        caller that already holds the mapping hand it over; otherwise the
        segment is attached by name (honouring ``untrack``, see
        :func:`attach_segment`).
        """
        model_id = entry["model_id"]
        previous = self._models.get(model_id)
        if previous is not None and previous.entry["version"] == entry["version"]:
            return False
        if segment is None:
            segment = attach_segment(entry["segment"], untrack=self.untrack)
        self._models[model_id] = _AttachedModel(entry, segment)
        if previous is not None:
            _close_segment(previous.segment)
            return True
        return False

    def build_engine(self, model_id: str):
        """Materialize an attached engine for one installed model."""
        attached = self._models.get(model_id)
        if attached is None:
            raise NotFoundError(
                f"model {model_id!r} has no installed shared-weight manifest; "
                f"installed: {sorted(self._models)}"
            )
        return _build_engine_from_entry(attached.entry, attached.segment)

    def model_ids(self) -> List[str]:
        return sorted(self._models)

    def __contains__(self, model_id: str) -> bool:
        return model_id in self._models

    def __len__(self) -> int:
        return len(self._models)

    def close(self) -> None:
        """Close every mapping (attachments only — unlinking is the owner's)."""
        for attached in self._models.values():
            _close_segment(attached.segment)
        self._models.clear()
