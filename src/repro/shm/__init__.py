"""Zero-copy shared-memory weight distribution for multi-process serving.

The compressed weight formats the engines serve from — CSR / blocked-ELLPACK
index and value arrays, CRISP group tables, dense fallbacks — are read-only,
densely-packed numpy buffers: exactly the payload
:mod:`multiprocessing.shared_memory` maps into every worker process without
copying or pickling.  This package is that seam:

* :class:`SharedWeightStore` — parent-side publisher.  Serializes each
  registered model's encoded formats *and* its module state dict into one
  named shared-memory segment, described by a JSON-compatible manifest
  entry small enough to ride a wire envelope.  Owns segment lifetime:
  refcounted by attached workers and unlinked on :meth:`~SharedWeightStore.close`.
* :class:`SharedModelSource` — worker-side consumer.  Installs manifest
  entries, maps the named segments, and builds
  :class:`~repro.backend.engine.Engine` instances whose format arrays are
  read-only ``np.ndarray`` views over the shared buffers (zero-copy; only
  the small dense module state is copied into the rebuilt module).  It
  satisfies the :class:`~repro.serve.cache.EngineCache` engine-source
  protocol, so a process shard's cache/scheduler stack runs unchanged.

The weight payload never crosses a pipe: parent and children exchange only
segment names and array layouts.
"""

from .store import (
    SegmentLayout,
    SharedModelSource,
    SharedWeightStore,
    attach_segment,
)

__all__ = [
    "SharedWeightStore",
    "SharedModelSource",
    "SegmentLayout",
    "attach_segment",
]
