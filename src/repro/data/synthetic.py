"""Synthetic class-conditional image datasets.

The paper evaluates on ImageNet-1k and CIFAR-100.  Neither can be downloaded
in this offline environment, so we substitute procedurally generated
class-conditional image distributions that preserve the property the
class-aware pruning experiments rely on: a universal model must separate many
classes, while a personalised model restricted to a handful of user-preferred
classes faces a much easier problem and therefore tolerates far more pruning.

Each class is defined by a deterministic *template* built from a small number
of visual factors (dominant colour, spatial blob layout, orientation of a
sinusoidal grating and a frequency signature).  Samples are noisy, jittered
renderings of their class template, so classes are separable but not
trivially so, and nearby class indices are **not** more similar than distant
ones (factor assignment is hashed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SyntheticImageDataset",
    "DatasetConfig",
    "make_dataset",
    "DATASET_PRESETS",
]


@dataclass(frozen=True)
class DatasetConfig:
    """Configuration for a synthetic dataset preset."""

    name: str
    num_classes: int
    image_size: int
    channels: int = 3
    noise_level: float = 0.25
    jitter: int = 2
    samples_per_class_train: int = 32
    samples_per_class_val: int = 8


#: Presets mirroring the paper's two datasets at CPU-friendly scale.
DATASET_PRESETS: Dict[str, DatasetConfig] = {
    "synthetic-imagenet": DatasetConfig(
        name="synthetic-imagenet",
        num_classes=40,
        image_size=16,
        samples_per_class_train=24,
        samples_per_class_val=8,
    ),
    "synthetic-cifar100": DatasetConfig(
        name="synthetic-cifar100",
        num_classes=20,
        image_size=16,
        samples_per_class_train=24,
        samples_per_class_val=8,
    ),
    "synthetic-tiny": DatasetConfig(
        name="synthetic-tiny",
        num_classes=8,
        image_size=12,
        samples_per_class_train=12,
        samples_per_class_val=6,
    ),
}


def _class_factors(class_id: int, num_classes: int, rng: np.random.Generator) -> dict:
    """Deterministic visual factors for one class."""
    return {
        "color": rng.uniform(-1.0, 1.0, size=3),
        "blob_centers": rng.uniform(0.15, 0.85, size=(2, 2)),
        "blob_scales": rng.uniform(0.08, 0.25, size=2),
        "orientation": rng.uniform(0.0, np.pi),
        "frequency": rng.uniform(1.5, 4.5),
        "phase": rng.uniform(0.0, 2 * np.pi),
        "contrast": rng.uniform(0.6, 1.2),
    }


def _render_template(factors: dict, size: int, channels: int) -> np.ndarray:
    """Render the noiseless class template image of shape (C, H, W)."""
    ys, xs = np.meshgrid(
        np.linspace(0.0, 1.0, size), np.linspace(0.0, 1.0, size), indexing="ij"
    )

    # Oriented sinusoidal grating.
    theta = factors["orientation"]
    coord = xs * np.cos(theta) + ys * np.sin(theta)
    grating = np.sin(2 * np.pi * factors["frequency"] * coord + factors["phase"])

    # Gaussian blobs.
    blobs = np.zeros_like(xs)
    for (cy, cx), scale in zip(factors["blob_centers"], factors["blob_scales"]):
        blobs += np.exp(-(((xs - cx) ** 2 + (ys - cy) ** 2) / (2 * scale**2)))

    pattern = factors["contrast"] * (0.6 * grating + 0.8 * blobs)
    template = np.empty((channels, size, size))
    for ch in range(channels):
        color = factors["color"][ch % len(factors["color"])]
        template[ch] = pattern * (0.5 + 0.5 * color) + 0.3 * color
    return template


class SyntheticImageDataset:
    """A deterministic synthetic classification dataset.

    Parameters
    ----------
    config:
        Dataset preset configuration.
    seed:
        Master seed.  Class templates depend only on ``seed`` and the class
        id, so train and validation splits of the same dataset share
        templates while drawing independent noise.

    Notes
    -----
    Samples are generated lazily per split and cached, so constructing the
    dataset object is cheap even for large presets.
    """

    def __init__(self, config: DatasetConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self._templates: Dict[int, np.ndarray] = {}
        self._factor_rng = np.random.default_rng(seed)
        self._factors: List[dict] = [
            _class_factors(cid, config.num_classes, self._factor_rng)
            for cid in range(config.num_classes)
        ]
        self._split_cache: Dict[Tuple[str, Tuple[int, ...]], Tuple[np.ndarray, np.ndarray]] = {}

    # -- template / sample generation ----------------------------------------
    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    @property
    def image_size(self) -> int:
        return self.config.image_size

    @property
    def channels(self) -> int:
        return self.config.channels

    def class_template(self, class_id: int) -> np.ndarray:
        """Noise-free template image for ``class_id`` (shape ``(C, H, W)``)."""
        self._check_class(class_id)
        if class_id not in self._templates:
            self._templates[class_id] = _render_template(
                self._factors[class_id], self.config.image_size, self.config.channels
            )
        return self._templates[class_id]

    def _check_class(self, class_id: int) -> None:
        if not 0 <= class_id < self.config.num_classes:
            raise ValueError(
                f"class_id {class_id} out of range for {self.config.num_classes} classes"
            )

    def _sample_class(
        self, class_id: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``count`` noisy, jittered samples of one class."""
        template = self.class_template(class_id)
        c, h, w = template.shape
        jitter = self.config.jitter
        samples = np.empty((count, c, h, w))
        for i in range(count):
            shifted = template
            if jitter > 0:
                dy = int(rng.integers(-jitter, jitter + 1))
                dx = int(rng.integers(-jitter, jitter + 1))
                shifted = np.roll(np.roll(template, dy, axis=1), dx, axis=2)
            noise = rng.normal(0.0, self.config.noise_level, size=template.shape)
            gain = rng.uniform(0.85, 1.15)
            samples[i] = gain * shifted + noise
        return samples

    # -- splits ----------------------------------------------------------------
    def split(
        self,
        split: str,
        classes: Optional[Sequence[int]] = None,
        samples_per_class: Optional[int] = None,
        remap_labels: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Materialise a data split restricted to ``classes``.

        Parameters
        ----------
        split:
            ``"train"`` or ``"val"``; controls the noise stream and the
            default number of samples per class.
        classes:
            Class ids to include (default: all classes).  This is how the
            "user-preferred classes" subset of the paper is expressed.
        samples_per_class:
            Override of the per-class sample count.
        remap_labels:
            When ``True`` labels are remapped to ``0..len(classes)-1`` in the
            order given (the personalised model's output space); when
            ``False`` original class ids are kept.

        Returns
        -------
        (images, labels):
            ``images`` of shape ``(N, C, H, W)`` and integer ``labels``.
        """
        if split not in ("train", "val"):
            raise ValueError(f"Unknown split {split!r}; expected 'train' or 'val'")
        if classes is None:
            classes = list(range(self.config.num_classes))
        classes = list(classes)
        if len(set(classes)) != len(classes):
            raise ValueError("classes must not contain duplicates")
        for cid in classes:
            self._check_class(cid)

        if samples_per_class is None:
            samples_per_class = (
                self.config.samples_per_class_train
                if split == "train"
                else self.config.samples_per_class_val
            )

        cache_key = (split, tuple(classes), samples_per_class, remap_labels)
        if cache_key in self._split_cache:
            return self._split_cache[cache_key]

        split_offset = 0 if split == "train" else 1_000_003
        images: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        for new_label, class_id in enumerate(classes):
            rng = np.random.default_rng(self.seed + 7919 * class_id + split_offset)
            class_images = self._sample_class(class_id, samples_per_class, rng)
            images.append(class_images)
            label_value = new_label if remap_labels else class_id
            labels.append(np.full(samples_per_class, label_value, dtype=np.int64))

        all_images = np.concatenate(images, axis=0)
        all_labels = np.concatenate(labels, axis=0)

        # Deterministic shuffle so batches mix classes.
        shuffle_rng = np.random.default_rng(self.seed + split_offset + 13)
        order = shuffle_rng.permutation(len(all_labels))
        result = (all_images[order], all_labels[order])
        self._split_cache[cache_key] = result
        return result

    def user_preferred_split(
        self, num_user_classes: int, split: str = "train", seed: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray, List[int]]:
        """Sample ``num_user_classes`` classes and return their split.

        Mirrors the paper's protocol of randomly sampling 1..K user-preferred
        classes from the full label space.  Returns ``(images, labels,
        selected_class_ids)`` with labels remapped to ``0..num_user_classes-1``.
        """
        if not 1 <= num_user_classes <= self.config.num_classes:
            raise ValueError(
                f"num_user_classes must be in [1, {self.config.num_classes}], "
                f"got {num_user_classes}"
            )
        rng = np.random.default_rng(self.seed if seed is None else seed)
        selected = sorted(
            rng.choice(self.config.num_classes, size=num_user_classes, replace=False).tolist()
        )
        images, labels = self.split(split, classes=selected)
        return images, labels, selected


def make_dataset(preset: str, seed: int = 0, **overrides) -> SyntheticImageDataset:
    """Construct a dataset from a named preset, optionally overriding fields.

    >>> ds = make_dataset("synthetic-cifar100", num_classes=10)
    """
    if preset not in DATASET_PRESETS:
        raise KeyError(f"Unknown dataset preset {preset!r}; available: {sorted(DATASET_PRESETS)}")
    config = DATASET_PRESETS[preset]
    if overrides:
        config = DatasetConfig(**{**config.__dict__, **overrides})
    return SyntheticImageDataset(config, seed=seed)
