"""Data substrate: synthetic class-conditional datasets and loaders.

Substitutes for ImageNet-1k / CIFAR-100 (unavailable offline) with
procedurally generated class-conditional image distributions; see DESIGN.md
for the substitution rationale.
"""

from .synthetic import (
    DATASET_PRESETS,
    DatasetConfig,
    SyntheticImageDataset,
    make_dataset,
)
from .loader import DataLoader, UserProfile, build_user_loaders, sample_user_profile

__all__ = [
    "DATASET_PRESETS",
    "DatasetConfig",
    "SyntheticImageDataset",
    "make_dataset",
    "DataLoader",
    "UserProfile",
    "build_user_loaders",
    "sample_user_profile",
]
