"""Mini-batch loaders and user-preference sampling utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .synthetic import SyntheticImageDataset

__all__ = ["DataLoader", "UserProfile", "sample_user_profile", "build_user_loaders"]


class DataLoader:
    """A minimal mini-batch iterator over in-memory arrays.

    Iterating yields ``(images, labels)`` batches.  Shuffling uses an internal
    generator re-seeded per epoch so repeated iteration is reproducible but
    not identical across epochs.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 32,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if len(images) != len(labels):
            raise ValueError(
                f"images ({len(images)}) and labels ({len(labels)}) length mismatch"
            )
        if len(images) == 0:
            raise ValueError("DataLoader requires at least one sample")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.images = images
        self.labels = labels
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.images)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    @property
    def num_samples(self) -> int:
        return len(self.images)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.images))
        if self.shuffle:
            rng = np.random.default_rng(self.seed + self._epoch)
            rng.shuffle(indices)
            self._epoch += 1
        for start in range(0, len(indices), self.batch_size):
            batch_idx = indices[start : start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                break
            yield self.images[batch_idx], self.labels[batch_idx]


@dataclass
class UserProfile:
    """A simulated user: the subset of classes they encounter.

    Mirrors the paper's setup where "the frequently occurring classes within
    a predefined window" become the user-preferred classes ``uc``.
    """

    user_id: int
    preferred_classes: List[int]

    @property
    def num_classes(self) -> int:
        return len(self.preferred_classes)


def sample_user_profile(
    dataset: SyntheticImageDataset,
    num_user_classes: int,
    user_id: int = 0,
    seed: Optional[int] = None,
) -> UserProfile:
    """Randomly sample a user profile with ``num_user_classes`` preferred classes."""
    if not 1 <= num_user_classes <= dataset.num_classes:
        raise ValueError(
            f"num_user_classes must be in [1, {dataset.num_classes}], got {num_user_classes}"
        )
    rng = np.random.default_rng(dataset.seed + 31 * user_id if seed is None else seed)
    selected = sorted(
        rng.choice(dataset.num_classes, size=num_user_classes, replace=False).tolist()
    )
    return UserProfile(user_id=user_id, preferred_classes=selected)


def build_user_loaders(
    dataset: SyntheticImageDataset,
    profile: UserProfile,
    batch_size: int = 32,
    samples_per_class: Optional[int] = None,
    seed: int = 0,
) -> Tuple[DataLoader, DataLoader]:
    """Build train / validation loaders restricted to a user's preferred classes.

    Labels are remapped to ``0..len(preferred_classes)-1`` so the personalised
    model's classification head can be sized to the user's class count.
    """
    train_images, train_labels = dataset.split(
        "train", classes=profile.preferred_classes, samples_per_class=samples_per_class
    )
    val_images, val_labels = dataset.split(
        "val", classes=profile.preferred_classes
    )
    train_loader = DataLoader(
        train_images, train_labels, batch_size=batch_size, shuffle=True, seed=seed
    )
    val_loader = DataLoader(
        val_images, val_labels, batch_size=batch_size, shuffle=False, seed=seed
    )
    return train_loader, val_loader
