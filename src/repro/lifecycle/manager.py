"""LifecycleManager: the control loop that owns every tenant's state machine.

One manager supervises a fleet: per tenant it holds the current lifecycle
state, and drives the only legal path through it —

``SERVING`` --accuracy drop--> ``DRIFTING`` --> ``REPRUNING`` (build a new
version for the tenant's *observed* class head) --> ``CANARYING`` (seeded
split or shadow rollout via the :class:`~repro.lifecycle.rollout.RolloutTable`)
--> ``PROMOTED`` (canary recovered: :meth:`~repro.serve.registry.ModelRegistry.set_active`
flips the tenant, caches invalidate) or ``ROLLED_BACK`` (one call, stable
keeps serving, canary engines evicted) --> back to ``SERVING``.

Everything the manager does is audited: each edge is one
:class:`~repro.lifecycle.audit.LifecycleTransition` in the
:class:`~repro.lifecycle.audit.AuditLog` and one ``lifecycle`` event on the
structured event log.  With an injected virtual ``clock`` the whole loop —
detection times, rollout decisions, audit records — is a pure function of
the workload seed, which is what the byte-identical-runs CI gate checks.

Re-pruning runs synchronously by default (deterministic replay) or on a
background thread (``background=True``): serving never blocks on a rebuild
either way, because traffic keeps resolving to the stable version until the
canary is installed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..serve.registry import ModelRegistry
from .audit import AuditLog
from .rollout import ROLLOUT_MODES, RolloutTable, split_arm
from .telemetry import AccuracyTracker

__all__ = ["LifecyclePolicy", "LifecycleManager"]


@dataclass(frozen=True)
class LifecyclePolicy:
    """The knobs of one lifecycle control loop (all deterministic)."""

    min_accuracy: float = 0.75  #: served-head accuracy floor
    for_samples: int = 2  #: consecutive low-accuracy ticks before drift fires
    min_requests: int = 4  #: window samples required before judging a tenant
    cooldown_ticks: int = 2  #: detector ticks to hold off after a detection
    canary_fraction: float = 0.5  #: share of traffic the canary receives
    canary_min_requests: int = 4  #: canary-arm samples before the verdict
    promote_margin: float = 0.0  #: extra accuracy the canary must clear
    rollout_mode: str = "split"  #: "split" routes, "shadow" duplicates
    rollout_seed: int = 0  #: seeds the per-request hash split
    max_versions: int = 8  #: version-stack cap per tenant (runaway guard)

    def __post_init__(self) -> None:
        if not 0.0 < self.min_accuracy <= 1.0:
            raise ValueError(f"min_accuracy must be in (0, 1], got {self.min_accuracy}")
        if not 0.0 < self.canary_fraction <= 1.0:
            raise ValueError(
                f"canary_fraction must be in (0, 1], got {self.canary_fraction}"
            )
        if self.rollout_mode not in ROLLOUT_MODES:
            raise ValueError(
                f"unknown rollout_mode {self.rollout_mode!r}; known: {ROLLOUT_MODES}"
            )
        for name in ("for_samples", "min_requests", "canary_min_requests"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.cooldown_ticks < 0:
            raise ValueError(f"cooldown_ticks must be >= 0, got {self.cooldown_ticks}")
        if self.max_versions < 2:
            raise ValueError(f"max_versions must be >= 2, got {self.max_versions}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "min_accuracy": self.min_accuracy,
            "for_samples": self.for_samples,
            "min_requests": self.min_requests,
            "cooldown_ticks": self.cooldown_ticks,
            "canary_fraction": self.canary_fraction,
            "canary_min_requests": self.canary_min_requests,
            "promote_margin": self.promote_margin,
            "rollout_mode": self.rollout_mode,
            "rollout_seed": self.rollout_seed,
            "max_versions": self.max_versions,
        }


class LifecycleManager:
    """Per-tenant lifecycle state machine over a versioned registry.

    ``repersonalize(tenant, target_classes, version)`` builds the new
    module for a drifted tenant — the production implementation re-runs
    CRISP pruning on fresh data; the synthetic harness rebuilds a
    magnitude-masked model whose metadata head matches ``target_classes``.
    It may return either a module or a ``(module, metadata)`` pair.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        repersonalize: Callable,
        policy: Optional[LifecyclePolicy] = None,
        rollout: Optional[RolloutTable] = None,
        tracker: Optional[AccuracyTracker] = None,
        audit: Optional[AuditLog] = None,
        clock: Callable[[], float] = time.time,
        background: bool = False,
    ) -> None:
        self.registry = registry
        self.repersonalize = repersonalize
        self.policy = policy or LifecyclePolicy()
        self.rollout = rollout if rollout is not None else RolloutTable()
        self.tracker = tracker if tracker is not None else AccuracyTracker()
        self.audit = audit if audit is not None else AuditLog()
        self.clock = clock
        self.background = background
        self._states: Dict[str, str] = {}
        self._lock = threading.RLock()
        self.cycles = 0  #: completed lifecycle cycles (promoted or rolled back)
        self.promoted = 0
        self.rolled_back = 0

    # -- state ----------------------------------------------------------------
    def state(self, tenant: str) -> str:
        with self._lock:
            return self._states.get(tenant, "SERVING")

    def states(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._states)

    def _transition(self, tenant: str, to_state: str, reason: str,
                    now: float, details: Optional[Dict[str, object]] = None):
        with self._lock:
            from_state = self._states.get(tenant, "SERVING")
            record = self.audit.append(
                at=now, tenant=tenant, from_state=from_state,
                to_state=to_state, reason=reason, details=details,
            )
            self._states[tenant] = to_state
        return record

    # -- telemetry ------------------------------------------------------------
    def _classes(self, model_id: str) -> List[int]:
        if model_id not in self.registry:
            return []
        return [int(c) for c in self.registry.get(model_id).metadata.get("classes", [])]

    def observe_prediction(
        self,
        tenant: str,
        request_id: Optional[str],
        served_id: str,
        label: Optional[int],
    ) -> Optional[bool]:
        """Score one served prediction; returns the hit verdict (or None).

        During a ``shadow`` rollout the canary never serves user traffic,
        so its score is the *counterfactual*: for every request the split
        hash assigns to the canary, judge the canary's head against the
        same label the stable version was scored on.
        """
        if label is None:
            return None
        entry = self.rollout.entry(tenant)
        hit = int(label) in self._classes(served_id)
        active = (
            self.registry.active_version(tenant)
            if tenant in self.registry else served_id
        )
        active_hit = int(label) in self._classes(active)
        arm = "stable"
        if entry is not None:
            if entry.mode == "split":
                arm = "canary" if served_id == entry.canary else "stable"
            elif split_arm(entry.seed, tenant, request_id, entry.fraction) == "canary":
                self.tracker.record(
                    tenant, int(label) in self._classes(entry.canary), arm="canary"
                )
        self.tracker.record(
            tenant, hit, arm=arm, label=int(label), label_hit=active_hit
        )
        return hit

    def tenant_rows(self, now: Optional[float] = None) -> List[Dict[str, object]]:
        """The per-tenant ``tenants`` stats block (sorted, JSON-stable)."""
        t = self.clock() if now is None else float(now)
        rows = []
        for tenant in self.tracker.tenants():
            accuracy = self.tracker.accuracy(tenant, "stable")
            if accuracy is None:
                continue
            active = (
                self.registry.active_version(tenant)
                if tenant in self.registry else tenant
            )
            personalized_at = 0.0
            if active in self.registry:
                personalized_at = float(
                    self.registry.get(active).metadata.get("personalized_at", 0.0)
                )
            row: Dict[str, object] = {
                "tenant": tenant,
                "accuracy": round(accuracy, 6),
                "requests": self.tracker.samples(tenant, "stable"),
                "staleness_s": round(max(0.0, t - personalized_at), 6),
                "state": self.state(tenant),
                "active_version": active,
            }
            canary_accuracy = self.tracker.accuracy(tenant, "canary")
            if canary_accuracy is not None:
                row["canary_accuracy"] = round(canary_accuracy, 6)
                row["canary_requests"] = self.tracker.samples(tenant, "canary")
            rows.append(row)
        return rows

    # -- the drift -> canary path ---------------------------------------------
    def on_drift(
        self,
        tenant: str,
        reason: str = "accuracy_drop",
        evidence: Optional[Dict[str, object]] = None,
        now: Optional[float] = None,
    ) -> Optional[str]:
        """Open a lifecycle cycle for ``tenant``; returns the canary id.

        Ignored (returns ``None``) unless the tenant is ``SERVING`` — a
        drift signal arriving mid-cycle is the same drift, already being
        handled.  Synchronous by default; with ``background=True`` the
        re-prune runs on a daemon thread and traffic keeps resolving to
        the stable version until the canary is installed.
        """
        t = self.clock() if now is None else float(now)
        with self._lock:
            if self.state(tenant) != "SERVING" or tenant not in self.registry:
                return None
            if len(self.registry.versions(tenant)) >= self.policy.max_versions:
                return None
            head_size = max(1, len(self._classes(self.registry.active_version(tenant))))
            # A canary built toward a half-stale head burns a whole rollout
            # cycle, so the target comes from miss-first evidence (see
            # AccuracyTracker.target_estimate); [] means "not enough fresh
            # labels yet" — stay SERVING and let the detector retry.
            target = self.tracker.target_estimate(tenant, head_size)
            if not target:
                return None  # evidence too thin to re-personalize toward
            self._transition(tenant, "DRIFTING", reason, t, evidence)
            self._transition(
                tenant, "REPRUNING", "repersonalize", t,
                {"target_classes": target},
            )
        if self.background:
            thread = threading.Thread(
                target=self._install_canary, args=(tenant, target, t),
                name=f"repro-reprune-{tenant}", daemon=True,
            )
            thread.start()
            return "pending"
        return self._install_canary(tenant, target, t)

    def _install_canary(self, tenant: str, target: List[int], now: float) -> str:
        """Build + register the new version, then start its rollout."""
        version = len(self.registry.versions(tenant)) + 1
        built = self.repersonalize(tenant, target, version)
        module, metadata = built if isinstance(built, tuple) else (built, {})
        metadata = dict(metadata)
        metadata.setdefault("classes", sorted(int(c) for c in target))
        metadata["version"] = version
        metadata["personalized_at"] = float(now)
        with self._lock:
            stable = self.registry.active_version(tenant)
            canary = self.registry.register_version(tenant, module, metadata=metadata)
            self.rollout.start(
                tenant, stable=stable, canary=canary,
                fraction=self.policy.canary_fraction,
                mode=self.policy.rollout_mode,
                seed=self.policy.rollout_seed,
            )
            self.tracker.reset_arm(tenant, "canary")
            self._transition(
                tenant, "CANARYING", "canary_started", now,
                {
                    "stable": stable,
                    "canary": canary,
                    "fraction": self.policy.canary_fraction,
                    "mode": self.policy.rollout_mode,
                },
            )
        return canary

    # -- the canary verdict ---------------------------------------------------
    def evaluate_canary(self, tenant: str, now: Optional[float] = None) -> Optional[str]:
        """Judge an in-flight canary; returns "promoted"/"rolled_back"/None.

        ``None`` means "keep canarying" — not enough canary-arm samples
        yet.  The verdict is pure window arithmetic: promote when the
        canary's served-head accuracy clears the policy floor (plus
        margin), roll back when a full window failed to.
        """
        t = self.clock() if now is None else float(now)
        with self._lock:
            if self.state(tenant) != "CANARYING":
                return None
            entry = self.rollout.entry(tenant)
            if entry is None:  # table cleared out from under us: recover
                self._states[tenant] = "SERVING"
                return None
            samples = self.tracker.samples(tenant, "canary")
            if samples < self.policy.canary_min_requests:
                return None
            accuracy = self.tracker.accuracy(tenant, "canary") or 0.0
            verdict = {
                "canary": entry.canary,
                "canary_accuracy": round(accuracy, 6),
                "canary_requests": samples,
                "threshold": self.policy.min_accuracy,
            }
            if accuracy >= self.policy.min_accuracy + self.policy.promote_margin:
                self._promote(tenant, entry, t, verdict)
                return "promoted"
            self._rollback(tenant, entry, "canary_below_floor", t, verdict)
            return "rolled_back"

    def _promote(self, tenant: str, entry, now: float, details: Dict[str, object]) -> None:
        self.rollout.finish(tenant)
        self.registry.set_active(tenant, entry.canary)
        self._transition(tenant, "PROMOTED", "canary_recovered", now, details)
        self._transition(tenant, "SERVING", "cycle_complete", now)
        self.tracker.reset_tenant(tenant)
        self.promoted += 1
        self.cycles += 1

    def _rollback(self, tenant: str, entry, reason: str, now: float,
                  details: Dict[str, object]) -> None:
        self.rollout.clear(tenant)
        # Re-asserting the stable version notifies cache subscribers, which
        # evict every cached version of the tenant — including the abandoned
        # canary's engines.
        self.registry.set_active(tenant, entry.stable)
        self._transition(tenant, "ROLLED_BACK", reason, now, details)
        self._transition(tenant, "SERVING", "cycle_complete", now)
        self.tracker.reset_arm(tenant, "canary")
        self.rolled_back += 1
        self.cycles += 1

    def rollback(self, tenant: str, reason: str = "manual",
                 now: Optional[float] = None) -> bool:
        """One-call rollback of an in-flight canary; returns whether it acted.

        After this returns, every subsequent request for ``tenant``
        resolves to the stable version and serves its bit-exact responses
        (stale canary engines are evicted via the registry's version-change
        subscription).
        """
        t = self.clock() if now is None else float(now)
        with self._lock:
            if self.state(tenant) != "CANARYING":
                return False
            entry = self.rollout.entry(tenant)
            if entry is None:
                self._states[tenant] = "SERVING"
                return False
            self._rollback(tenant, entry, reason, t, {"canary": entry.canary})
            return True

    # -- introspection --------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy.to_dict(),
            "states": {t: s for t, s in sorted(self.states().items())},
            "cycles": self.cycles,
            "promoted": self.promoted,
            "rolled_back": self.rolled_back,
            "transitions": len(self.audit),
            "rollout": self.rollout.counts(),
        }
