"""The lifecycle audit trail: every state transition, structured, replayable.

The tenant lifecycle is an explicit state machine::

    SERVING -> DRIFTING -> REPRUNING -> CANARYING -> PROMOTED ----+
                                              |                   |
                                              +--> ROLLED_BACK ---+--> SERVING

and this module is its flight recorder.  Each edge the
:class:`~repro.lifecycle.manager.LifecycleManager` takes becomes one frozen
:class:`LifecycleTransition` appended to an :class:`AuditLog` — the same
construction as the autoscaler's :class:`~repro.autoscale.ScalingDecision`
log: monotonically sequenced, JSON with sorted keys, one line per record, so
two same-seed runs can be diffed byte for byte and a log can be replayed
back into typed records with :meth:`AuditLog.replay`.

Every transition is also emitted on the structured event log (kind
``lifecycle``), so "tail the event log" shows drift detections interleaved
with the alerts and cache evictions they caused.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..metrics.events import emit

__all__ = ["STATES", "TRANSITIONS", "LifecycleTransition", "AuditLog"]

#: The lifecycle vocabulary, in canonical order.
STATES = (
    "SERVING",
    "DRIFTING",
    "REPRUNING",
    "CANARYING",
    "PROMOTED",
    "ROLLED_BACK",
)

#: Legal edges.  PROMOTED / ROLLED_BACK are terminal *outcomes* of one
#: lifecycle cycle; both return to SERVING so the next drift can start a
#: fresh cycle.
TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "SERVING": ("DRIFTING",),
    "DRIFTING": ("REPRUNING",),
    "REPRUNING": ("CANARYING",),
    "CANARYING": ("PROMOTED", "ROLLED_BACK"),
    "PROMOTED": ("SERVING",),
    "ROLLED_BACK": ("SERVING",),
}


@dataclass(frozen=True)
class LifecycleTransition:
    """One audited edge of a tenant's lifecycle state machine."""

    seq: int  #: monotonic per-log sequence number
    at: float  #: virtual (or wall) time of the transition
    tenant: str  #: tenant base id
    from_state: str
    to_state: str
    reason: str  #: what triggered the edge (rule name, verdict, "manual")
    details: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.from_state not in STATES:
            raise ValueError(f"unknown state {self.from_state!r}; known: {STATES}")
        if self.to_state not in TRANSITIONS.get(self.from_state, ()):
            raise ValueError(
                f"illegal transition {self.from_state} -> {self.to_state}; "
                f"legal: {TRANSITIONS[self.from_state]}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "at": self.at,
            "tenant": self.tenant,
            "from_state": self.from_state,
            "to_state": self.to_state,
            "reason": self.reason,
            "details": dict(self.details),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class AuditLog:
    """Append-only, replayable record of every lifecycle transition."""

    def __init__(self) -> None:
        self.transitions: List[LifecycleTransition] = []

    def append(
        self,
        at: float,
        tenant: str,
        from_state: str,
        to_state: str,
        reason: str,
        details: Optional[Dict[str, object]] = None,
    ) -> LifecycleTransition:
        """Record one edge (validating it) and mirror it to the event log."""
        transition = LifecycleTransition(
            seq=len(self.transitions),
            at=float(at),
            tenant=tenant,
            from_state=from_state,
            to_state=to_state,
            reason=reason,
            details=dict(details or {}),
        )
        self.transitions.append(transition)
        emit("lifecycle", ts=transition.at, **{
            k: v for k, v in transition.to_dict().items() if k != "at"
        })
        return transition

    def __len__(self) -> int:
        return len(self.transitions)

    def entries(self, tenant: Optional[str] = None) -> List[LifecycleTransition]:
        """All transitions, optionally filtered to one tenant."""
        if tenant is None:
            return list(self.transitions)
        return [t for t in self.transitions if t.tenant == tenant]

    def states_seen(self, tenant: Optional[str] = None) -> List[str]:
        """The ``to_state`` sequence — the quick "did it promote?" probe."""
        return [t.to_state for t in self.entries(tenant)]

    def to_jsonl(self) -> str:
        """The whole log as JSONL (sorted keys: byte-stable per seed)."""
        return "\n".join(t.to_json() for t in self.transitions)

    def dump_jsonl(self, path) -> int:
        """Write the JSONL log to ``path``; returns the transition count."""
        from pathlib import Path

        text = self.to_jsonl()
        Path(path).write_text(text + "\n" if text else "")
        return len(self.transitions)

    @classmethod
    def replay(cls, lines: Iterable[str]) -> "AuditLog":
        """Rebuild a typed log from JSONL lines (validating every edge)."""
        log = cls()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            log.transitions.append(
                LifecycleTransition(
                    seq=int(payload["seq"]),
                    at=float(payload["at"]),
                    tenant=payload["tenant"],
                    from_state=payload["from_state"],
                    to_state=payload["to_state"],
                    reason=payload["reason"],
                    details=payload.get("details", {}),
                )
            )
        return log
