"""Deterministic lifecycle replay: the whole control loop, virtually clocked.

Drives a drift workload synchronously through the full production stack —
``Gateway(LocalBackend(PersonalizationService))`` with the
:class:`~repro.lifecycle.rollout.RolloutMiddleware` installed, telemetry
sampled by a real :class:`~repro.metrics.TelemetryPoller` into a real
:class:`~repro.metrics.SLOMonitor` carrying the stock ``accuracy_drop``
rule, the :class:`~repro.lifecycle.detector.DriftDetector` subscribed to the
poller exactly as the autoscaler is — but with *virtual time*: the clock
every component sees is the workload's arrival offset, and poller samples
are taken every ``tick_every`` requests instead of from a thread.

That makes a lifecycle run a pure function of the seed: the drift schedule,
detection tick, rollout split decisions, audit log, and event stream are
byte-identical across same-seed runs (the CI gate diffs them), while the
live wiring (`detector.attach(poller)`, background threads, wall clocks)
stays the deployment story.

:func:`run_lifecycle_compare` replays the same workload twice — lifecycle
disabled (static: v1 serves forever) and enabled — and reports the
served-head accuracy delta, which is the experiment the ``lifecycle-compare``
pipeline preset and ``bench_loadgen.py --lifecycle`` package.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

import numpy as np

from ..gateway.api import LocalBackend
from ..gateway.gateway import Gateway, GatewayConfig
from ..gateway.wire import ApiRequest
from ..loadgen.popularity import ClassDriftPopularity
from ..loadgen.scenario import build_scenario
from ..metrics.events import EventLog, event_log
from ..metrics.poller import TelemetryPoller
from ..metrics.registry import MetricsRegistry
from ..metrics.slo import SLOMonitor, accuracy_drop
from ..serve.service import PersonalizationService, ServiceConfig
from .audit import AuditLog
from .detector import DriftDetector
from .fleet import drift_fleet, synthetic_repersonalizer
from .manager import LifecycleManager, LifecyclePolicy
from .rollout import RolloutMiddleware, RolloutTable
from .telemetry import AccuracyTracker, LifecycleStatsSource

__all__ = ["run_lifecycle_replay", "run_lifecycle_compare"]


def _round6(value: float) -> float:
    return round(float(value), 6)


def _window_accuracy(hits: List[bool], window: int) -> Optional[float]:
    tail = hits[-window:] if window else hits
    if not tail:
        return None
    return _round6(sum(tail) / len(tail))


def run_lifecycle_replay(
    scenario: str = "drift-step",
    tenants: int = 4,
    requests: int = 192,
    seed: int = 0,
    lifecycle: bool = True,
    policy: Optional[LifecyclePolicy] = None,
    tick_every: int = 4,
    window: int = 6,
    cache_capacity: int = 4,
    final_window: int = 24,
) -> Dict[str, object]:
    """One synchronous, virtually-clocked replay; returns a JSON-stable dict.

    ``lifecycle=False`` is the static arm: the identical stack and scoring,
    but no detector ticks — v1 serves the whole run, which is exactly what
    PRs 1–9 did for every tenant.
    """
    preset = build_scenario(scenario, requests=requests)
    if not isinstance(preset.popularity, ClassDriftPopularity):
        raise ValueError(
            f"scenario {scenario!r} has no class-drift schedule; "
            "use a drift-* preset"
        )
    registry, model_ids = drift_fleet(preset.popularity, tenants=tenants, seed=seed)
    workload = preset.synthesize(model_ids, seed=seed)

    # Virtual time: every clock in the stack reads the current arrival offset.
    now = {"t": 0.0}
    clock = lambda: now["t"]  # noqa: E731

    pol = policy or LifecyclePolicy()
    events = EventLog(capacity=16384, clock=clock)
    tracker = AccuracyTracker(window=window)
    table = RolloutTable()
    audit = AuditLog()
    manager = LifecycleManager(
        registry,
        synthetic_repersonalizer(registry, seed=seed),
        policy=pol,
        rollout=table,
        tracker=tracker,
        audit=audit,
        clock=clock,
    )
    service = PersonalizationService(
        ServiceConfig(cache_capacity=cache_capacity), registry=registry
    )
    gateway = Gateway(
        LocalBackend(service),
        GatewayConfig(),
        middlewares=[RolloutMiddleware(table, resolve=registry.resolve)],
    )
    metrics = MetricsRegistry()
    monitor = SLOMonitor(
        metrics,
        rules=(accuracy_drop(pol.min_accuracy, pol.for_samples),),
        event_log=events,
        clock=clock,
    )
    poller = TelemetryPoller(
        LifecycleStatsSource(gateway, manager.tenant_rows),
        registry=metrics,
        monitor=monitor,
        clock=clock,
    )
    detector = DriftDetector(manager, clock=clock)
    if lifecycle:
        detector.attach(poller)

    completed = failed = 0
    hits: List[bool] = []
    digest = hashlib.sha256()
    trajectory: List[float] = []
    segment: List[bool] = []

    with event_log(events):
        for item in workload.scheduled:
            now["t"] = item.at
            response = gateway.handle(
                ApiRequest(
                    "predict",
                    item.request.to_dict(),
                    request_id=item.request.request_id,
                    tenant=item.request.model_id,
                )
            )
            if not response.ok:
                failed += 1
                continue
            completed += 1
            body = response.payload["response"]
            served_id = body["model_id"]
            digest.update(f"{item.request.request_id}|{served_id}|".encode())
            digest.update(np.asarray(body["logits"], dtype=np.float64).round(6).tobytes())
            hit = manager.observe_prediction(
                item.request.model_id, item.request.request_id, served_id, item.label
            )
            if hit is not None:
                hits.append(hit)
                segment.append(hit)
            if completed % tick_every == 0:
                poller.sample(now=item.at)
                if segment:
                    trajectory.append(_round6(sum(segment) / len(segment)))
                    segment = []
        # Tail flush: one final sample so short runs land their last window.
        poller.sample(now=now["t"])
        if segment:
            trajectory.append(_round6(sum(segment) / len(segment)))

    return {
        "scenario": scenario,
        "requests": len(workload.scheduled),
        "tenants": tenants,
        "seed": seed,
        "lifecycle": bool(lifecycle),
        "policy": pol.to_dict(),
        "plan_digest": workload.digest(),
        "outcomes": {"completed": completed, "failed": failed},
        "predictions_digest": digest.hexdigest(),
        "accuracy": {
            "overall": _window_accuracy(hits, 0),
            "first_window": _window_accuracy(hits[:final_window], 0),
            "final_window": _window_accuracy(hits, final_window),
            "trajectory": trajectory,
        },
        "audit": [t.to_dict() for t in audit.transitions],
        "audit_jsonl": audit.to_jsonl(),
        "decisions_jsonl": table.decision_log_jsonl(),
        "rollout": table.counts(),
        "manager": manager.to_dict(),
        "detector": detector.to_dict(),
        "alerts_fired": monitor.fired,
        "events": events.counts(),
        "samples": poller.samples,
    }


def run_lifecycle_compare(
    scenario: str = "drift-step",
    tenants: int = 4,
    requests: int = 192,
    seed: int = 0,
    policy: Optional[LifecyclePolicy] = None,
    **kwargs,
) -> Dict[str, object]:
    """Static vs lifecycle-managed replay of the same drift workload."""
    static = run_lifecycle_replay(
        scenario, tenants=tenants, requests=requests, seed=seed,
        lifecycle=False, policy=policy, **kwargs,
    )
    managed = run_lifecycle_replay(
        scenario, tenants=tenants, requests=requests, seed=seed,
        lifecycle=True, policy=policy, **kwargs,
    )
    static_final = static["accuracy"]["final_window"] or 0.0
    managed_final = managed["accuracy"]["final_window"] or 0.0
    slo_held = (
        managed["outcomes"]["failed"] == 0
        and managed["outcomes"]["completed"] == managed["requests"]
    )
    return {
        "scenario": scenario,
        "requests": requests,
        "tenants": tenants,
        "seed": seed,
        "static": static,
        "managed": managed,
        "compare": {
            "static_final_accuracy": _round6(static_final),
            "managed_final_accuracy": _round6(managed_final),
            "accuracy_delta": _round6(managed_final - static_final),
            "promoted": managed["manager"]["promoted"],
            "rolled_back": managed["manager"]["rolled_back"],
            "slo_held": slo_held,
            "lifecycle_wins": bool(managed_final > static_final and slo_held),
        },
    }
