"""Tenant lifecycle: drift detection, re-personalization, versioned rollout.

The paper's premise is *class-personalized* pruning — so a tenant's model
is only as good as its class head is current.  This package closes the
control-plane triad (metrics → autoscaler → **lifecycle**) by making the
tenant lifecycle an explicit, audited state machine::

    SERVING -> DRIFTING -> REPRUNING -> CANARYING -> PROMOTED ----+
                                              |                   |
                                              +--> ROLLED_BACK ---+--> SERVING

* :mod:`~repro.lifecycle.telemetry` — :class:`AccuracyTracker` scores every
  served prediction against the workload's true-class labels, and
  :class:`LifecycleStatsSource` feeds per-tenant accuracy/staleness into
  the metrics plane (``tenant_accuracy{tenant}`` gauges, the stock
  ``accuracy_drop`` alert rule);
* :mod:`~repro.lifecycle.detector` — :class:`DriftDetector` subscribes to
  the :class:`~repro.metrics.TelemetryPoller` exactly as the autoscaler
  does, debouncing per-tenant accuracy breaches into drift signals;
* :mod:`~repro.lifecycle.manager` — :class:`LifecycleManager` owns the
  state machine: re-prunes the drifted tenant toward its observed class
  head, stacks the result as a new registry version, and drives rollout;
* :mod:`~repro.lifecycle.rollout` — :class:`RolloutTable` +
  :class:`RolloutMiddleware`: seeded hash-split (or shadow) routing between
  engine versions at the gateway, one-call ``rollback(tenant)``;
* :mod:`~repro.lifecycle.audit` — every transition as a replayable JSONL
  :class:`AuditLog` record plus a ``lifecycle`` event on the event log;
* :mod:`~repro.lifecycle.harness` — the deterministic virtually-clocked
  replay behind the ``lifecycle-compare`` pipeline, the CLI ``lifecycle``
  command and the CI byte-identical-runs gate.
"""

from .audit import STATES, TRANSITIONS, AuditLog, LifecycleTransition
from .detector import DriftDetector
from .fleet import drift_fleet, synthetic_repersonalizer
from .harness import run_lifecycle_compare, run_lifecycle_replay
from .manager import LifecycleManager, LifecyclePolicy
from .rollout import (
    ROLLOUT_MODES,
    RolloutDecision,
    RolloutEntry,
    RolloutMiddleware,
    RolloutTable,
    split_arm,
)
from .telemetry import AccuracyTracker, LifecycleStatsSource

__all__ = [
    "STATES",
    "TRANSITIONS",
    "LifecycleTransition",
    "AuditLog",
    "AccuracyTracker",
    "LifecycleStatsSource",
    "DriftDetector",
    "LifecycleManager",
    "LifecyclePolicy",
    "ROLLOUT_MODES",
    "split_arm",
    "RolloutEntry",
    "RolloutDecision",
    "RolloutTable",
    "RolloutMiddleware",
    "drift_fleet",
    "synthetic_repersonalizer",
    "run_lifecycle_replay",
    "run_lifecycle_compare",
]
