"""Versioned traffic rollout: deterministic split/shadow between engine versions.

The rollout plane answers one question per predict request: *which version
of the tenant's model serves it?*  With no rollout in flight the answer is
the registry's active version.  During a canary, a :class:`RolloutTable`
entry splits the tenant's traffic by a seeded hash of the request id —

    sha256(f"{seed}|{tenant}|{request_id}") -> uniform in [0, 1) < fraction

— so the assignment is a pure function of (seed, tenant, request id):
byte-stable across runs, machines, and replay order, with no per-request
rng state to corrupt.  ``shadow`` mode serves every request from the stable
version and *duplicates* it to the canary, discarding the shadow response —
the canary warms and gets scored without a single user-visible byte changing.

:class:`RolloutMiddleware` is a stock gateway :class:`~repro.gateway.Middleware`
(pass it via ``Gateway(middlewares=[...])``); it rewrites
``payload["model_id"]`` before the router dispatches, so every backend —
local, cluster, federated — gets versioned rollout for free.  All table
mutations and decisions share one lock: once :meth:`RolloutTable.clear`
(rollback) returns, no later decision can route to the abandoned canary.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..gateway.middleware import Middleware
from ..metrics.events import emit

__all__ = [
    "ROLLOUT_MODES",
    "split_arm",
    "RolloutEntry",
    "RolloutDecision",
    "RolloutTable",
    "RolloutMiddleware",
]

ROLLOUT_MODES = ("split", "shadow")

#: Denominator of the hash -> [0, 1) map (first 8 digest bytes).
_HASH_SPAN = float(2 ** 64)


def split_arm(seed: int, tenant: str, request_id: Optional[str], fraction: float) -> str:
    """``"canary"`` or ``"stable"`` — a pure function of its arguments."""
    payload = f"{seed}|{tenant}|{request_id or ''}".encode()
    bucket = int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") / _HASH_SPAN
    return "canary" if bucket < fraction else "stable"


@dataclass(frozen=True)
class RolloutEntry:
    """One in-flight rollout: which versions, how much traffic, which mode."""

    tenant: str
    stable: str  #: version id serving the non-canary share
    canary: str  #: version id under evaluation
    fraction: float  #: share of traffic routed (split) / duplicated (shadow)
    mode: str = "split"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ROLLOUT_MODES:
            raise ValueError(f"unknown mode {self.mode!r}; known: {ROLLOUT_MODES}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "stable": self.stable,
            "canary": self.canary,
            "fraction": self.fraction,
            "mode": self.mode,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class RolloutDecision:
    """One routed request: the audit record of a single split decision."""

    seq: int
    tenant: str
    request_id: Optional[str]
    arm: str  #: "stable" | "canary" (the serving arm; shadow serves stable)
    serve: str  #: version id that served the request
    shadow: Optional[str]  #: version id duplicated to, shadow mode only
    mode: str
    fraction: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "tenant": self.tenant,
            "request_id": self.request_id,
            "arm": self.arm,
            "serve": self.serve,
            "shadow": self.shadow,
            "mode": self.mode,
            "fraction": self.fraction,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class RolloutTable:
    """Thread-safe per-tenant rollout state + the decision log.

    One lock covers entry mutation *and* decision making, which is what
    makes :meth:`clear` (rollback) atomic under concurrent requests: a
    decision is either fully made against the old table or fully made
    against the new one — after ``clear`` returns, every subsequent
    decision for the tenant routes to the stable version.
    """

    def __init__(self, log_decisions: bool = True) -> None:
        self._entries: Dict[str, RolloutEntry] = {}
        self._lock = threading.Lock()
        self.log_decisions = log_decisions
        self.decisions: List[RolloutDecision] = []
        self._seq = 0

    # -- table mutation -------------------------------------------------------
    def start(
        self,
        tenant: str,
        stable: str,
        canary: str,
        fraction: float,
        mode: str = "split",
        seed: int = 0,
    ) -> RolloutEntry:
        """Begin a rollout for ``tenant`` (replacing any existing entry)."""
        entry = RolloutEntry(
            tenant=tenant, stable=stable, canary=canary,
            fraction=float(fraction), mode=mode, seed=int(seed),
        )
        with self._lock:
            self._entries[tenant] = entry
        emit("rollout", action="start", **entry.to_dict())
        return entry

    def finish(self, tenant: str) -> Optional[RolloutEntry]:
        """End the rollout after promotion (all traffic to the new active)."""
        with self._lock:
            entry = self._entries.pop(tenant, None)
        if entry is not None:
            emit("rollout", action="finish", **entry.to_dict())
        return entry

    def clear(self, tenant: str) -> Optional[RolloutEntry]:
        """Rollback: drop the entry; all subsequent traffic serves stable."""
        with self._lock:
            entry = self._entries.pop(tenant, None)
        if entry is not None:
            emit("rollout", action="rollback", **entry.to_dict())
        return entry

    def entry(self, tenant: str) -> Optional[RolloutEntry]:
        with self._lock:
            return self._entries.get(tenant)

    def active(self) -> List[RolloutEntry]:
        with self._lock:
            return [self._entries[t] for t in sorted(self._entries)]

    @property
    def seq(self) -> int:
        with self._lock:
            return self._seq

    # -- decisions ------------------------------------------------------------
    def decide(self, tenant: str, request_id: Optional[str]) -> Optional[RolloutDecision]:
        """Route one request; ``None`` when no rollout is in flight."""
        with self._lock:
            entry = self._entries.get(tenant)
            if entry is None:
                return None
            arm = split_arm(entry.seed, tenant, request_id, entry.fraction)
            if entry.mode == "shadow":
                serve, shadow = entry.stable, (
                    entry.canary if arm == "canary" else None
                )
                arm = "stable"
            else:
                serve = entry.canary if arm == "canary" else entry.stable
                shadow = None
            decision = RolloutDecision(
                seq=self._seq,
                tenant=tenant,
                request_id=request_id,
                arm=arm,
                serve=serve,
                shadow=shadow,
                mode=entry.mode,
                fraction=entry.fraction,
            )
            self._seq += 1
            if self.log_decisions:
                self.decisions.append(decision)
            return decision

    def decision_log_jsonl(self) -> str:
        """Every decision as JSONL (sorted keys: byte-stable per seed)."""
        return "\n".join(d.to_json() for d in self.decisions)

    def counts(self) -> Dict[str, int]:
        """Decision totals by serving arm plus shadow duplicates."""
        by_arm = {"stable": 0, "canary": 0, "shadow": 0}
        with self._lock:
            for decision in self.decisions:
                by_arm[decision.arm] += 1
                if decision.shadow is not None:
                    by_arm["shadow"] += 1
        return by_arm


class RolloutMiddleware(Middleware):
    """Gateway stage routing predict traffic across tenant model versions.

    ``resolve`` maps a tenant address to its active version when no rollout
    entry exists (pass ``ModelRegistry.resolve``); requests that are mid-
    rollout follow the table's seeded split instead.  Shadow duplicates are
    dispatched through the same ``call_next`` chain *after* the primary
    response is taken, and their responses are discarded — the primary
    bytes cannot depend on them.
    """

    def __init__(
        self,
        table: RolloutTable,
        resolve: Optional[Callable[[str], str]] = None,
    ) -> None:
        self.table = table
        self.resolve = resolve
        self.routed = 0  #: requests whose model_id was rewritten
        self.shadowed = 0  #: shadow duplicates dispatched
        self.shadow_failures = 0  #: shadow duplicates that errored (ignored)
        self._lock = threading.Lock()

    def _serve_id(self, tenant: str, request_id) -> tuple:
        decision = self.table.decide(tenant, request_id)
        if decision is not None:
            return decision.serve, decision.shadow
        if self.resolve is not None:
            return self.resolve(tenant), None
        return tenant, None

    def handle(self, request, call_next):
        if request.method != "predict" or not isinstance(request.payload, dict):
            return call_next(request)
        tenant = request.payload.get("model_id")
        if not isinstance(tenant, str):
            return call_next(request)
        serve_id, shadow_id = self._serve_id(tenant, request.request_id)
        routed_request = request
        if serve_id != tenant:
            routed_request = self._rewrite(request, serve_id)
            with self._lock:
                self.routed += 1
        response = call_next(routed_request)
        if shadow_id is not None:
            with self._lock:
                self.shadowed += 1
            try:
                call_next(self._rewrite(request, shadow_id))
            except Exception:
                # A failing canary must never take down stable traffic.
                with self._lock:
                    self.shadow_failures += 1
        return response

    @staticmethod
    def _rewrite(request, model_id: str):
        """A copy of the envelope addressing ``model_id`` (payload copied)."""
        payload = dict(request.payload)
        payload["model_id"] = model_id
        return type(request)(
            method=request.method,
            payload=payload,
            request_id=request.request_id,
            tenant=request.tenant,
            deadline_ms=request.deadline_ms,
            version=request.version,
            trace=request.trace,
        )

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "active_rollouts": len(self.table.active()),
                "decisions": self.table.seq,
                "routed": self.routed,
                "shadowed": self.shadowed,
                "shadow_failures": self.shadow_failures,
            }
