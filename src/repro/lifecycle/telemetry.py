"""Per-tenant served-head telemetry: the lifecycle plane's measurement side.

:class:`AccuracyTracker` scores every served prediction against the
workload's true-class label: a *hit* is a label inside the served version's
class head (the ``classes`` list in its registry metadata).  Hits are kept
in bounded per-(tenant, arm) windows — ``stable`` for the incumbent
version, ``canary`` for the one under rollout — so a canary is judged on
its own recent traffic, never on history the old version produced.

The tracker also keeps a per-tenant window of the *labels themselves*:
when drift is confirmed, :meth:`head_estimate` is the re-personalization
target — the most frequent recently-requested classes, with deterministic
(count desc, class asc) tie-breaking.

:class:`LifecycleStatsSource` splices the tracker's rows into any unified
stats schema as a ``tenants`` block, which :func:`repro.metrics.record_sample`
maps to the ``tenant_accuracy{tenant}`` / ``tenant_staleness_s{tenant}``
gauges — the series the stock ``accuracy_drop`` alert rule and the
:class:`~repro.lifecycle.detector.DriftDetector` watch.  The schema treats
its blocks as a floor, not a ceiling, so every existing consumer of the
source's stats keeps working untouched.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["AccuracyTracker", "LifecycleStatsSource"]


class AccuracyTracker:
    """Windowed served-head accuracy + recent-label histograms per tenant."""

    def __init__(self, window: int = 32, label_window: Optional[int] = None) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        #: The label history runs longer than the accuracy window: accuracy
        #: must react fast (small window), while the head estimate only
        #: reads labels newest-first, so extra history can't go stale on it.
        self.label_window = label_window if label_window is not None else 2 * window
        self._hits: Dict[Tuple[str, str], Deque[bool]] = {}
        self._labels: Dict[str, Deque[Tuple[int, bool]]] = {}
        self._lock = threading.Lock()
        self.observed = 0

    def record(self, tenant: str, hit: bool, arm: str = "stable",
               label: Optional[int] = None,
               label_hit: Optional[bool] = None) -> None:
        """Score one served request for ``tenant`` on serving arm ``arm``.

        ``label_hit`` is the label's verdict against the tenant's *active*
        head (defaults to ``hit``): during a split rollout the arm score is
        the canary's, but drift-target estimation needs to know whether the
        incumbent head covers the label.
        """
        with self._lock:
            key = (tenant, arm)
            if key not in self._hits:
                self._hits[key] = deque(maxlen=self.window)
            self._hits[key].append(bool(hit))
            if label is not None:
                if tenant not in self._labels:
                    self._labels[tenant] = deque(maxlen=self.label_window)
                covered = hit if label_hit is None else label_hit
                self._labels[tenant].append((int(label), bool(covered)))
            self.observed += 1

    def accuracy(self, tenant: str, arm: str = "stable") -> Optional[float]:
        """Window accuracy for (tenant, arm); ``None`` with no samples."""
        with self._lock:
            window = self._hits.get((tenant, arm))
            if not window:
                return None
            return sum(window) / len(window)

    def samples(self, tenant: str, arm: str = "stable") -> int:
        with self._lock:
            window = self._hits.get((tenant, arm))
            return len(window) if window else 0

    def reset_arm(self, tenant: str, arm: str) -> None:
        """Drop an arm's window (a promoted canary starts a fresh score)."""
        with self._lock:
            self._hits.pop((tenant, arm), None)

    def reset_tenant(self, tenant: str) -> None:
        """Drop every window for ``tenant`` (post-promotion clean slate).

        Labels go too: their covered-flags were computed against the head
        that just got replaced, so they'd corrupt the next cycle's
        miss-first target walk.
        """
        with self._lock:
            for key in [k for k in self._hits if k[0] == tenant]:
                self._hits.pop(key)
            self._labels.pop(tenant, None)

    def head_estimate(self, tenant: str, head_size: int) -> List[int]:
        """The ``head_size`` most *recently distinct* labels, deterministically.

        Recency-first: walk newest to oldest collecting distinct classes,
        so older (possibly pre-drift) labels are consulted only if recent
        traffic hasn't yet shown ``head_size`` distinct classes.  Pure
        function of the label window.
        """
        with self._lock:
            labels = [label for label, _ in self._labels.get(tenant, ())]
        picked: List[int] = []
        for label in reversed(labels):
            if label not in picked:
                picked.append(label)
            if len(picked) >= head_size:
                break
        return sorted(picked)

    def target_estimate(self, tenant: str, head_size: int) -> List[int]:
        """The drift re-personalization target, or ``[]`` while evidence is thin.

        The problem with any naive estimate at drift-detection time: the
        label window still holds pre-drift traffic, and one stale class in
        the target burns a whole canary cycle.  The hit flags separate the
        phases — a label the *active* head doesn't cover (a miss) is
        post-drift evidence by construction.  So, newest to oldest:

        1. distinct **missed** classes — the new head's members the old one
           lacks; a full ``head_size`` of them is the complete answer;
        2. distinct **hit** classes observed *since* the oldest counted
           miss — classes the old and new heads share (partial drift);
        3. if still short: return ``[]`` (defer — the detector retries next
           tick with fresher labels).  Sole exception: a *full* window of
           nothing but misses means the new head really is smaller than the
           old one — then the short target stands.  (Anything looser
           mis-fires: a burst of 6 post-drift misses covers only 2 of 3 new
           classes about a quarter of the time.)

        Pure function of the label window, like everything here.
        """
        with self._lock:
            pairs = list(self._labels.get(tenant, ()))
        pairs.reverse()  # newest first
        target: List[int] = []
        oldest_miss = -1
        for rank, (label, covered) in enumerate(pairs):
            if not covered and label not in target:
                target.append(label)
                oldest_miss = rank
                if len(target) >= head_size:
                    return sorted(target)
        for label, covered in pairs[:max(0, oldest_miss)]:
            if covered and label not in target:
                target.append(label)
                if len(target) >= head_size:
                    return sorted(target)
        misses = sum(1 for _, covered in pairs if not covered)
        if target and misses == len(pairs) == self.label_window:
            return sorted(target)
        return []

    def tenants(self) -> List[str]:
        with self._lock:
            seen = {t for t, _ in self._hits} | set(self._labels)
        return sorted(seen)


class LifecycleStatsSource:
    """Wrap a stats source, adding the per-tenant ``tenants`` block.

    ``rows`` is a zero-argument callable returning the per-tenant rows
    (typically :meth:`LifecycleManager.tenant_rows`); everything else in
    the snapshot is the wrapped source's, untouched.
    """

    def __init__(self, base, rows: Callable[[], List[Dict[str, object]]]) -> None:
        if not hasattr(base, "stats"):
            raise TypeError(
                f"stats source {type(base).__name__} has no stats() method"
            )
        self.base = base
        self.rows = rows

    def stats(self) -> Dict[str, object]:
        stats = dict(self.base.stats())
        stats["tenants"] = self.rows()
        return stats
