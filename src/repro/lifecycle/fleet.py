"""Versioned drift fleets: synthetic tenants whose heads can be re-pruned.

Builds on :func:`repro.loadgen.synthetic_fleet` with the two extras the
lifecycle loop needs:

* every tenant's v1 record carries a ``classes`` head in its metadata,
  aligned with the tenant's *phase-0* hot classes from a
  :class:`~repro.loadgen.ClassDriftPopularity` schedule — so at the start
  of a drift scenario every tenant serves its traffic perfectly, and the
  accuracy cliff that follows is entirely the drift's doing;
* :func:`synthetic_repersonalizer` returns the ``repersonalize`` callback a
  :class:`~repro.lifecycle.manager.LifecycleManager` calls on drift: a
  magnitude-masked rebuild (the same construction as the fleet) whose seed
  folds in the tenant index *and* version number, so successive versions of
  one tenant have observably different weights — which is what makes
  "rollback restores bit-exact old-version responses" a real claim.
"""

from __future__ import annotations

import hashlib
from typing import Callable, List, Tuple

import numpy as np

from ..loadgen.fleet import synthetic_fleet
from ..loadgen.popularity import ClassDriftPopularity
from ..nn.models import build_model
from ..nn.models.base import prunable_layers
from ..serve.registry import ModelRegistry

__all__ = ["drift_fleet", "synthetic_repersonalizer"]


def _magnitude_masked(model_name: str, num_classes: int, input_size: int,
                      sparsity: float, seed: int):
    """One magnitude-sparsified model (the synthetic_fleet construction)."""
    model = build_model(
        model_name, num_classes=num_classes, input_size=input_size, seed=seed
    )
    for layer in prunable_layers(model).values():
        w = layer.weight.data
        keep = (np.abs(w) >= np.quantile(np.abs(w), sparsity)).astype(np.float64)
        layer.weight.set_mask(keep)
    return model


def drift_fleet(
    popularity: ClassDriftPopularity,
    tenants: int = 8,
    seed: int = 0,
    input_size: int = 12,
    sparsity: float = 0.7,
    model_name: str = "resnet_tiny",
    backend: str = "fast",
) -> Tuple[ModelRegistry, List[str]]:
    """A synthetic fleet whose v1 heads match the drift schedule's phase 0."""
    registry, model_ids = synthetic_fleet(
        tenants=tenants,
        seed=seed,
        num_classes=popularity.num_classes,
        input_size=input_size,
        sparsity=sparsity,
        model_name=model_name,
        backend=backend,
    )
    for i, model_id in enumerate(model_ids):
        registry.get(model_id).metadata.update(
            classes=sorted(popularity.hot_classes(i, 0)),
            version=1,
            personalized_at=0.0,
        )
    return registry, model_ids


def synthetic_repersonalizer(
    registry: ModelRegistry,
    seed: int = 0,
    sparsity: float = 0.7,
    model_name: str = "resnet_tiny",
) -> Callable:
    """The ``repersonalize`` callback for synthetic drift fleets.

    Rebuilds the tenant's architecture (num_classes / input_size read from
    its base record) with seed ``seed + 7919 * version + tenant_index`` and
    the fleet's magnitude-mask construction, and hands back the module plus
    a metadata head of ``target_classes`` — deterministic per (seed,
    tenant, version), different weights per version.
    """

    def repersonalize(tenant: str, target_classes, version: int):
        record = registry.get(tenant)
        suffix = tenant.rsplit("-", 1)[-1]
        tenant_index = (
            int(suffix)
            if suffix.isdigit()
            else int.from_bytes(
                hashlib.sha256(tenant.encode()).digest()[:4], "big"
            ) % 7919
        )
        module = _magnitude_masked(
            model_name,
            num_classes=record.num_classes,
            input_size=record.input_size,
            sparsity=sparsity,
            seed=seed + 7919 * version + tenant_index,
        )
        return module, {"classes": sorted(int(c) for c in target_classes)}

    return repersonalize
