"""DriftDetector: per-tenant accuracy streaks over the telemetry feed.

The detector is wired exactly like the :class:`~repro.autoscale.Autoscaler`:
:meth:`attach` subscribes its :meth:`observe` to a
:class:`~repro.metrics.TelemetryPoller`, so every poll becomes one detector
tick; :meth:`wire` optionally subscribes :meth:`on_alert` to an
:class:`~repro.metrics.SLOMonitor` carrying the stock ``accuracy_drop``
rule, for deployments that want the monitor's debounce to be the trigger.

A tick reads the ``tenants`` stats block (what
:class:`~repro.lifecycle.telemetry.LifecycleStatsSource` splices in) and
keeps, per tenant, a consecutive-breach streak with a minimum-sample floor
and a post-detection cooldown — the same debounce shape as the autoscaler's
per-rule streaks.  When a streak matures it hands the tenant to the
:class:`~repro.lifecycle.manager.LifecycleManager` (``on_drift``); tenants
mid-canary get their verdict evaluated instead.  The detector holds no
policy of its own: thresholds come from the manager's
:class:`~repro.lifecycle.manager.LifecyclePolicy`, so there is exactly one
place to tune the loop.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from .manager import LifecycleManager

__all__ = ["DriftDetector"]


class DriftDetector:
    """Turns per-tenant accuracy telemetry into lifecycle triggers."""

    def __init__(
        self,
        manager: LifecycleManager,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.manager = manager
        self.policy = manager.policy
        self.clock = clock
        self.ticks = 0
        self.detections = 0  #: drift signals the manager accepted
        self.verdicts = 0  #: canary promotions + rollbacks triggered here
        self._streaks: Dict[str, int] = {}
        self._cooldown_until: Dict[str, int] = {}

    # -- wiring (mirrors Autoscaler.attach / .wire) ---------------------------
    def attach(self, poller) -> "DriftDetector":
        """Subscribe to a TelemetryPoller: every poll is one detector tick."""
        poller.subscribe(self.observe)
        return self

    def wire(self, monitor) -> "DriftDetector":
        """Subscribe to an SLOMonitor's alert stream (``accuracy-drop``)."""
        monitor.subscribe(self.on_alert)
        return self

    # -- the tick -------------------------------------------------------------
    def observe(self, stats: Dict[str, object], now: Optional[float] = None) -> None:
        """Poller callback: one tick over the snapshot's ``tenants`` block."""
        rows = stats.get("tenants") or []
        self.tick([row for row in rows if isinstance(row, dict)], now=now)

    def tick(self, rows: List[Dict[str, object]], now: Optional[float] = None) -> None:
        t = self.clock() if now is None else float(now)
        self.ticks += 1
        for row in sorted(rows, key=lambda r: str(r.get("tenant"))):
            tenant = row.get("tenant")
            if not isinstance(tenant, str):
                continue
            state = self.manager.state(tenant)
            if state == "CANARYING":
                if self.manager.evaluate_canary(tenant, now=t) is not None:
                    self.verdicts += 1
                continue
            if state != "SERVING":
                continue
            accuracy = row.get("accuracy")
            requests = row.get("requests", 0)
            if not isinstance(accuracy, (int, float)) or not isinstance(
                requests, (int, float)
            ):
                continue
            if requests < self.policy.min_requests:
                self._streaks[tenant] = 0
                continue
            if accuracy < self.policy.min_accuracy:
                self._streaks[tenant] = self._streaks.get(tenant, 0) + 1
            else:
                self._streaks[tenant] = 0
                continue
            if self._streaks[tenant] < self.policy.for_samples:
                continue
            if self.ticks < self._cooldown_until.get(tenant, 0):
                continue
            evidence = {
                "accuracy": round(float(accuracy), 6),
                "requests": int(requests),
                "streak": self._streaks[tenant],
                "threshold": self.policy.min_accuracy,
                "tick": self.ticks,
            }
            if self.manager.on_drift(
                tenant, reason="accuracy_drop", evidence=evidence, now=t
            ) is not None:
                # Only an *accepted* signal burns the streak and starts the
                # cooldown; a deferred one (manager waiting for fresher
                # labels) keeps the matured streak so the next tick retries.
                self.detections += 1
                self._streaks[tenant] = 0
                self._cooldown_until[tenant] = self.ticks + self.policy.cooldown_ticks

    # -- the alert path -------------------------------------------------------
    def on_alert(self, alert) -> None:
        """Treat a firing ``accuracy-drop`` alert as a matured drift signal.

        The SLO monitor already debounced (``for_samples`` consecutive
        polls below the floor), so the alert bypasses the local streaks;
        the manager's SERVING-state guard keeps double-wired setups (both
        :meth:`attach` and :meth:`wire`) from opening two cycles.
        """
        if getattr(alert, "rule", None) != "accuracy-drop":
            return
        if getattr(alert, "state", None) != "firing":
            return
        tenant = dict(alert.labels).get("tenant")
        if not tenant:
            return
        evidence = {
            "accuracy": round(float(alert.value), 6),
            "threshold": float(alert.threshold),
            "alert": alert.rule,
        }
        if self.manager.on_drift(
            tenant, reason="accuracy_drop_alert", evidence=evidence, now=alert.at
        ) is not None:
            self.detections += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "ticks": self.ticks,
            "detections": self.detections,
            "verdicts": self.verdicts,
            "streaks": {t: s for t, s in sorted(self._streaks.items()) if s},
        }
