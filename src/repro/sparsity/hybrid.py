"""The CRISP hybrid structured sparsity pattern.

Hybrid sparsity composes the two structured patterns of the paper:

* fine-grained **N:M** sparsity *inside* retained blocks (every group of M
  consecutive elements along the reduction dimension keeps N), and
* coarse-grained **block** sparsity that removes whole ``B x B`` tiles, with
  the same number of retained blocks in every block-row.

The resulting average sparsity follows the paper's formula (Sec. III-A):

    sparsity = 1 - (K' / K) * (N / M)

where ``K`` is the number of columns of the reshaped matrix and ``K'`` the
number of retained (non-zero) columns, i.e. ``K'/K`` is the block keep
ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .block import BlockGrid, block_scores, block_mask_from_keep, uniform_block_mask
from .masks import check_block_uniformity, check_nm_compliance, combine_masks, density
from .nm import NMConfig, nm_mask

__all__ = [
    "HybridSparsityConfig",
    "hybrid_average_sparsity",
    "keep_blocks_for_target_sparsity",
    "hybrid_mask",
    "HybridMaskInfo",
]


@dataclass(frozen=True)
class HybridSparsityConfig:
    """Static description of a hybrid sparsity pattern.

    Attributes
    ----------
    n, m:
        Fine-grained N:M ratio applied inside retained blocks.
    block_size:
        Side length of the square blocks removed by coarse-grained pruning.
    """

    n: int = 2
    m: int = 4
    block_size: int = 16

    def __post_init__(self) -> None:
        NMConfig(self.n, self.m)  # validates n, m
        if self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {self.block_size}")

    @property
    def nm(self) -> NMConfig:
        return NMConfig(self.n, self.m)

    def average_sparsity(self, block_keep_ratio: float) -> float:
        """Average sparsity of the combined pattern at a given block keep ratio."""
        return hybrid_average_sparsity(self.n, self.m, block_keep_ratio)

    def __str__(self) -> str:
        return f"{self.n}:{self.m}+B{self.block_size}"


def hybrid_average_sparsity(n: int, m: int, block_keep_ratio: float) -> float:
    """Paper formula: ``1 - (K'/K) * (N/M)``."""
    if not 0.0 <= block_keep_ratio <= 1.0:
        raise ValueError(f"block_keep_ratio must be in [0, 1], got {block_keep_ratio}")
    return 1.0 - block_keep_ratio * (n / m)


def keep_blocks_for_target_sparsity(
    target_sparsity: float, n: int, m: int, block_cols: int
) -> int:
    """Number of blocks per row to keep so the hybrid sparsity reaches ``target_sparsity``.

    Solves ``1 - (k / block_cols) * (N/M) >= target`` for the largest integer
    ``k`` (clamped to ``[1, block_cols]``) — the block budget used by the
    iterative CRISP schedule.  Raises if the target is below the sparsity the
    N:M pattern alone provides (in that regime no blocks need pruning).
    """
    if not 0.0 <= target_sparsity < 1.0:
        raise ValueError(f"target_sparsity must be in [0, 1), got {target_sparsity}")
    nm_density = n / m
    keep_ratio_needed = (1.0 - target_sparsity) / nm_density
    keep_ratio_needed = min(1.0, keep_ratio_needed)
    k = int(np.floor(keep_ratio_needed * block_cols + 1e-9))
    return int(np.clip(k, 1, block_cols))


@dataclass
class HybridMaskInfo:
    """Diagnostics returned alongside a hybrid mask."""

    config: HybridSparsityConfig
    keep_blocks_per_row: int
    block_cols: int
    achieved_sparsity: float
    nm_compliant: bool
    uniform_rows: bool

    @property
    def block_keep_ratio(self) -> float:
        return self.keep_blocks_per_row / self.block_cols


def hybrid_mask(
    score_matrix: np.ndarray,
    config: HybridSparsityConfig,
    target_sparsity: Optional[float] = None,
    keep_blocks_per_row: Optional[int] = None,
) -> Tuple[np.ndarray, HybridMaskInfo]:
    """Build a hybrid N:M + uniform-block mask from a saliency matrix.

    Exactly one of ``target_sparsity`` / ``keep_blocks_per_row`` must be
    provided.  The N:M mask is computed first (on the raw scores), then block
    scores are aggregated over the *surviving* elements and whole blocks are
    removed uniformly per row — the same ordering as Algorithm 1 (steps 3 and
    4 of Fig. 5).

    Returns
    -------
    (mask, info):
        The element-wise binary mask and a :class:`HybridMaskInfo` record.
    """
    scores = np.abs(np.asarray(score_matrix, dtype=np.float64))
    if scores.ndim != 2:
        raise ValueError(f"Expected a 2-D score matrix, got shape {scores.shape}")

    grid = BlockGrid.for_matrix(scores, config.block_size)
    if (target_sparsity is None) == (keep_blocks_per_row is None):
        raise ValueError("Provide exactly one of target_sparsity or keep_blocks_per_row")
    if keep_blocks_per_row is None:
        keep_blocks_per_row = keep_blocks_for_target_sparsity(
            target_sparsity, config.n, config.m, grid.block_cols
        )
    if not 1 <= keep_blocks_per_row <= grid.block_cols:
        raise ValueError(
            f"keep_blocks_per_row must be in [1, {grid.block_cols}], got {keep_blocks_per_row}"
        )

    fine_mask = nm_mask(scores, config.n, config.m, axis=0)
    surviving_scores = scores * fine_mask
    coarse_mask = uniform_block_mask(surviving_scores, config.block_size, keep_blocks_per_row)
    mask = combine_masks(fine_mask, coarse_mask)

    info = HybridMaskInfo(
        config=config,
        keep_blocks_per_row=keep_blocks_per_row,
        block_cols=grid.block_cols,
        achieved_sparsity=1.0 - density(mask),
        nm_compliant=check_nm_compliance(mask, config.n, config.m, axis=0),
        uniform_rows=check_block_uniformity(mask, config.block_size),
    )
    return mask, info
