"""Mask utilities shared by the structured-sparsity generators.

A *mask* here is always a 2-D binary (0/1 float) array shaped like the
reshaped weight matrix ``(HWR, S)`` of a layer — rows are kernel-position ×
input-channel coordinates, columns are output channels — matching the matrix
transformation step (step 1) of the CRISP framework.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "validate_mask",
    "density",
    "sparsity",
    "check_nm_compliance",
    "check_block_uniformity",
    "combine_masks",
    "pad_to_multiple",
    "crop_to_shape",
]


def validate_mask(mask: np.ndarray) -> np.ndarray:
    """Check that ``mask`` is a 2-D binary array and return it as float64."""
    mask = np.asarray(mask)
    if mask.ndim != 2:
        raise ValueError(f"Expected a 2-D mask, got shape {mask.shape}")
    unique = np.unique(mask)
    if not np.all(np.isin(unique, (0.0, 1.0))):
        raise ValueError("Mask must be binary (only 0s and 1s)")
    return mask.astype(np.float64)


def density(mask: np.ndarray) -> float:
    """Fraction of retained (non-zero) entries."""
    mask = np.asarray(mask)
    if mask.size == 0:
        raise ValueError("Empty mask")
    return float(np.count_nonzero(mask)) / mask.size


def sparsity(mask: np.ndarray) -> float:
    """Fraction of pruned (zero) entries."""
    return 1.0 - density(mask)


def check_nm_compliance(mask: np.ndarray, n: int, m: int, axis: int = 0) -> bool:
    """Check that every group of ``m`` consecutive entries along ``axis`` keeps at most ``n``.

    The N:M constraint in CRISP (and NVIDIA sparse tensor cores) applies to
    groups of ``m`` consecutive elements along the reduction dimension of the
    GEMM — the *row* dimension of the reshaped ``(HWR, S)`` weight matrix.
    Groups that fall entirely inside a pruned block trivially comply (they
    keep zero values).
    """
    mask = validate_mask(mask)
    if axis not in (0, 1):
        raise ValueError("axis must be 0 or 1")
    if axis == 1:
        mask = mask.T
    rows, cols = mask.shape
    if rows % m != 0:
        # Trailing partial group: check full groups only.
        full = (rows // m) * m
        mask = mask[:full, :]
        rows = full
    if rows == 0:
        return True
    grouped = mask.reshape(rows // m, m, cols)
    per_group_nonzero = grouped.sum(axis=1)
    return bool(np.all(per_group_nonzero <= n))


def check_block_uniformity(mask: np.ndarray, block_size: int) -> bool:
    """Check the CRISP load-balancing invariant: equal retained blocks per block-row.

    The mask is partitioned into ``block_size x block_size`` tiles (after
    implicit zero padding); a tile counts as *retained* if any of its entries
    is non-zero.  The invariant of Algorithm 1 is that every block-row keeps
    the same number of blocks.
    """
    mask = validate_mask(mask)
    padded = pad_to_multiple(mask, block_size)
    block_rows = padded.shape[0] // block_size
    block_cols = padded.shape[1] // block_size
    tiles = padded.reshape(block_rows, block_size, block_cols, block_size)
    tile_nonzero = tiles.transpose(0, 2, 1, 3).reshape(block_rows, block_cols, -1).sum(axis=2)
    retained_per_row = (tile_nonzero > 0).sum(axis=1)
    return bool(np.all(retained_per_row == retained_per_row[0]))


def combine_masks(*masks: np.ndarray) -> np.ndarray:
    """Element-wise AND of several masks (all must share a shape)."""
    if not masks:
        raise ValueError("combine_masks() requires at least one mask")
    result = validate_mask(masks[0])
    for mask in masks[1:]:
        mask = validate_mask(mask)
        if mask.shape != result.shape:
            raise ValueError(f"Mask shape mismatch: {mask.shape} vs {result.shape}")
        result = result * mask
    return result


def pad_to_multiple(matrix: np.ndarray, multiple: int, value: float = 0.0) -> np.ndarray:
    """Zero-pad a 2-D matrix so both dimensions are multiples of ``multiple``."""
    if multiple <= 0:
        raise ValueError("multiple must be positive")
    rows, cols = matrix.shape
    pad_rows = (-rows) % multiple
    pad_cols = (-cols) % multiple
    if pad_rows == 0 and pad_cols == 0:
        return matrix
    return np.pad(matrix, ((0, pad_rows), (0, pad_cols)), constant_values=value)


def crop_to_shape(matrix: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
    """Crop a (possibly padded) matrix back to ``shape``."""
    rows, cols = shape
    if matrix.shape[0] < rows or matrix.shape[1] < cols:
        raise ValueError(f"Cannot crop {matrix.shape} to larger shape {shape}")
    return matrix[:rows, :cols]
