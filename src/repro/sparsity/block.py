"""Coarse-grained block sparsity.

The weight matrix is partitioned into a grid of ``B x B`` tiles; pruning
removes entire tiles.  CRISP's key structural constraint (Sec. III-A / III-C
of the paper) is *uniform block pruning*: every block-row of the grid keeps
the same number of non-zero blocks, which gives perfect workload balance on
the accelerator and a compact Blocked-Ellpack metadata encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .masks import pad_to_multiple, validate_mask

__all__ = [
    "BlockGrid",
    "partition_into_blocks",
    "block_scores",
    "block_mask_from_keep",
    "uniform_block_mask",
    "topk_block_mask",
    "blocks_to_elementwise_mask",
    "SUPPORTED_BLOCK_SIZES",
]

#: Block sizes evaluated by the paper (Fig. 3 / Fig. 8).
SUPPORTED_BLOCK_SIZES: Tuple[int, ...] = (4, 8, 16, 32, 64)


@dataclass(frozen=True)
class BlockGrid:
    """Geometry of a block partition of a 2-D matrix.

    Attributes
    ----------
    rows, cols:
        Shape of the original (unpadded) matrix.
    block_size:
        Side length ``B`` of the square tiles.
    block_rows, block_cols:
        Number of tiles along each dimension (computed on the padded matrix).
    """

    rows: int
    cols: int
    block_size: int

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("matrix dimensions must be positive")

    @property
    def block_rows(self) -> int:
        return -(-self.rows // self.block_size)

    @property
    def block_cols(self) -> int:
        return -(-self.cols // self.block_size)

    @property
    def padded_shape(self) -> Tuple[int, int]:
        return (self.block_rows * self.block_size, self.block_cols * self.block_size)

    @property
    def num_blocks(self) -> int:
        return self.block_rows * self.block_cols

    @classmethod
    def for_matrix(cls, matrix: np.ndarray, block_size: int) -> "BlockGrid":
        if matrix.ndim != 2:
            raise ValueError(f"Expected a 2-D matrix, got shape {matrix.shape}")
        return cls(rows=matrix.shape[0], cols=matrix.shape[1], block_size=block_size)


def partition_into_blocks(matrix: np.ndarray, block_size: int) -> Tuple[np.ndarray, BlockGrid]:
    """Partition a 2-D matrix into tiles.

    Returns ``(tiles, grid)`` where ``tiles`` has shape
    ``(block_rows, block_cols, block_size, block_size)``; the matrix is
    zero-padded on the bottom/right when its shape is not a multiple of the
    block size.
    """
    grid = BlockGrid.for_matrix(matrix, block_size)
    padded = pad_to_multiple(matrix, block_size)
    tiles = padded.reshape(
        grid.block_rows, block_size, grid.block_cols, block_size
    ).transpose(0, 2, 1, 3)
    return tiles, grid


def block_scores(score_matrix: np.ndarray, block_size: int) -> Tuple[np.ndarray, BlockGrid]:
    """Per-block saliency: the sum of element scores within each tile.

    This is line 5 of Algorithm 1 (``s_j = sum_i |T_w^i|`` over the block's
    elements).  Returns ``(scores, grid)`` with ``scores`` of shape
    ``(block_rows, block_cols)``.
    """
    tiles, grid = partition_into_blocks(np.abs(score_matrix), block_size)
    scores = tiles.reshape(grid.block_rows, grid.block_cols, -1).sum(axis=2)
    return scores, grid


def block_mask_from_keep(keep: np.ndarray, grid: BlockGrid) -> np.ndarray:
    """Expand a per-block keep matrix into an element-wise mask of the original shape."""
    keep = np.asarray(keep, dtype=np.float64)
    if keep.shape != (grid.block_rows, grid.block_cols):
        raise ValueError(
            f"Keep matrix shape {keep.shape} != grid shape "
            f"({grid.block_rows}, {grid.block_cols})"
        )
    expanded = np.kron(keep, np.ones((grid.block_size, grid.block_size)))
    return expanded[: grid.rows, : grid.cols]


def blocks_to_elementwise_mask(keep: np.ndarray, grid: BlockGrid) -> np.ndarray:
    """Alias of :func:`block_mask_from_keep` (kept for API symmetry)."""
    return block_mask_from_keep(keep, grid)


def topk_block_mask(score_matrix: np.ndarray, block_size: int, keep_ratio: float) -> np.ndarray:
    """Plain (non-uniform) block pruning: keep the globally top-k scoring blocks.

    This is the "coarse-grained block sparsity" baseline of Fig. 3 — it does
    *not* enforce the uniform blocks-per-row constraint.
    """
    if not 0.0 < keep_ratio <= 1.0:
        raise ValueError(f"keep_ratio must be in (0, 1], got {keep_ratio}")
    scores, grid = block_scores(score_matrix, block_size)
    flat = scores.reshape(-1)
    keep_count = max(1, int(round(keep_ratio * flat.size)))
    threshold_idx = np.argsort(flat)[::-1][:keep_count]
    keep = np.zeros_like(flat)
    keep[threshold_idx] = 1.0
    return block_mask_from_keep(keep.reshape(scores.shape), grid)


def uniform_block_mask(
    score_matrix: np.ndarray, block_size: int, keep_blocks_per_row: int
) -> np.ndarray:
    """CRISP-style uniform block pruning: keep exactly ``k`` blocks in every block-row.

    Within each block-row the ``keep_blocks_per_row`` highest-scoring tiles
    are retained; all rows keep the same count, which is the load-balancing
    invariant validated by
    :func:`repro.sparsity.masks.check_block_uniformity`.
    """
    scores, grid = block_scores(score_matrix, block_size)
    if not 1 <= keep_blocks_per_row <= grid.block_cols:
        raise ValueError(
            f"keep_blocks_per_row must be in [1, {grid.block_cols}], got {keep_blocks_per_row}"
        )
    keep = np.zeros_like(scores)
    top_cols = np.argsort(scores, axis=1)[:, ::-1][:, :keep_blocks_per_row]
    row_idx = np.arange(grid.block_rows)[:, None]
    keep[row_idx, top_cols] = 1.0
    return block_mask_from_keep(keep, grid)


def retained_blocks_per_row(mask: np.ndarray, block_size: int) -> List[int]:
    """Count retained (any-non-zero) blocks in each block-row of an element mask."""
    mask = validate_mask(mask)
    tiles, grid = partition_into_blocks(mask, block_size)
    nonzero = tiles.reshape(grid.block_rows, grid.block_cols, -1).sum(axis=2) > 0
    return nonzero.sum(axis=1).astype(int).tolist()
