"""Fine-grained N:M structured sparsity.

An N:M mask keeps at most ``N`` non-zero values in every group of ``M``
consecutive elements along the GEMM reduction dimension.  In the reshaped
``(HWR, S)`` weight layout used throughout this repository the reduction
dimension is the *row* axis, so groups are formed by ``M`` consecutive rows
within each output-channel column — the layout NVIDIA's 2:4 sparse tensor
cores accelerate and that CRISP generalises to 1:4 and 3:4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .masks import validate_mask

__all__ = ["NMConfig", "nm_mask", "apply_nm", "nm_theoretical_sparsity", "SUPPORTED_NM_PATTERNS"]

#: N:M patterns supported by the CRISP-STC accelerator model.
SUPPORTED_NM_PATTERNS: Tuple[Tuple[int, int], ...] = ((1, 4), (2, 4), (3, 4), (4, 4), (2, 8), (4, 8))


@dataclass(frozen=True)
class NMConfig:
    """An N:M sparsity configuration.

    ``n`` non-zero values are kept out of every ``m`` consecutive values.
    ``n == m`` denotes the dense pattern (no fine-grained pruning).
    """

    n: int
    m: int

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise ValueError(f"N and M must be positive, got {self.n}:{self.m}")
        if self.n > self.m:
            raise ValueError(f"N must not exceed M, got {self.n}:{self.m}")

    @property
    def sparsity(self) -> float:
        """Fraction of weights removed by the fine-grained pattern alone."""
        return 1.0 - self.n / self.m

    @property
    def density(self) -> float:
        return self.n / self.m

    @property
    def is_dense(self) -> bool:
        return self.n == self.m

    def __str__(self) -> str:
        return f"{self.n}:{self.m}"


def nm_theoretical_sparsity(n: int, m: int) -> float:
    """Sparsity achieved by an exact N:M pattern: ``1 - N/M``."""
    return NMConfig(n, m).sparsity


def nm_mask(scores: np.ndarray, n: int, m: int, axis: int = 0) -> np.ndarray:
    """Build an N:M mask keeping the top-``n`` scores per group of ``m``.

    Parameters
    ----------
    scores:
        2-D saliency matrix (higher = more important), same shape as the
        reshaped weight matrix.
    n, m:
        The N:M ratio.
    axis:
        Axis along which consecutive elements are grouped (0 = rows, the
        reduction dimension of the reshaped layout).

    Returns
    -------
    np.ndarray
        Binary mask of the same shape as ``scores``.  Trailing elements of a
        partial final group are kept proportionally (top-``ceil(n * g / m)``
        of a group of size ``g``).
    """
    config = NMConfig(n, m)
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"Expected 2-D scores, got shape {scores.shape}")
    if config.is_dense:
        return np.ones_like(scores)

    transposed = axis == 1
    if transposed:
        scores = scores.T

    rows, cols = scores.shape
    mask = np.zeros_like(scores)

    full_rows = (rows // m) * m
    if full_rows > 0:
        grouped = scores[:full_rows].reshape(full_rows // m, m, cols)
        # Rank within each group: keep the n largest scores.
        order = np.argsort(grouped, axis=1)
        keep = order[:, m - n :, :]
        group_mask = np.zeros_like(grouped)
        np.put_along_axis(group_mask, keep, 1.0, axis=1)
        mask[:full_rows] = group_mask.reshape(full_rows, cols)

    # Partial trailing group (rows not divisible by m).
    remainder = rows - full_rows
    if remainder > 0:
        tail = scores[full_rows:]
        keep_count = max(1, int(np.ceil(n * remainder / m)))
        keep_count = min(keep_count, remainder)
        order = np.argsort(tail, axis=0)
        keep = order[remainder - keep_count :, :]
        tail_mask = np.zeros_like(tail)
        np.put_along_axis(tail_mask, keep, 1.0, axis=0)
        mask[full_rows:] = tail_mask

    if transposed:
        mask = mask.T
    return mask


def apply_nm(weight: np.ndarray, n: int, m: int, axis: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Magnitude-based N:M pruning of a weight matrix.

    Returns ``(pruned_weight, mask)``.
    """
    mask = nm_mask(np.abs(np.asarray(weight, dtype=np.float64)), n, m, axis=axis)
    mask = validate_mask(mask)
    return weight * mask, mask
