"""Sparse matrix-multiplication kernels (reference implementations + dispatch).

The ``*_reference`` kernels are functional models of the accelerator
datapaths, not performance kernels: they verify that computing with the
compressed CRISP representation (block-index gathering followed by N:M
multiplexing, the two stages of Fig. 6) produces the same result as a dense
GEMM with the masked weight matrix.  The hardware performance model itself
lives in :mod:`repro.hw`.

The public ``csr_matmul`` / ``blocked_ellpack_matmul`` / ``crisp_matmul``
names dispatch through the active compute backend (:mod:`repro.backend`):
the default ``reference`` backend runs the loop kernels below unchanged,
while the ``fast`` backend substitutes the vectorized equivalents from
:mod:`repro.backend.fast`.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from .block import partition_into_blocks
from .formats import BlockedEllpackFormat, CRISPFormat, CSRFormat
from .masks import pad_to_multiple

__all__ = [
    "dense_matmul",
    "masked_matmul",
    "csr_matmul",
    "csr_matmul_reference",
    "blocked_ellpack_matmul",
    "blocked_ellpack_matmul_reference",
    "crisp_matmul",
    "crisp_matmul_reference",
    "check_activation_rows",
    "effective_macs",
]


def check_activation_rows(fmt, activations: np.ndarray) -> None:
    """Validate that ``activations`` has one row per weight-matrix row.

    Shared by every backend so shape errors are raised identically on the
    reference and vectorized paths.
    """
    rows = fmt.shape[0]
    if activations.shape[0] != rows:
        raise ValueError(
            f"Activation rows {activations.shape[0]} != weight rows {rows}"
        )


def _dispatch(backend):
    from ..backend import resolve_backend

    return resolve_backend(backend)


def dense_matmul(weight: np.ndarray, activations: np.ndarray) -> np.ndarray:
    """Plain dense GEMM: ``weight.T @ activations``.

    ``weight`` is the reshaped ``(K, S)`` matrix and ``activations`` is
    ``(K, batch)``; the result is ``(S, batch)``, matching an output-stationary
    accelerator view.
    """
    weight = np.asarray(weight, dtype=np.float64)
    activations = np.asarray(activations, dtype=np.float64)
    if weight.shape[0] != activations.shape[0]:
        raise ValueError(
            f"Reduction-dimension mismatch: weight {weight.shape}, activations {activations.shape}"
        )
    return weight.T @ activations


def masked_matmul(weight: np.ndarray, mask: np.ndarray, activations: np.ndarray) -> np.ndarray:
    """Dense GEMM with an element-wise weight mask (the software reference)."""
    return dense_matmul(weight * mask, activations)


def csr_matmul_reference(fmt: CSRFormat, activations: np.ndarray) -> np.ndarray:
    """GEMM using a CSR-encoded weight matrix (per-row loop oracle)."""
    rows, cols = fmt.shape
    check_activation_rows(fmt, activations)
    out = np.zeros((cols, activations.shape[1]))
    for r in range(rows):
        start, end = fmt.row_ptr[r], fmt.row_ptr[r + 1]
        for idx in range(start, end):
            out[fmt.col_indices[idx]] += fmt.values[idx] * activations[r]
    return out


def blocked_ellpack_matmul_reference(
    fmt: BlockedEllpackFormat, activations: np.ndarray
) -> np.ndarray:
    """GEMM using a Blocked-Ellpack weight: only retained blocks touch activations."""
    rows, cols = fmt.shape
    check_activation_rows(fmt, activations)
    block = fmt.block_size
    acts_padded = np.pad(activations, ((0, (-rows) % block), (0, 0)))
    out_padded = np.zeros((((cols + block - 1) // block) * block, activations.shape[1]))
    for br in range(fmt.blocks_per_row.shape[0]):
        act_tile = acts_padded[br * block : (br + 1) * block]
        for slot in range(fmt.blocks_per_row[br]):
            bc = fmt.block_cols[br, slot]
            tile = fmt.blocks[br, slot]
            out_padded[bc * block : (bc + 1) * block] += tile.T @ act_tile
    return out_padded[:cols]


def crisp_matmul_reference(fmt: CRISPFormat, activations: np.ndarray) -> np.ndarray:
    """GEMM using the CRISP hybrid format, mimicking the accelerator pipeline.

    Step 1: gather the activation rows of retained blocks (block-index skip).
    Step 2: inside each block, use the N:M offsets to select the activation
    value each stored weight multiplies (the 4:2 MUX stage of Fig. 6).
    """
    rows, cols = fmt.shape
    check_activation_rows(fmt, activations)
    block = fmt.block_size
    m = fmt.m
    groups_per_block = block // m
    acts_padded = np.pad(activations, ((0, (-rows) % block), (0, 0)))
    out_padded = np.zeros((((cols + block - 1) // block) * block, activations.shape[1]))

    for br in range(fmt.blocks_per_row.shape[0]):
        act_tile = acts_padded[br * block : (br + 1) * block]  # (B, batch)
        for slot in range(fmt.blocks_per_row[br]):
            bc = fmt.block_cols[br, slot]
            out_tile = out_padded[bc * block : (bc + 1) * block]
            for g in range(groups_per_block):
                act_group = act_tile[g * m : (g + 1) * m]  # (m, batch)
                for col in range(block):
                    for k in range(fmt.n):
                        value = fmt.group_values[br, slot, g, col, k]
                        if value == 0.0:
                            continue
                        offset = fmt.group_offsets[br, slot, g, col, k]
                        out_tile[col] += value * act_group[offset]
    return out_padded[:cols]


# ---------------------------------------------------------------------------
# Backend dispatchers
# ---------------------------------------------------------------------------

def csr_matmul(
    fmt: CSRFormat, activations: np.ndarray, backend: Union[str, None] = None
) -> np.ndarray:
    """GEMM using a CSR-encoded weight, via the active (or named) backend."""
    return _dispatch(backend).csr_matmul(fmt, activations)


def blocked_ellpack_matmul(
    fmt: BlockedEllpackFormat, activations: np.ndarray, backend: Union[str, None] = None
) -> np.ndarray:
    """GEMM using a Blocked-Ellpack weight, via the active (or named) backend."""
    return _dispatch(backend).blocked_ellpack_matmul(fmt, activations)


def crisp_matmul(
    fmt: CRISPFormat, activations: np.ndarray, backend: Union[str, None] = None
) -> np.ndarray:
    """GEMM using the CRISP hybrid format, via the active (or named) backend."""
    return _dispatch(backend).crisp_matmul(fmt, activations)


def effective_macs(mask: np.ndarray, batch: int = 1) -> int:
    """Number of useful multiply-accumulates for a masked GEMM.

    One MAC per retained weight per activation column — the quantity sparse
    accelerators try to approach.
    """
    return int(np.count_nonzero(mask)) * batch
