"""Sparse storage formats and metadata-cost accounting.

Reproduces the storage analysis of Sec. III-A and Fig. 4 (right) of the
paper: the CRISP hybrid format needs only block column-indices
(Blocked-Ellpack over the coarse grid) plus 2-bit intra-group offsets for the
N:M values, which is several times cheaper than general-purpose CSR or
ELLPACK encodings of the same matrix.

Every format implements ``from_dense`` / ``to_dense`` (a lossless round trip
for matrices that satisfy the format's structural assumptions) and reports

* ``data_bits`` — bits spent on the retained values,
* ``metadata_bits`` — bits spent on indices/pointers/padding bookkeeping,
* ``total_bits`` — their sum.

The paper's closed-form metadata estimates are available as
:func:`paper_block_metadata_bits` and :func:`paper_nm_metadata_bits`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .block import BlockGrid, partition_into_blocks
from .masks import pad_to_multiple

__all__ = [
    "FormatSummary",
    "DenseFormat",
    "CSRFormat",
    "ELLPACKFormat",
    "BlockedEllpackFormat",
    "CRISPFormat",
    "paper_block_metadata_bits",
    "paper_nm_metadata_bits",
    "compare_formats",
    "DEFAULT_VALUE_BITS",
    "DEFAULT_INDEX_BITS",
]

#: Bits per stored weight value (8-bit quantised deployment, as in edge inference).
DEFAULT_VALUE_BITS = 8
#: Bits per general-purpose index/pointer (CSR / ELLPACK column indices).
DEFAULT_INDEX_BITS = 16


def _ceil_log2(value: int) -> int:
    """``ceil(log2(value))`` with a floor of 1 bit (an index always costs >= 1 bit)."""
    if value <= 1:
        return 1
    return int(math.ceil(math.log2(value)))


@dataclass
class FormatSummary:
    """Bit-cost summary of one encoded matrix."""

    format_name: str
    shape: Tuple[int, int]
    nnz: int
    data_bits: int
    metadata_bits: int

    @property
    def total_bits(self) -> int:
        return self.data_bits + self.metadata_bits

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0

    def metadata_overhead_vs(self, other: "FormatSummary") -> float:
        """Ratio of this format's metadata bits to another's (Fig. 4 comparison)."""
        if other.metadata_bits == 0:
            return math.inf
        return self.metadata_bits / other.metadata_bits


class DenseFormat:
    """Baseline dense storage: every element stored, no metadata."""

    name = "dense"

    def __init__(self, matrix: np.ndarray, value_bits: int = DEFAULT_VALUE_BITS) -> None:
        self.matrix = np.asarray(matrix, dtype=np.float64)
        self.value_bits = value_bits

    @classmethod
    def from_dense(cls, matrix: np.ndarray, value_bits: int = DEFAULT_VALUE_BITS) -> "DenseFormat":
        return cls(matrix, value_bits)

    def to_dense(self) -> np.ndarray:
        return self.matrix.copy()

    def summary(self) -> FormatSummary:
        return FormatSummary(
            format_name=self.name,
            shape=self.matrix.shape,
            nnz=int(np.count_nonzero(self.matrix)),
            data_bits=self.matrix.size * self.value_bits,
            metadata_bits=0,
        )


class CSRFormat:
    """Compressed sparse row format.

    Stores the non-zero values row by row, with per-value column indices and
    a row-pointer array.  Column indices cost ``ceil(log2(cols))`` bits and
    row pointers ``ceil(log2(nnz + 1))`` bits each.
    """

    name = "csr"

    def __init__(
        self,
        shape: Tuple[int, int],
        values: np.ndarray,
        col_indices: np.ndarray,
        row_ptr: np.ndarray,
        value_bits: int = DEFAULT_VALUE_BITS,
    ) -> None:
        self.shape = shape
        self.values = values
        self.col_indices = col_indices
        self.row_ptr = row_ptr
        self.value_bits = value_bits

    @classmethod
    def from_dense(cls, matrix: np.ndarray, value_bits: int = DEFAULT_VALUE_BITS) -> "CSRFormat":
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"Expected a 2-D matrix, got shape {matrix.shape}")
        rows, _ = matrix.shape
        # np.nonzero scans in row-major order, which is exactly CSR order.
        row_idx, col_indices = np.nonzero(matrix)
        counts = np.bincount(row_idx, minlength=rows)
        row_ptr = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        return cls(
            shape=matrix.shape,
            values=matrix[row_idx, col_indices],
            col_indices=col_indices.astype(np.int64),
            row_ptr=row_ptr,
            value_bits=value_bits,
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        row_idx = np.repeat(np.arange(self.shape[0]), np.diff(self.row_ptr))
        dense[row_idx, self.col_indices] = self.values
        return dense

    def summary(self) -> FormatSummary:
        nnz = len(self.values)
        col_bits = _ceil_log2(self.shape[1])
        ptr_bits = _ceil_log2(nnz + 1)
        metadata = nnz * col_bits + len(self.row_ptr) * ptr_bits
        return FormatSummary(
            format_name=self.name,
            shape=self.shape,
            nnz=nnz,
            data_bits=nnz * self.value_bits,
            metadata_bits=metadata,
        )


class ELLPACKFormat:
    """ELLPACK format: fixed number of slots per row (the max row population).

    Rows shorter than the widest row are zero-padded, and every slot —
    including padding — carries a column index, which is why ELLPACK has the
    largest metadata overhead in Fig. 4 for irregular sparsity.
    """

    name = "ellpack"

    def __init__(
        self,
        shape: Tuple[int, int],
        values: np.ndarray,
        col_indices: np.ndarray,
        row_lengths: np.ndarray,
        value_bits: int = DEFAULT_VALUE_BITS,
    ) -> None:
        self.shape = shape
        self.values = values  # (rows, slots)
        self.col_indices = col_indices  # (rows, slots)
        self.row_lengths = row_lengths
        self.value_bits = value_bits

    @classmethod
    def from_dense(cls, matrix: np.ndarray, value_bits: int = DEFAULT_VALUE_BITS) -> "ELLPACKFormat":
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"Expected a 2-D matrix, got shape {matrix.shape}")
        rows, _ = matrix.shape
        row_idx, col_idx = np.nonzero(matrix)
        row_lengths = np.bincount(row_idx, minlength=rows).astype(np.int64)
        slots = max(1, int(row_lengths.max())) if rows > 0 else 1
        values = np.zeros((rows, slots))
        col_indices = np.zeros((rows, slots), dtype=np.int64)
        # Slot of each nnz = its rank within its row (nonzero scans row-major).
        row_starts = np.concatenate([[0], np.cumsum(row_lengths)[:-1]])
        slot_idx = np.arange(row_idx.size) - np.repeat(row_starts, row_lengths)
        values[row_idx, slot_idx] = matrix[row_idx, col_idx]
        col_indices[row_idx, slot_idx] = col_idx
        return cls(matrix.shape, values, col_indices, row_lengths, value_bits)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        slots = self.values.shape[1]
        valid = np.arange(slots)[None, :] < self.row_lengths[:, None]
        row_idx, slot_idx = np.nonzero(valid)
        dense[row_idx, self.col_indices[row_idx, slot_idx]] = self.values[row_idx, slot_idx]
        return dense

    def summary(self) -> FormatSummary:
        rows, slots = self.values.shape
        col_bits = _ceil_log2(self.shape[1])
        # Every slot stores a value and an index, padded or not.
        data_bits = rows * slots * self.value_bits
        metadata_bits = rows * slots * col_bits
        return FormatSummary(
            format_name=self.name,
            shape=self.shape,
            nnz=int(self.row_lengths.sum()),
            data_bits=data_bits,
            metadata_bits=metadata_bits,
        )


class BlockedEllpackFormat:
    """Blocked-Ellpack: dense ``B x B`` blocks indexed per block-row.

    Retained blocks are stored densely; metadata is one block-column index
    per retained block.  Assumes (but does not require) a uniform number of
    blocks per row — when rows differ, slots are padded to the widest row as
    in element-wise ELLPACK.
    """

    name = "blocked-ellpack"

    def __init__(
        self,
        shape: Tuple[int, int],
        block_size: int,
        blocks: np.ndarray,
        block_cols: np.ndarray,
        blocks_per_row: np.ndarray,
        value_bits: int = DEFAULT_VALUE_BITS,
    ) -> None:
        self.shape = shape
        self.block_size = block_size
        self.blocks = blocks  # (block_rows, slots, B, B)
        self.block_cols = block_cols  # (block_rows, slots)
        self.blocks_per_row = blocks_per_row
        self.value_bits = value_bits

    @classmethod
    def from_dense(
        cls,
        matrix: np.ndarray,
        block_size: int,
        value_bits: int = DEFAULT_VALUE_BITS,
    ) -> "BlockedEllpackFormat":
        matrix = np.asarray(matrix, dtype=np.float64)
        tiles, grid = partition_into_blocks(matrix, block_size)
        nonzero = tiles.reshape(grid.block_rows, grid.block_cols, -1).any(axis=2)
        blocks_per_row = nonzero.sum(axis=1).astype(np.int64)
        slots = max(1, int(blocks_per_row.max()))
        blocks = np.zeros((grid.block_rows, slots, block_size, block_size))
        block_cols = np.zeros((grid.block_rows, slots), dtype=np.int64)
        br_idx, bc_idx = np.nonzero(nonzero)
        # Slot of each retained block = its rank within its block-row.
        row_starts = np.concatenate([[0], np.cumsum(blocks_per_row)[:-1]])
        slot_idx = np.arange(br_idx.size) - np.repeat(row_starts, blocks_per_row)
        blocks[br_idx, slot_idx] = tiles[br_idx, bc_idx]
        block_cols[br_idx, slot_idx] = bc_idx
        return cls(matrix.shape, block_size, blocks, block_cols, blocks_per_row, value_bits)

    def to_dense(self) -> np.ndarray:
        grid = BlockGrid(self.shape[0], self.shape[1], self.block_size)
        slots = self.block_cols.shape[1]
        valid = np.arange(slots)[None, :] < self.blocks_per_row[:, None]
        br_idx, slot_idx = np.nonzero(valid)
        tiles = np.zeros(
            (grid.block_rows, grid.block_cols, self.block_size, self.block_size)
        )
        tiles[br_idx, self.block_cols[br_idx, slot_idx]] = self.blocks[br_idx, slot_idx]
        padded = tiles.transpose(0, 2, 1, 3).reshape(grid.padded_shape)
        return padded[: self.shape[0], : self.shape[1]]

    def summary(self) -> FormatSummary:
        grid = BlockGrid(self.shape[0], self.shape[1], self.block_size)
        stored_blocks = int(self.blocks_per_row.sum())
        index_bits = _ceil_log2(grid.block_cols)
        data_bits = stored_blocks * self.block_size * self.block_size * self.value_bits
        metadata_bits = stored_blocks * index_bits
        nnz = int(np.count_nonzero(self.to_dense()))
        return FormatSummary(
            format_name=self.name,
            shape=self.shape,
            nnz=nnz,
            data_bits=data_bits,
            metadata_bits=metadata_bits,
        )


class CRISPFormat:
    """The CRISP hybrid format: Blocked-Ellpack block indices + N:M intra-group offsets.

    Encoding (Fig. 4 / Fig. 5, step 5 of the paper):

    * For block sparsity, the column index of each retained block is stored
      per block-row (Blocked-Ellpack over the block grid).
    * Inside each retained block, only the N values of every group of M
      consecutive rows are stored, each with a ``ceil(log2(M))``-bit offset
      locating it inside its group.

    The round trip is exact when the matrix satisfies the hybrid pattern
    (uniform blocks per row, N:M compliant inside retained blocks); matrices
    that violate N:M are encoded lossily by keeping the N largest-magnitude
    values per group (a warning is available via ``is_lossless``).
    """

    name = "crisp"

    def __init__(
        self,
        shape: Tuple[int, int],
        n: int,
        m: int,
        block_size: int,
        block_cols: np.ndarray,
        blocks_per_row: np.ndarray,
        group_values: np.ndarray,
        group_offsets: np.ndarray,
        is_lossless: bool,
        value_bits: int = DEFAULT_VALUE_BITS,
    ) -> None:
        self.shape = shape
        self.n = n
        self.m = m
        self.block_size = block_size
        self.block_cols = block_cols  # (block_rows, slots)
        self.blocks_per_row = blocks_per_row  # (block_rows,)
        # group_values / group_offsets: (block_rows, slots, groups_per_block, B, n)
        self.group_values = group_values
        self.group_offsets = group_offsets
        self.is_lossless = is_lossless
        self.value_bits = value_bits

    @classmethod
    def from_dense(
        cls,
        matrix: np.ndarray,
        n: int,
        m: int,
        block_size: int,
        value_bits: int = DEFAULT_VALUE_BITS,
    ) -> "CRISPFormat":
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"Expected a 2-D matrix, got shape {matrix.shape}")
        if block_size % m != 0:
            raise ValueError(
                f"block_size ({block_size}) must be a multiple of M ({m}) so groups do not straddle blocks"
            )
        tiles, grid = partition_into_blocks(matrix, block_size)
        nonzero = tiles.reshape(grid.block_rows, grid.block_cols, -1).any(axis=2)
        blocks_per_row = nonzero.sum(axis=1).astype(np.int64)
        slots = max(1, int(blocks_per_row.max()))
        groups_per_block = block_size // m

        block_cols = np.zeros((grid.block_rows, slots), dtype=np.int64)
        group_values = np.zeros((grid.block_rows, slots, groups_per_block, block_size, n))
        group_offsets = np.zeros(
            (grid.block_rows, slots, groups_per_block, block_size, n), dtype=np.int64
        )
        lossless = True

        for br in range(grid.block_rows):
            cols = np.nonzero(nonzero[br])[0]
            for slot, bc in enumerate(cols):
                block = tiles[br, bc]  # (B, B): rows x cols within block
                block_cols[br, slot] = bc
                for g in range(groups_per_block):
                    group = block[g * m : (g + 1) * m, :]  # (m, B) rows-within-group x block cols
                    for col in range(block_size):
                        column = group[:, col]
                        nz = np.nonzero(column)[0]
                        if len(nz) > n:
                            lossless = False
                            order = np.argsort(np.abs(column[nz]))[::-1]
                            nz = np.sort(nz[order[:n]])
                        for k, offset in enumerate(nz):
                            group_values[br, slot, g, col, k] = column[offset]
                            group_offsets[br, slot, g, col, k] = offset

        return cls(
            shape=matrix.shape,
            n=n,
            m=m,
            block_size=block_size,
            block_cols=block_cols,
            blocks_per_row=blocks_per_row,
            group_values=group_values,
            group_offsets=group_offsets,
            is_lossless=lossless,
            value_bits=value_bits,
        )

    def to_dense(self) -> np.ndarray:
        grid = BlockGrid(self.shape[0], self.shape[1], self.block_size)
        padded = np.zeros(grid.padded_shape)
        # Unused slots hold all-zero groups, so selecting the non-zero stored
        # values also filters out slot padding.
        br, slot, g, col, k = np.nonzero(self.group_values)
        offsets = self.group_offsets[br, slot, g, col, k]
        rows = br * self.block_size + g * self.m + offsets
        cols = self.block_cols[br, slot] * self.block_size + col
        padded[rows, cols] = self.group_values[br, slot, g, col, k]
        return padded[: self.shape[0], : self.shape[1]]

    def summary(self) -> FormatSummary:
        grid = BlockGrid(self.shape[0], self.shape[1], self.block_size)
        stored_blocks = int(self.blocks_per_row.sum())
        groups_per_block = self.block_size // self.m
        values_per_block = groups_per_block * self.block_size * self.n

        block_index_bits = _ceil_log2(grid.block_cols)
        offset_bits = _ceil_log2(self.m)

        data_bits = stored_blocks * values_per_block * self.value_bits
        metadata_bits = (
            stored_blocks * block_index_bits
            + stored_blocks * values_per_block * offset_bits
        )
        nnz = int(np.count_nonzero(self.to_dense()))
        return FormatSummary(
            format_name=self.name,
            shape=self.shape,
            nnz=nnz,
            data_bits=data_bits,
            metadata_bits=metadata_bits,
        )


# ---------------------------------------------------------------------------
# Closed-form estimates from the paper (Sec. III-A)
# ---------------------------------------------------------------------------

def paper_block_metadata_bits(
    s: int, k: int, k_prime: int, block_size: int
) -> float:
    """Paper's block-sparsity metadata estimate.

    ``(S * K' * floor(log2(K'/B))) / (B * B)`` bits, where ``S`` is the number
    of output channels (rows of the transposed view), ``K`` the reshaped column
    count, ``K'`` the retained column count, and ``B`` the block size.
    """
    if k_prime <= 0 or k_prime > k:
        raise ValueError(f"k_prime must be in (0, {k}], got {k_prime}")
    index_bits = max(1, int(math.floor(math.log2(max(2, k_prime / block_size)))))
    return s * k_prime * index_bits / (block_size * block_size)


def paper_nm_metadata_bits(s: int, k_prime: int, n: int, m: int) -> float:
    """Paper's N:M metadata estimate: ``S * K' * (N/M) * floor(log2(M))`` bits."""
    if n <= 0 or m <= 0 or n > m:
        raise ValueError(f"Invalid N:M ratio {n}:{m}")
    return s * k_prime * (n / m) * max(1, int(math.floor(math.log2(m))))


def compare_formats(
    matrix: np.ndarray,
    n: int = 2,
    m: int = 4,
    block_size: int = 16,
    value_bits: int = DEFAULT_VALUE_BITS,
) -> Dict[str, FormatSummary]:
    """Encode ``matrix`` in every format and return their summaries keyed by name.

    This is the primitive behind the Fig. 4 (right) metadata comparison.
    """
    formats = {
        "dense": DenseFormat.from_dense(matrix, value_bits),
        "csr": CSRFormat.from_dense(matrix, value_bits),
        "ellpack": ELLPACKFormat.from_dense(matrix, value_bits),
        "blocked-ellpack": BlockedEllpackFormat.from_dense(matrix, block_size, value_bits),
        "crisp": CRISPFormat.from_dense(matrix, n, m, block_size, value_bits),
    }
    return {name: fmt.summary() for name, fmt in formats.items()}
