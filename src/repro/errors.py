"""The serving error taxonomy: stable codes shared by every front door.

Before the gateway, each serving layer signalled failure its own way —
``RuntimeError`` strings from shards, ``ValueError`` from the scheduler,
``KeyError`` from the registry, 503-status dataclasses from the cluster
frontend.  This module is the one vocabulary they all map onto: a small,
gRPC-style set of :class:`ApiError` subclasses with stable machine-readable
codes, an HTTP projection, and a JSON wire face.

Compatibility is built into the class hierarchy rather than bolted on: each
subclass *also* derives from the builtin exception the pre-gateway code
raised (``InvalidArgumentError`` is a ``ValueError``, ``NotFoundError`` a
``KeyError``, ``UnavailableError`` a ``RuntimeError``, ``DeadlineExceededError``
a ``TimeoutError``), so callers written against the old signalling — including
the existing test suites — keep working while new callers switch on
``exc.code``.

The module sits at the package root (not under :mod:`repro.gateway`) on
purpose: :mod:`repro.serve` and :mod:`repro.cluster` raise these errors and
must be importable before the gateway package exists in ``sys.modules``.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

__all__ = [
    "ApiError",
    "InvalidArgumentError",
    "NotFoundError",
    "ResourceExhaustedError",
    "UnavailableError",
    "DeadlineExceededError",
    "InternalError",
    "ERROR_CODES",
    "error_from_exception",
    "error_from_dict",
]


class ApiError(Exception):
    """Base of the serving taxonomy: a stable code plus a human message.

    Attributes
    ----------
    code:
        Machine-readable, wire-stable identifier (``INVALID_ARGUMENT``,
        ``NOT_FOUND``, ``RESOURCE_EXHAUSTED``, ``UNAVAILABLE``,
        ``DEADLINE_EXCEEDED``, ``INTERNAL``).
    http_status:
        The HTTP projection of the code (what the HTTP transport answers).
    retryable:
        Whether a retry middleware may transparently re-attempt the call.
    details:
        Optional JSON-compatible context (tenant, model id, retry-after...).
    """

    code = "INTERNAL"
    http_status = 500
    retryable = False

    def __init__(self, message: str = "", *, details: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.message = message
        self.details = dict(details) if details else {}

    def __str__(self) -> str:  # KeyError would repr() the message otherwise
        return self.message

    # Response-shaped duck typing: mixed result lists (PredictResponse |
    # RejectedResponse | ApiError) report uniformly via `ok` / `status`.
    @property
    def ok(self) -> bool:
        return False

    @property
    def status(self) -> int:
        return self.http_status

    def to_dict(self) -> Dict:
        """The wire face carried inside :class:`repro.gateway.ApiResponse`."""
        payload: Dict = {"code": self.code, "message": self.message}
        if self.details:
            payload["details"] = self.details
        return payload


class InvalidArgumentError(ApiError, ValueError):
    """The request is malformed (bad payload, duplicate request id...)."""

    code = "INVALID_ARGUMENT"
    http_status = 400


class NotFoundError(ApiError, KeyError):
    """The addressed entity (model id, route) does not exist."""

    code = "NOT_FOUND"
    http_status = 404


class ResourceExhaustedError(ApiError):
    """A per-tenant rate limit or quota is spent; back off before retrying."""

    code = "RESOURCE_EXHAUSTED"
    http_status = 429


class UnavailableError(ApiError, RuntimeError):
    """The backend cannot take the call right now (overload, dead shard).

    Transient by definition — the one code the retry middleware re-attempts.
    """

    code = "UNAVAILABLE"
    http_status = 503
    retryable = True


class DeadlineExceededError(ApiError, TimeoutError):
    """The caller's deadline elapsed before the backend answered."""

    code = "DEADLINE_EXCEEDED"
    http_status = 504


class InternalError(ApiError):
    """An unclassified backend failure (the catch-all, never retried)."""

    code = "INTERNAL"
    http_status = 500


#: code -> canonical exception class (the wire decode table).
ERROR_CODES: Dict[str, Type[ApiError]] = {
    cls.code: cls
    for cls in (
        InvalidArgumentError,
        NotFoundError,
        ResourceExhaustedError,
        UnavailableError,
        DeadlineExceededError,
        InternalError,
    )
}


def error_from_dict(payload: Dict) -> ApiError:
    """Rebuild the canonical :class:`ApiError` subclass from its wire dict.

    Unknown codes decode as :class:`InternalError` with the original code
    preserved in ``details`` — a newer server must not crash an older client.
    """
    code = payload.get("code", "INTERNAL")
    details = payload.get("details") or {}
    cls = ERROR_CODES.get(code)
    if cls is None:
        details = dict(details, original_code=code)
        cls = InternalError
    return cls(payload.get("message", ""), details=details or None)


def error_from_exception(exc: BaseException) -> ApiError:
    """Map any exception onto the taxonomy (the compatibility shim).

    Native :class:`ApiError` instances pass through untouched; legacy builtin
    exceptions from pre-gateway code paths map by type: ``KeyError`` →
    ``NOT_FOUND``, ``ValueError``/``TypeError`` → ``INVALID_ARGUMENT``,
    timeouts → ``DEADLINE_EXCEEDED``, ``RuntimeError`` → ``UNAVAILABLE``,
    anything else → ``INTERNAL``.
    """
    if isinstance(exc, ApiError):
        return exc
    # concurrent.futures.TimeoutError is a distinct class before Python 3.11.
    from concurrent.futures import TimeoutError as FutureTimeoutError

    message = str(exc) or type(exc).__name__
    details = {"exception": type(exc).__name__}
    if isinstance(exc, KeyError):
        # KeyError.__str__ reprs its argument; unwrap the raw message.
        message = str(exc.args[0]) if exc.args else message
        return NotFoundError(message, details=details)
    if isinstance(exc, (ValueError, TypeError)):
        return InvalidArgumentError(message, details=details)
    if isinstance(exc, (TimeoutError, FutureTimeoutError)):
        return DeadlineExceededError(message or "deadline exceeded", details=details)
    if isinstance(exc, RuntimeError):
        return UnavailableError(message, details=details)
    return InternalError(message, details=details)
