"""The ServingAPI protocol and its backend adapters.

:class:`ServingAPI` is the backend-agnostic contract of Serving API v2:
``personalize`` / ``predict`` / ``predict_batch`` / ``stats`` / ``health`` /
``drain``, speaking :mod:`repro.serve.types` messages and signalling failure
exclusively through the :mod:`repro.errors` taxonomy.  Two adapters implement
it:

* :class:`LocalBackend` — wraps the single-process
  :class:`~repro.serve.PersonalizationService`;
* :class:`ClusterBackend` — wraps the sharded
  :class:`~repro.cluster.ClusterService`, translating its native signalling
  (``RejectedResponse`` admission 503s, future exceptions) into ``ApiError``
  codes while re-exporting the async ``submit`` surface and shard topology
  the load driver exploits.

:func:`as_serving_api` is the deprecation shim for the old entry points: it
accepts any pre-gateway facade and hands back the equivalent adapter, so
code written against raw services keeps working one wrapper away.
"""

from __future__ import annotations

import abc
import threading
import time
from concurrent.futures import Future
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ApiError, UnavailableError, error_from_exception
from ..serve.service import PersonalizationService
from ..serve.types import PersonalizeRequest, PredictRequest, PredictResponse
from ..trace import HOP_FRONTEND
from .wire import API_VERSION

__all__ = ["ServingAPI", "LocalBackend", "ClusterBackend", "as_serving_api"]

#: One batch item outcome: the response, or the typed error that request hit.
BatchResult = Union[PredictResponse, ApiError]


@contextmanager
def _translated():
    """Re-raise any non-taxonomy exception as its mapped :class:`ApiError`."""
    try:
        yield
    except ApiError:
        raise
    except Exception as exc:
        raise error_from_exception(exc) from exc


class ServingAPI(abc.ABC):
    """Backend-agnostic Serving API v2 surface.

    Every method raises only :class:`~repro.errors.ApiError` subclasses;
    batch results carry per-item errors instead of failing wholesale where
    partial progress is meaningful.  Implementations are context managers
    (``close`` on exit).
    """

    #: Adapter name reported by :meth:`health` and the gateway route metrics.
    name = "abstract"

    @abc.abstractmethod
    def personalize(self, request: PersonalizeRequest) -> str:
        """Build + register a tenant model; returns its stable model id."""

    @abc.abstractmethod
    def predict(
        self, request: PredictRequest, timeout: Optional[float] = None
    ) -> PredictResponse:
        """Answer one request, or raise the taxonomy error it hit."""

    @abc.abstractmethod
    def predict_batch(
        self, requests: Sequence[PredictRequest], timeout: Optional[float] = None
    ) -> List[BatchResult]:
        """Answer a mixed-tenant batch; per-item errors ride in the list."""

    @abc.abstractmethod
    def stats(self) -> Dict[str, object]:
        """Deployment stats in the unified latency/cache/queue/errors schema."""

    @abc.abstractmethod
    def engine(self, model_id: str):
        """The live engine serving ``model_id`` (hardware-model extraction)."""

    @abc.abstractmethod
    def model_ids(self) -> List[str]:
        """Every registered tenant id."""

    def health(self) -> Dict[str, object]:
        """Cheap liveness + identity probe (never raises on a live backend)."""
        return {
            "status": "ok",
            "backend": self.name,
            "api_version": API_VERSION,
            "models": len(self.model_ids()),
        }

    def drain(self) -> None:
        """Block until all admitted work is answered (no-op when synchronous)."""

    def close(self) -> None:
        """Release the backend (stop workers, refuse further traffic)."""

    def __enter__(self) -> "ServingAPI":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class LocalBackend(ServingAPI):
    """Serving API v2 over the single-process :class:`PersonalizationService`.

    The wrapped service (scheduler, cache, counters) is not thread-safe, and
    the HTTP transport runs gateway handlers on one thread per connection —
    so the adapter serializes every service call behind one lock.  That
    costs nothing the facade wasn't already paying (a single process serves
    one dispatch at a time by construction); concurrency belongs to
    :class:`ClusterBackend`.
    """

    name = "local"

    def __init__(self, service: PersonalizationService) -> None:
        self.service = service
        self._lock = threading.Lock()

    def personalize(self, request: PersonalizeRequest) -> str:
        with _translated(), self._lock:
            return self.service.personalize(request)

    def predict(
        self, request: PredictRequest, timeout: Optional[float] = None
    ) -> PredictResponse:
        # The synchronous facade answers inline; `timeout` has nothing to
        # bound (deadline middleware enforces budgets above this layer).
        with _translated(), self._lock:
            return self.service.predict_batch([request])[0]

    def predict_batch(
        self, requests: Sequence[PredictRequest], timeout: Optional[float] = None
    ) -> List[BatchResult]:
        # The scheduler's dispatch is all-or-nothing (rollback on rejection),
        # so there are no partial results to report on this backend.
        with _translated(), self._lock:
            return list(self.service.predict_batch(requests))

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return self.service.stats()

    def engine(self, model_id: str):
        with _translated(), self._lock:
            return self.service.engine(model_id)

    def model_ids(self) -> List[str]:
        return self.service.model_ids()


class ClusterBackend(ServingAPI):
    """Serving API v2 over the sharded :class:`ClusterService`.

    Translates the cluster's native signalling into the taxonomy: admission
    503s (``RejectedResponse``) become :class:`UnavailableError`, future
    timeouts become ``DEADLINE_EXCEEDED``, and dead-shard / unknown-model
    exceptions already *are* taxonomy errors after the signalling cleanup.
    The raw async ``submit`` surface and shard topology accessors are
    re-exported for callers that schedule their own waits (the load driver).
    """

    name = "cluster"

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    # -- API v2 surface --------------------------------------------------------
    def personalize(self, request: PersonalizeRequest) -> str:
        with _translated():
            return self.cluster.personalize(request)

    def predict(
        self, request: PredictRequest, timeout: Optional[float] = None
    ) -> PredictResponse:
        with _translated():
            if request.trace is None:
                result = self.cluster.submit(request).result(timeout)
            else:
                # The frontend hop must be recorded *here*, synchronously
                # around the wait: shard-side spans land before set_result
                # wakes us, and a done-callback could run after the caller
                # has already serialized the trace.
                start = time.perf_counter()
                result = self.cluster.submit(request).result(timeout)
                request.trace.add(HOP_FRONTEND, time.perf_counter() - start)
        if not result.ok:  # admission-control RejectedResponse
            raise self._rejection_error(result)
        return result

    def predict_batch(
        self, requests: Sequence[PredictRequest], timeout: Optional[float] = None
    ) -> List[BatchResult]:
        # Submit everything before waiting (co-tenant requests fuse), then
        # gather per item so one bad request — unknown id, dead shard —
        # costs exactly its own slot, not the batch.
        deadline = None if timeout is None else time.monotonic() + timeout
        start = time.perf_counter()
        with _translated():
            futures = [self.cluster.submit(request) for request in requests]
        results: List[BatchResult] = []
        for request, future in zip(requests, futures):
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                result = future.result(remaining)
            except Exception as exc:
                results.append(error_from_exception(exc))
                continue
            if request.trace is not None:
                # Batch-start to this item's completion: submit staging plus
                # the wait, the whole cluster-frontend residence time.
                request.trace.add(HOP_FRONTEND, time.perf_counter() - start)
            results.append(result if result.ok else self._rejection_error(result))
        return results

    def stats(self) -> Dict[str, object]:
        return self.cluster.stats()

    def engine(self, model_id: str):
        with _translated():
            return self.cluster.engine(model_id)

    def model_ids(self) -> List[str]:
        return self.cluster.model_ids()

    def health(self) -> Dict[str, object]:
        report = super().health()
        report["shards"] = self.cluster.shards
        return report

    def drain(self) -> None:
        with _translated():
            self.cluster.drain()

    def close(self) -> None:
        self.cluster.shutdown()

    # -- async + topology pass-through (load-driver surface) -------------------
    def submit(self, request: PredictRequest) -> Future:
        """Raw async submission (future resolves like the cluster's own)."""
        return self.cluster.submit(request)

    def worker_for(self, model_id: str):
        return self.cluster.worker_for(model_id)

    def shard_ids(self) -> List[int]:
        return self.cluster.shard_ids()

    @property
    def shards(self) -> int:
        return self.cluster.shards

    @staticmethod
    def _rejection_error(rejection) -> UnavailableError:
        return UnavailableError(
            getattr(rejection, "reason", "request rejected by admission control"),
            details={
                "model_id": rejection.model_id,
                "request_id": rejection.request_id,
                "status": rejection.status,
            },
        )


def as_serving_api(service) -> ServingAPI:
    """Adapt any serving facade to :class:`ServingAPI` (the old-entry shim).

    * a :class:`ServingAPI` passes through;
    * a cluster-shaped facade (async ``submit`` + ``shard_ids``) becomes a
      :class:`ClusterBackend`;
    * a :class:`PersonalizationService`-shaped facade becomes a
      :class:`LocalBackend`.
    """
    if isinstance(service, ServingAPI):
        return service
    if hasattr(service, "submit") and hasattr(service, "shard_ids"):
        return ClusterBackend(service)
    if hasattr(service, "predict_batch"):
        return LocalBackend(service)
    raise TypeError(
        f"cannot adapt {type(service).__name__} to ServingAPI; expected a "
        "ServingAPI, ClusterService or PersonalizationService"
    )
