"""Gateway transports: in-process loopback and a threaded HTTP server.

Both transports speak the identical wire contract — a JSON
:class:`~repro.gateway.wire.ApiRequest` in, a JSON
:class:`~repro.gateway.wire.ApiResponse` out — and both route through
``Gateway.handle_envelope``, so swapping one for the other changes latency
and nothing else.  The loopback transport serializes through JSON even
though it never leaves the process: wire-faithfulness is the point, and it
is what makes "loopback and HTTP answers are bit-identical" a testable
invariant rather than a hope.

The HTTP side is stdlib-only (:class:`http.server.ThreadingHTTPServer` +
:class:`http.client.HTTPConnection`): POST the request envelope to ``/v2``;
the HTTP status code mirrors the taxonomy code's projection (200 / 400 /
404 / 429 / 503 / 504 / 500) while the body always carries the full
envelope.  ``GET /healthz`` answers the health route for probes.
"""

from __future__ import annotations

import abc
import http.client
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..errors import InvalidArgumentError, UnavailableError
from .gateway import Gateway
from .wire import ApiRequest, ApiResponse

__all__ = [
    "Transport",
    "LoopbackTransport",
    "HttpTransport",
    "GatewayHTTPServer",
    "serve_http",
]

#: The one resource the wire API lives under (version pinned in the path).
WIRE_PATH = "/v2"


class Transport(abc.ABC):
    """One hop to a gateway: an envelope goes in, an envelope comes back."""

    @abc.abstractmethod
    def send(self, request: ApiRequest) -> ApiResponse:
        """Deliver one request envelope; always returns a response envelope."""

    def close(self) -> None:
        """Release any connection state (idempotent)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _SendFailed(Exception):
    """Internal marker: the POST failed before the request was accepted."""


class LoopbackTransport(Transport):
    """In-process transport through the full JSON wire path."""

    def __init__(self, gateway: Gateway) -> None:
        self.gateway = gateway

    def send(self, request: ApiRequest) -> ApiResponse:
        return ApiResponse.from_json(self.gateway.handle_json(request.to_json()))


class HttpTransport(Transport):
    """Client side of the HTTP wire: POST envelopes to a gateway server.

    One persistent connection, serialized by a lock (HTTP/1.1 keep-alive);
    a connection dropped between calls is re-established once.  Network
    failures surface as ``UNAVAILABLE`` — transient by definition, so a
    client-side retry middleware may re-attempt them.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._connection: Optional[http.client.HTTPConnection] = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._connection

    def _post(self, body: bytes) -> bytes:
        connection = self._connect()
        try:
            connection.request(
                "POST",
                WIRE_PATH,
                body=body,
                headers={"Content-Type": "application/json"},
            )
        except (ConnectionError, BrokenPipeError, http.client.CannotSendRequest) as exc:
            # The request never made it out — safe to re-send once.
            raise _SendFailed() from exc
        response = connection.getresponse()
        # The envelope is authoritative; the HTTP status merely mirrors it.
        return response.read()

    def send(self, request: ApiRequest) -> ApiResponse:
        body = request.to_json().encode("utf-8")
        with self._lock:
            try:
                try:
                    raw = self._post(body)
                except _SendFailed:
                    # Stale keep-alive connection detected before any bytes
                    # were accepted: reconnect and re-send once.  Failures
                    # *after* the send (no response / dropped mid-response)
                    # are never silently replayed — the server may already
                    # have executed a non-idempotent call like personalize.
                    self._drop_connection()
                    raw = self._post(body)
            except _SendFailed as exc:
                self._drop_connection()
                raise UnavailableError(
                    f"gateway at {self.host}:{self.port} unreachable: "
                    f"{exc.__cause__}",
                    details={"exception": type(exc.__cause__).__name__},
                ) from exc.__cause__
            except (OSError, http.client.HTTPException) as exc:
                self._drop_connection()
                raise UnavailableError(
                    f"gateway at {self.host}:{self.port} failed mid-call "
                    f"(not retried: the request may have executed): {exc}",
                    details={"exception": type(exc).__name__},
                ) from exc
        return ApiResponse.from_json(raw.decode("utf-8"))

    def _drop_connection(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def close(self) -> None:
        with self._lock:
            self._drop_connection()


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP onto the gateway wire contract (POST /v2, GET /healthz)."""

    server_version = "repro-gateway/2"
    protocol_version = "HTTP/1.1"  # keep-alive, so HttpTransport can reuse

    def _reply(self, response: ApiResponse) -> None:
        body = response.to_json().encode("utf-8")
        self.send_response(response.http_status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        # Always drain the body first: an unread body would be parsed as the
        # next request line on this keep-alive connection.
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length)
        if self.path != WIRE_PATH:
            self._reply(
                ApiResponse.failure(
                    None,
                    InvalidArgumentError(
                        f"unknown path {self.path!r}; the API lives at {WIRE_PATH}"
                    ),
                )
            )
            return
        self._reply(self.server.gateway.handle_envelope(raw))

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path in ("/healthz", WIRE_PATH + "/health"):
            self._reply(self.server.gateway.handle(ApiRequest("health")))
            return
        self._reply(
            ApiResponse.failure(
                None,
                InvalidArgumentError(
                    f"unknown path {self.path!r}; POST envelopes to {WIRE_PATH} "
                    "or GET /healthz"
                ),
            )
        )

    def log_message(self, format: str, *args) -> None:
        """Silence the per-request stderr chatter (telemetry covers it)."""


class GatewayHTTPServer(ThreadingHTTPServer):
    """A gateway served over a socket by one thread per connection.

    Bind with ``port=0`` for an ephemeral port (what tests and CI do), read
    it back from :attr:`port`, and drive the server from a background thread
    with :meth:`start` / :meth:`stop` (or the context manager, which does
    both).  ``daemon_threads`` keeps stray keep-alive connections from
    wedging interpreter shutdown.
    """

    daemon_threads = True

    def __init__(self, gateway: Gateway, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), _GatewayRequestHandler)
        self.gateway = gateway
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}{WIRE_PATH}"

    def start(self) -> "GatewayHTTPServer":
        """Serve from a daemon thread (idempotent); returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever,
                name=f"repro-gateway-http-{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server_close()

    def transport(self, timeout_s: float = 30.0) -> HttpTransport:
        """A client transport pointed at this server."""
        return HttpTransport(self.host, self.port, timeout_s=timeout_s)

    def __enter__(self) -> "GatewayHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_http(
    gateway: Gateway, host: str = "127.0.0.1", port: int = 0
) -> GatewayHTTPServer:
    """Boot a started :class:`GatewayHTTPServer` for ``gateway``.

    ``port=0`` binds an ephemeral port; the caller reads ``server.port``.
    """
    return GatewayHTTPServer(gateway, host=host, port=port).start()
