"""Gateway transports: in-process loopback and a threaded HTTP server.

Both transports speak the identical wire contract — a JSON
:class:`~repro.gateway.wire.ApiRequest` in, a JSON
:class:`~repro.gateway.wire.ApiResponse` out — and both route through
``Gateway.handle_envelope``, so swapping one for the other changes latency
and nothing else.  The loopback transport serializes through JSON even
though it never leaves the process: wire-faithfulness is the point, and it
is what makes "loopback and HTTP answers are bit-identical" a testable
invariant rather than a hope.

The HTTP side is stdlib-only (:class:`http.server.ThreadingHTTPServer` +
:class:`http.client.HTTPConnection`): POST the request envelope to ``/v2``;
the HTTP status code mirrors the taxonomy code's projection (200 / 400 /
404 / 429 / 503 / 504 / 500) while the body always carries the full
envelope.  GET routes go through a registration table
(:meth:`GatewayHTTPServer.add_get_route`): ``/healthz`` answers the health
route for probes, ``/statsz`` the full unified stats schema as JSON, and
``/metrics`` the Prometheus text exposition of the gateway's telemetry
(scrape-driven sampling unless a background poller is attached).
"""

from __future__ import annotations

import abc
import http.client
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple, Union

from ..errors import ApiError, InvalidArgumentError, UnavailableError
from ..metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from ..metrics import MetricsRegistry, TelemetryPoller
from .gateway import Gateway
from .wire import ApiRequest, ApiResponse

__all__ = [
    "Transport",
    "LoopbackTransport",
    "HttpTransport",
    "GatewayHTTPServer",
    "serve_http",
]

#: The one resource the wire API lives under (version pinned in the path).
WIRE_PATH = "/v2"


class Transport(abc.ABC):
    """One hop to a gateway: an envelope goes in, an envelope comes back."""

    @abc.abstractmethod
    def send(self, request: ApiRequest) -> ApiResponse:
        """Deliver one request envelope; always returns a response envelope."""

    def close(self) -> None:
        """Release any connection state (idempotent)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _SendFailed(Exception):
    """Internal marker: the POST failed before the request was accepted."""


class LoopbackTransport(Transport):
    """In-process transport through the full JSON wire path."""

    def __init__(self, gateway: Gateway) -> None:
        self.gateway = gateway

    def send(self, request: ApiRequest) -> ApiResponse:
        return ApiResponse.from_json(self.gateway.handle_json(request.to_json()))


class HttpTransport(Transport):
    """Client side of the HTTP wire: POST envelopes to a gateway server.

    One persistent connection, serialized by a lock (HTTP/1.1 keep-alive);
    a connection dropped between calls is re-established once.  Network
    failures surface as ``UNAVAILABLE`` — transient by definition, so a
    client-side retry middleware may re-attempt them.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._connection: Optional[http.client.HTTPConnection] = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._connection

    def _post(self, body: bytes) -> bytes:
        connection = self._connect()
        try:
            connection.request(
                "POST",
                WIRE_PATH,
                body=body,
                headers={"Content-Type": "application/json"},
            )
        except (ConnectionError, BrokenPipeError, http.client.CannotSendRequest) as exc:
            # The request never made it out — safe to re-send once.
            raise _SendFailed() from exc
        response = connection.getresponse()
        # The envelope is authoritative; the HTTP status merely mirrors it.
        return response.read()

    def send(self, request: ApiRequest) -> ApiResponse:
        body = request.to_json().encode("utf-8")
        with self._lock:
            try:
                try:
                    raw = self._post(body)
                except _SendFailed:
                    # Stale keep-alive connection detected before any bytes
                    # were accepted: reconnect and re-send once.  Failures
                    # *after* the send (no response / dropped mid-response)
                    # are never silently replayed — the server may already
                    # have executed a non-idempotent call like personalize.
                    self._drop_connection()
                    raw = self._post(body)
            except _SendFailed as exc:
                self._drop_connection()
                raise UnavailableError(
                    f"gateway at {self.host}:{self.port} unreachable: "
                    f"{exc.__cause__}",
                    details={"exception": type(exc.__cause__).__name__},
                ) from exc.__cause__
            except (OSError, http.client.HTTPException) as exc:
                self._drop_connection()
                raise UnavailableError(
                    f"gateway at {self.host}:{self.port} failed mid-call "
                    f"(not retried: the request may have executed): {exc}",
                    details={"exception": type(exc).__name__},
                ) from exc
        return ApiResponse.from_json(raw.decode("utf-8"))

    def _drop_connection(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def close(self) -> None:
        with self._lock:
            self._drop_connection()


#: What a GET route handler may return: a wire envelope (replied with its
#: projected HTTP status) or a raw ``(status, content_type, body)`` triple.
GetRouteResult = Union[ApiResponse, Tuple[int, str, bytes]]


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP onto the gateway wire contract (POST /v2 + the GET table)."""

    server_version = "repro-gateway/2"
    protocol_version = "HTTP/1.1"  # keep-alive, so HttpTransport can reuse

    def _reply(self, response: ApiResponse) -> None:
        body = response.to_json().encode("utf-8")
        self.send_response(response.http_status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_raw(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        # Always drain the body first: an unread body would be parsed as the
        # next request line on this keep-alive connection.
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length)
        if self.path != WIRE_PATH:
            self._reply(
                ApiResponse.failure(
                    None,
                    InvalidArgumentError(
                        f"unknown path {self.path!r}; the API lives at {WIRE_PATH}"
                    ),
                )
            )
            return
        self._reply(self.server.gateway.handle_envelope(raw))

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        handler = self.server.get_route(self.path)
        if handler is None:
            self._reply(
                ApiResponse.failure(
                    None,
                    InvalidArgumentError(
                        f"unknown path {self.path!r}; POST envelopes to "
                        f"{WIRE_PATH} or GET one of "
                        f"{self.server.get_route_paths()}"
                    ),
                )
            )
            return
        try:
            result = handler()
        except ApiError as err:
            self._reply(ApiResponse.failure(None, err))
            return
        if isinstance(result, ApiResponse):
            self._reply(result)
        else:
            status, content_type, body = result
            self._reply_raw(status, content_type, body)

    def log_message(self, format: str, *args) -> None:
        """Silence the per-request stderr chatter (telemetry covers it)."""


class GatewayHTTPServer(ThreadingHTTPServer):
    """A gateway served over a socket by one thread per connection.

    Bind with ``port=0`` for an ephemeral port (what tests and CI do), read
    it back from :attr:`port`, and drive the server from a background thread
    with :meth:`start` / :meth:`stop` (or the context manager, which does
    both).  ``daemon_threads`` keeps stray keep-alive connections from
    wedging interpreter shutdown.

    GET routes share one registration table: ``/healthz`` (and
    ``/v2/health``) answer the health envelope, ``/statsz`` the full unified
    stats as JSON, ``/metrics`` the Prometheus text exposition.  ``metrics``
    may be a :class:`~repro.metrics.TelemetryPoller` (scrapes render its
    registry; sampling stays scrape-driven unless the poller's background
    thread is running) or a bare :class:`~repro.metrics.MetricsRegistry`
    (render-only — some external sampler owns it).  By default the server
    builds its own poller over the gateway, so ``GET /metrics`` works out of
    the box with per-scrape sampling, exactly how Prometheus expects a
    target to behave.
    """

    daemon_threads = True

    def __init__(
        self,
        gateway: Gateway,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[Union[TelemetryPoller, MetricsRegistry]] = None,
    ) -> None:
        super().__init__((host, port), _GatewayRequestHandler)
        self.gateway = gateway
        self._thread: Optional[threading.Thread] = None
        if metrics is None:
            metrics = TelemetryPoller(gateway)
        if isinstance(metrics, MetricsRegistry):
            self.poller: Optional[TelemetryPoller] = None
            self.metrics_registry = metrics
        else:
            self.poller = metrics
            self.metrics_registry = metrics.registry
        self._get_routes: Dict[str, Callable[[], GetRouteResult]] = {}
        self.add_get_route("/healthz", self._route_health)
        self.add_get_route(WIRE_PATH + "/health", self._route_health)
        self.add_get_route("/statsz", self._route_statsz)
        self.add_get_route("/metrics", self._route_metrics)

    # -- GET route table ---------------------------------------------------------
    def add_get_route(self, path: str, handler: Callable[[], GetRouteResult]) -> None:
        """Register (or replace) one GET route on this server."""
        if not path.startswith("/"):
            raise ValueError(f"route path must start with '/', got {path!r}")
        self._get_routes[path] = handler

    def get_route(self, path: str) -> Optional[Callable[[], GetRouteResult]]:
        return self._get_routes.get(path)

    def get_route_paths(self) -> Tuple[str, ...]:
        return tuple(sorted(self._get_routes))

    def _route_health(self) -> GetRouteResult:
        return self.gateway.handle(ApiRequest("health"))

    def _route_statsz(self) -> GetRouteResult:
        body = json.dumps(self.gateway.stats(), sort_keys=True).encode("utf-8")
        return (200, "application/json", body)

    def _route_metrics(self) -> GetRouteResult:
        """Prometheus text exposition of the gateway's telemetry.

        With the server-owned (or any non-running) poller, each scrape takes
        a fresh sample first; a poller already sampling in the background is
        rendered as-is, and a bare registry likewise.
        """
        if self.poller is not None:
            text = self.poller.exposition(sample=not self.poller.running)
        else:
            text = self.metrics_registry.render()
        return (200, METRICS_CONTENT_TYPE, text.encode("utf-8"))

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}{WIRE_PATH}"

    def start(self) -> "GatewayHTTPServer":
        """Serve from a daemon thread (idempotent); returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever,
                name=f"repro-gateway-http-{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server_close()

    def transport(self, timeout_s: float = 30.0) -> HttpTransport:
        """A client transport pointed at this server."""
        return HttpTransport(self.host, self.port, timeout_s=timeout_s)

    def __enter__(self) -> "GatewayHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_http(
    gateway: Gateway,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics: Optional[Union[TelemetryPoller, MetricsRegistry]] = None,
) -> GatewayHTTPServer:
    """Boot a started :class:`GatewayHTTPServer` for ``gateway``.

    ``port=0`` binds an ephemeral port; the caller reads ``server.port``.
    ``metrics`` optionally shares a poller/registry with the caller (the
    ``GET /metrics`` route renders it); by default the server samples its
    own on each scrape.
    """
    return GatewayHTTPServer(gateway, host=host, port=port, metrics=metrics).start()
