"""Serving API v2 wire messages: versioned envelopes around serve payloads.

Every gateway hop — in-process loopback or HTTP socket — exchanges exactly
two shapes:

* :class:`ApiRequest` — ``(version, method, payload, ...)``: which API v2
  method to invoke and its JSON-compatible payload (the existing
  :mod:`repro.serve.types` dicts ride inside unchanged).
* :class:`ApiResponse` — ``(version, ok, payload, error, ...)``: the answer,
  carrying either a result payload, a structured
  :class:`~repro.errors.ApiError` wire dict, or *both* (an error plus the
  partial results a batch managed to produce before failing).

Both round-trip byte-stably through ``to_json`` / ``from_json`` (keys are
sorted, separators fixed), which is what lets CI diff recorded request
streams and lets the loopback and HTTP transports be bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ApiError, InvalidArgumentError, error_from_dict

__all__ = ["API_VERSION", "METHODS", "ApiRequest", "ApiResponse", "dumps"]

#: The one wire version this gateway speaks.
API_VERSION = "v2"

#: Every routable API v2 method.
METHODS = ("personalize", "predict", "predict_batch", "stats", "health", "drain")


def dumps(payload: Dict) -> str:
    """Canonical JSON encoding: sorted keys, fixed separators, no NaN.

    One encoder for every envelope and artifact keeps the byte-stability
    contract in a single place.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


@dataclass
class ApiRequest:
    """One versioned call into the gateway.

    ``tenant`` identifies the caller for per-tenant middleware (rate limits,
    quotas); ``deadline_ms`` is the caller's *remaining* time budget, which
    deadline middleware enforces and decrements before handing downstream.
    """

    method: str
    payload: Dict = field(default_factory=dict)
    request_id: Optional[str] = None
    tenant: str = "default"
    deadline_ms: Optional[float] = None
    version: str = API_VERSION
    #: Ask the gateway to trace this request's hops.  ``False`` keeps the
    #: envelope bytes exactly what pre-trace clients produced (the key is
    #: omitted from ``to_dict`` entirely), so recorded streams stay stable.
    trace: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.payload, dict):
            raise InvalidArgumentError(
                f"payload must be a dict, got {type(self.payload).__name__}"
            )
        if self.deadline_ms is not None:
            self.deadline_ms = float(self.deadline_ms)
            if self.deadline_ms < 0:
                raise InvalidArgumentError(
                    f"deadline_ms must be >= 0, got {self.deadline_ms}"
                )

    def to_dict(self) -> Dict:
        data = {
            "version": self.version,
            "method": self.method,
            "payload": self.payload,
            "request_id": self.request_id,
            "tenant": self.tenant,
            "deadline_ms": self.deadline_ms,
        }
        if self.trace:
            data["trace"] = True
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ApiRequest":
        if not isinstance(data, dict):
            raise InvalidArgumentError(
                f"request envelope must be a JSON object, got {type(data).__name__}"
            )
        if "method" not in data:
            raise InvalidArgumentError("request envelope is missing 'method'")
        return cls(
            method=data["method"],
            payload=data.get("payload") or {},
            request_id=data.get("request_id"),
            tenant=data.get("tenant", "default"),
            deadline_ms=data.get("deadline_ms"),
            version=data.get("version", API_VERSION),
            trace=bool(data.get("trace", False)),
        )

    def to_json(self) -> str:
        return dumps(self.to_dict())

    @classmethod
    def from_json(cls, data: str) -> "ApiRequest":
        try:
            decoded = json.loads(data)
        except json.JSONDecodeError as exc:
            raise InvalidArgumentError(f"request is not valid JSON: {exc}") from None
        return cls.from_dict(decoded)


@dataclass
class ApiResponse:
    """The answer to one :class:`ApiRequest`.

    Exactly one of three shapes:

    * success — ``ok=True``, ``payload`` set, ``error`` ``None``;
    * failure — ``ok=False``, ``error`` set (an ``ApiError.to_dict()``);
    * partial — ``ok=False``, ``error`` set *and* ``payload`` carrying the
      results completed before the failure (batch routes).
    """

    ok: bool
    payload: Optional[Dict] = None
    error: Optional[Dict] = None
    request_id: Optional[str] = None
    version: str = API_VERSION
    #: Span list (``[[hop, seconds], ...]``) for traced requests; ``None``
    #: (and absent from the wire dict) otherwise, keeping untraced envelope
    #: bytes identical to pre-trace gateways.
    trace: Optional[list] = None

    @classmethod
    def success(cls, request: ApiRequest, payload: Dict) -> "ApiResponse":
        return cls(ok=True, payload=payload, request_id=request.request_id)

    @classmethod
    def failure(
        cls,
        request: Optional[ApiRequest],
        error: ApiError,
        partial: Optional[Dict] = None,
    ) -> "ApiResponse":
        return cls(
            ok=False,
            payload=partial,
            error=error.to_dict(),
            request_id=request.request_id if request is not None else None,
        )

    @property
    def http_status(self) -> int:
        """The HTTP projection of the outcome (200, or the error code's)."""
        if self.ok or self.error is None:
            return 200
        return self.to_error().http_status

    def to_error(self) -> ApiError:
        """Rebuild the typed :class:`ApiError` this envelope carries.

        Raises ``ValueError`` on a success envelope — asking a success for
        its error is a caller bug, not a wire condition.
        """
        if self.error is None:
            raise ValueError("response carries no error")
        return error_from_dict(self.error)

    def raise_for_error(self) -> "ApiResponse":
        """Raise the carried :class:`ApiError` on failure; return self on ok."""
        if not self.ok:
            raise self.to_error()
        return self

    def to_dict(self) -> Dict:
        data = {
            "version": self.version,
            "ok": self.ok,
            "payload": self.payload,
            "error": self.error,
            "request_id": self.request_id,
        }
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ApiResponse":
        if not isinstance(data, dict) or "ok" not in data:
            raise InvalidArgumentError("response envelope must be an object with 'ok'")
        return cls(
            ok=bool(data["ok"]),
            payload=data.get("payload"),
            error=data.get("error"),
            request_id=data.get("request_id"),
            version=data.get("version", API_VERSION),
            trace=data.get("trace"),
        )

    def to_json(self) -> str:
        return dumps(self.to_dict())

    @classmethod
    def from_json(cls, data: str) -> "ApiResponse":
        try:
            decoded = json.loads(data)
        except json.JSONDecodeError as exc:
            raise InvalidArgumentError(f"response is not valid JSON: {exc}") from None
        return cls.from_dict(decoded)
