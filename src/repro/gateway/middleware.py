"""Composable gateway middleware: validate, limit, deadline, retry, measure.

A middleware wraps a ``Handler`` (``ApiRequest -> ApiResponse``) and may
short-circuit by raising an :class:`~repro.errors.ApiError`; the
:class:`~repro.gateway.gateway.Gateway` converts anything raised into a
failure envelope at the top of the stack, so middlewares stay exception-based
and simple.  :func:`build_pipeline` composes a list of middlewares around the
terminal router, outermost first:

    validation → metrics → rate limit → retry → deadline → router → backend

That order is load-bearing: metrics see every outcome including rate-limit
rejections; the retry loop sits *outside* the deadline check so each attempt
re-enters it with the decremented budget and a spent deadline terminates the
retrying (``DEADLINE_EXCEEDED`` is not retryable).

All middleware state (buckets, counters, histograms) is lock-protected —
the HTTP transport runs handlers on concurrent threads.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..cluster.telemetry import LatencyHistogram
from ..metrics.events import emit
from ..errors import (
    ApiError,
    DeadlineExceededError,
    InvalidArgumentError,
    NotFoundError,
    ResourceExhaustedError,
    error_from_exception,
)
from .wire import API_VERSION, METHODS, ApiRequest, ApiResponse

__all__ = [
    "Middleware",
    "build_pipeline",
    "ValidationMiddleware",
    "RateLimitMiddleware",
    "DeadlineMiddleware",
    "RetryMiddleware",
    "MetricsMiddleware",
]

Handler = Callable[[ApiRequest], ApiResponse]

#: Error codes that mean "load was shed", not "the request was wrong" —
#: reported as ``rejected`` (vs ``failed``) in the unified errors block.
_SHED_CODES = ("RESOURCE_EXHAUSTED", "UNAVAILABLE")


class Middleware:
    """One pipeline stage: observe/transform the call around ``call_next``."""

    def handle(self, request: ApiRequest, call_next: Handler) -> ApiResponse:
        raise NotImplementedError

    # Introspection hook: middlewares with counters report them here.
    def snapshot(self) -> Dict[str, object]:
        return {}


def build_pipeline(middlewares: Sequence[Middleware], terminal: Handler) -> Handler:
    """Compose ``middlewares`` (outermost first) around the terminal handler."""
    handler = terminal
    for middleware in reversed(list(middlewares)):
        def bound(request, _mw=middleware, _next=handler):
            return _mw.handle(request, _next)

        handler = bound
    return handler


class ValidationMiddleware(Middleware):
    """Reject malformed envelopes before they reach anything stateful.

    Version mismatches and payload-shape problems are ``INVALID_ARGUMENT``;
    an unknown method is ``NOT_FOUND`` (the route does not exist).
    """

    #: method -> payload fields that must be present.
    REQUIRED = {
        "predict": ("model_id", "inputs"),
        "predict_batch": ("requests",),
        "personalize": ("user_id",),
    }

    def handle(self, request: ApiRequest, call_next: Handler) -> ApiResponse:
        if request.version != API_VERSION:
            raise InvalidArgumentError(
                f"unsupported API version {request.version!r}; this gateway "
                f"speaks {API_VERSION}"
            )
        if request.method not in METHODS:
            raise NotFoundError(
                f"unknown method {request.method!r}; available: {sorted(METHODS)}"
            )
        missing = [
            field
            for field in self.REQUIRED.get(request.method, ())
            if field not in request.payload
        ]
        if missing:
            raise InvalidArgumentError(
                f"method {request.method!r} payload is missing {missing}"
            )
        if request.method == "predict_batch" and not isinstance(
            request.payload["requests"], (list, tuple)
        ):
            raise InvalidArgumentError("'requests' must be a list of predict payloads")
        return call_next(request)


class _TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def try_take(self, cost: float, now: float) -> bool:
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def retry_after_ms(self, cost: float) -> float:
        deficit = max(0.0, cost - self.tokens)
        return (deficit / self.rate) * 1e3 if self.rate > 0 else float("inf")


class RateLimitMiddleware(Middleware):
    """Per-tenant token-bucket rate limiting plus an absolute request quota.

    Traffic-bearing methods (``predict`` / ``predict_batch`` /
    ``personalize``) cost tokens — one per request, so a batch of eight
    costs eight; ``stats`` / ``health`` / ``drain`` are control-plane and
    exempt.  A spent bucket or quota answers ``RESOURCE_EXHAUSTED``
    immediately (with ``retry_after_ms`` in the details): load is shed, never
    queued, so an over-limit tenant can neither hang nor starve the rest.
    """

    METERED = ("predict", "predict_batch", "personalize")

    def __init__(
        self,
        rate_per_s: Optional[float] = None,
        burst: Optional[float] = None,
        quota: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s is None and quota is None:
            raise ValueError("rate limiting needs rate_per_s and/or quota")
        if rate_per_s is not None and rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
        self.rate_per_s = None if rate_per_s is None else float(rate_per_s)
        if self.rate_per_s is None:
            self.burst = None
        else:
            self.burst = (
                float(burst) if burst is not None else max(1.0, self.rate_per_s)
            )
            if self.burst < 1:
                raise ValueError(f"burst must be >= 1, got {self.burst}")
        if quota is not None and quota < 1:
            raise ValueError(f"quota must be >= 1, got {quota}")
        self.quota = quota
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, _TokenBucket] = {}
        self._spent: Dict[str, int] = {}
        self.limited = 0

    @staticmethod
    def _cost(request: ApiRequest) -> int:
        if request.method == "predict_batch":
            requests = request.payload.get("requests")
            return max(1, len(requests)) if isinstance(requests, (list, tuple)) else 1
        return 1

    def handle(self, request: ApiRequest, call_next: Handler) -> ApiResponse:
        if request.method not in self.METERED:
            return call_next(request)
        cost = self._cost(request)
        tenant = request.tenant
        with self._lock:
            spent = self._spent.get(tenant, 0)
            if self.quota is not None and spent + cost > self.quota:
                self.limited += 1
                emit("admission_reject", source="gateway", tenant=tenant,
                     reason="quota")
                raise ResourceExhaustedError(
                    f"tenant {tenant!r} exhausted its quota of {self.quota} requests",
                    details={"tenant": tenant, "quota": self.quota, "spent": spent},
                )
            if self.rate_per_s is not None:
                if cost > self.burst:
                    # No amount of waiting refills past the burst capacity:
                    # the call is unsatisfiable, not throttled — answer with
                    # a non-retryable error instead of a finite retry hint
                    # that would loop a well-behaved client forever.
                    raise InvalidArgumentError(
                        f"batch of {cost} requests exceeds the bucket burst "
                        f"capacity {self.burst:g}; split the batch",
                        details={"tenant": tenant, "burst": self.burst},
                    )
                now = self.clock()
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = self._buckets[tenant] = _TokenBucket(
                        self.rate_per_s, self.burst, now
                    )
                if not bucket.try_take(cost, now):
                    self.limited += 1
                    emit("admission_reject", source="gateway", tenant=tenant,
                         reason="rate_limit")
                    raise ResourceExhaustedError(
                        f"tenant {tenant!r} is over its rate limit "
                        f"({self.rate_per_s:g} req/s, burst {self.burst:g})",
                        details={
                            "tenant": tenant,
                            "retry_after_ms": bucket.retry_after_ms(cost),
                        },
                    )
            self._spent[tenant] = spent + cost
        return call_next(request)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "limited": self.limited,
                "tenants": len(self._buckets),
                "rate_per_s": self.rate_per_s,
                "burst": self.burst,
                "quota": self.quota,
            }


class DeadlineMiddleware(Middleware):
    """Enforce and propagate the caller's time budget.

    A request with ``deadline_ms`` spends its budget across the whole
    pipeline below this stage: an already-spent budget short-circuits with
    ``DEADLINE_EXCEEDED`` (never dispatching doomed work), and whatever each
    attempt consumes is decremented from the envelope so outer retries —
    and any further hop the request is forwarded to — see only the
    remaining budget.  Requests without a deadline pass through untouched.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock

    def handle(self, request: ApiRequest, call_next: Handler) -> ApiResponse:
        if request.deadline_ms is None:
            return call_next(request)
        if request.deadline_ms <= 0:
            raise DeadlineExceededError(
                "deadline spent before dispatch",
                details={"method": request.method},
            )
        start = self.clock()
        try:
            return call_next(request)
        finally:
            spent_ms = (self.clock() - start) * 1e3
            request.deadline_ms = max(0.0, request.deadline_ms - spent_ms)


class RetryMiddleware(Middleware):
    """Re-attempt transient failures with seeded exponential backoff + jitter.

    Only ``retryable`` taxonomy errors (``UNAVAILABLE``) are re-attempted;
    ``RESOURCE_EXHAUSTED`` and ``DEADLINE_EXCEEDED`` never are — a shed or
    expired request must fail fast, not pile on.  Jitter comes from a seeded
    :class:`random.Random` so runs are reproducible.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_s: float = 0.002,
        max_delay_s: float = 0.25,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay_s < 0 or max_delay_s < base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.sleep = sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.retries = 0

    def handle(self, request: ApiRequest, call_next: Handler) -> ApiResponse:
        attempt = 1
        while True:
            try:
                return call_next(request)
            except ApiError as err:
                if not err.retryable or attempt >= self.max_attempts:
                    raise
                emit("retry", method=request.method, attempt=attempt,
                     code=err.code)
            with self._lock:
                self.retries += 1
                # Full jitter: uniform in (0, backoff] — decorrelates herds.
                backoff = min(
                    self.max_delay_s, self.base_delay_s * (2 ** (attempt - 1))
                )
                delay = backoff * self._rng.random()
            # Backoff sleeps spend the caller's budget too: clamp the sleep
            # to what is left and charge it, so the next attempt re-enters
            # the deadline check with the true remainder (and a spent budget
            # terminates the retrying as DEADLINE_EXCEEDED).
            if request.deadline_ms is not None:
                delay = min(delay, max(0.0, request.deadline_ms) / 1e3)
            self.sleep(delay)
            if request.deadline_ms is not None:
                request.deadline_ms = max(0.0, request.deadline_ms - delay * 1e3)
            attempt += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"retries": self.retries, "max_attempts": self.max_attempts}


class MetricsMiddleware(Middleware):
    """Per-route latency histograms and error counters (the gateway's eyes).

    Every call records into its route's :class:`LatencyHistogram`; failures
    count by taxonomy code, split into *rejected* (load shed:
    ``RESOURCE_EXHAUSTED`` / ``UNAVAILABLE``) and *failed* (everything else)
    to match the unified stats schema.  Failure envelopes returned by the
    router (partial batch results) count exactly like raised errors.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._latency: Dict[str, LatencyHistogram] = {}
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, Dict[str, int]] = {}

    def handle(self, request: ApiRequest, call_next: Handler) -> ApiResponse:
        start = self.clock()
        try:
            response = call_next(request)
        except Exception as exc:
            # Record the code the caller will actually see: a raw exception
            # escaping the router is mapped to its taxonomy code by the
            # gateway, so the counters must apply the same mapping.
            code = error_from_exception(exc).code
            self._record(request.method, self.clock() - start, code)
            raise
        code = None
        if not response.ok and response.error is not None:
            code = response.error.get("code", "INTERNAL")
        self._record(request.method, self.clock() - start, code)
        return response

    def _record(self, route: str, elapsed_s: float, code: Optional[str]) -> None:
        with self._lock:
            if route not in self._latency:
                self._latency[route] = LatencyHistogram()
                self._requests[route] = 0
                self._errors[route] = {}
            self._latency[route].record(elapsed_s)
            self._requests[route] += 1
            if code is not None:
                errors = self._errors[route]
                errors[code] = errors.get(code, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        """Gateway-level metrics in the unified schema + per-route detail."""
        with self._lock:
            merged = LatencyHistogram.merged(self._latency.values())
            by_code: Dict[str, int] = {}
            for route_errors in self._errors.values():
                for code, count in route_errors.items():
                    by_code[code] = by_code.get(code, 0) + count
            rejected = sum(by_code.get(code, 0) for code in _SHED_CODES)
            failed = sum(by_code.values()) - rejected
            return {
                "latency": merged.summary(),
                "errors": {
                    "failed": failed,
                    "rejected": rejected,
                    "by_code": dict(sorted(by_code.items())),
                },
                "per_route": {
                    route: {
                        "requests": self._requests[route],
                        "errors": dict(sorted(self._errors[route].items())),
                        "latency": self._latency[route].summary(),
                    }
                    for route in sorted(self._latency)
                },
            }
