"""GatewayClient: the typed sync facade over any gateway transport.

The client turns the wire envelopes back into the :mod:`repro.serve.types`
dataclasses callers already know: ``predict`` returns a
:class:`~repro.serve.types.PredictResponse` or raises the taxonomy error the
gateway answered with; ``predict_batch`` returns the mixed per-item list
(responses and :class:`~repro.errors.ApiError` instances) so partial
results survive.  Because the facade matches the single-process service's
calling convention (``predict(model_id, batch, request_id=...)``), anything
driving a :class:`~repro.serve.PersonalizationService` — the load driver
included — can drive a remote gateway unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import ApiError, error_from_dict
from ..serve.types import PersonalizeRequest, PredictRequest, PredictResponse
from .. import trace as _trace
from ..trace import Trace
from .transport import Transport
from .wire import ApiRequest, ApiResponse

__all__ = ["GatewayClient"]


class GatewayClient:
    """Synchronous Serving API v2 client over one :class:`Transport`.

    ``tenant`` identifies this client to per-tenant middleware (rate limits,
    quotas); ``deadline_ms`` set here is the default time budget stamped on
    every call (per-call arguments override it).
    """

    def __init__(
        self,
        transport: Transport,
        tenant: str = "default",
        deadline_ms: Optional[float] = None,
    ) -> None:
        self.transport = transport
        self.tenant = tenant
        self.deadline_ms = deadline_ms

    # -- wire face ---------------------------------------------------------------
    def call(
        self,
        method: str,
        payload: Optional[Dict] = None,
        request_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        trace: bool = False,
    ) -> ApiResponse:
        """Send one raw API call; returns the response envelope (no raise)."""
        request = ApiRequest(
            method=method,
            payload=payload or {},
            request_id=request_id,
            tenant=self.tenant,
            deadline_ms=self.deadline_ms if deadline_ms is None else deadline_ms,
            trace=bool(trace),
        )
        return self.transport.send(request)

    # -- typed facade ------------------------------------------------------------
    def personalize(
        self,
        request: Union[PersonalizeRequest, Dict],
        deadline_ms: Optional[float] = None,
    ) -> str:
        """Personalize one tenant through the gateway; returns the model id."""
        payload = request.to_dict() if isinstance(request, PersonalizeRequest) else request
        response = self.call(
            "personalize", payload, deadline_ms=deadline_ms
        ).raise_for_error()
        return response.payload["model_id"]

    def predict(
        self,
        model_id: str,
        batch: np.ndarray,
        request_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> PredictResponse:
        """Answer one request, or raise the taxonomy error the gateway hit.

        Same calling convention as ``PersonalizationService.predict`` — the
        deprecation-shim contract that lets pre-gateway callers point at a
        socket instead of an in-process service.
        """
        request = PredictRequest(model_id, batch, request_id)
        response = self.call(
            "predict", request.to_dict(), request_id=request.request_id,
            deadline_ms=deadline_ms, trace=_trace.enabled(),
        ).raise_for_error()
        result = PredictResponse.from_dict(response.payload["response"])
        if response.trace:
            # Rebuild the server-side spans client-side: hop durations are
            # portable across the wire even though clock origins are not.
            result.trace = Trace.from_wire(response.trace)
        return result

    def predict_batch(
        self,
        requests: Sequence[Union[PredictRequest, Dict]],
        deadline_ms: Optional[float] = None,
    ) -> List[Union[PredictResponse, ApiError]]:
        """Answer a mixed-tenant batch; per-item errors ride in the list.

        Unlike :meth:`predict` this never raises for per-item failures — a
        partial-results envelope decodes into exactly the items the backend
        produced, errors in place.  Envelope-level failures with no results
        at all (e.g. the whole batch was rate-limited) do raise.
        """
        payload = {
            "requests": [
                r.to_dict() if isinstance(r, PredictRequest) else r for r in requests
            ]
        }
        response = self.call(
            "predict_batch", payload, deadline_ms=deadline_ms, trace=_trace.enabled()
        )
        if response.payload is None:
            response.raise_for_error()
        items = response.payload["results"]
        # A batch envelope carries one shared span list (the items were
        # traced into one collector server-side); every decoded response
        # gets the same rebuilt trace.
        shared = Trace.from_wire(response.trace) if response.trace else None
        decoded: List[Union[PredictResponse, ApiError]] = []
        for item in items:
            if "response" in item:
                decoded.append(PredictResponse.from_dict(item["response"]))
                if shared is not None:
                    decoded[-1].trace = shared
            else:
                decoded.append(error_from_dict(item["error"]))
        return decoded

    def stats(self, deadline_ms: Optional[float] = None) -> Dict[str, object]:
        """The deployment's unified stats block, gateway metrics included."""
        response = self.call("stats", deadline_ms=deadline_ms).raise_for_error()
        return response.payload["stats"]

    def health(self, deadline_ms: Optional[float] = None) -> Dict[str, object]:
        response = self.call("health", deadline_ms=deadline_ms).raise_for_error()
        return response.payload

    def drain(self, deadline_ms: Optional[float] = None) -> None:
        self.call("drain", deadline_ms=deadline_ms).raise_for_error()

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
