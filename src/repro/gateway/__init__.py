"""Serving API v2: one versioned gateway over every serving backend.

After :mod:`repro.serve` (single-process) and :mod:`repro.cluster`
(sharded) grew their own front doors, this package is the unification: a
transport-agnostic, versioned API with structured errors and middleware,
mirroring how production serving stacks put a gateway in front of
heterogeneous engine pools.

* :mod:`repro.gateway.api` — the :class:`ServingAPI` protocol
  (personalize / predict / predict_batch / stats / health / drain) with
  :class:`LocalBackend` and :class:`ClusterBackend` adapters, plus the
  :func:`as_serving_api` shim for pre-gateway facades.
* :mod:`repro.gateway.wire` — versioned :class:`ApiRequest` /
  :class:`ApiResponse` envelopes (byte-stable JSON) carrying the existing
  :mod:`repro.serve.types` payloads and the :mod:`repro.errors` taxonomy.
* :mod:`repro.gateway.middleware` — composable pipeline: request
  validation, per-tenant token-bucket rate limiting + quotas, deadline
  propagation, retry-with-jitter on ``UNAVAILABLE``, per-route metrics.
* :mod:`repro.gateway.gateway` — the :class:`Gateway` router; errors become
  failure envelopes, never exceptions into a transport.
* :mod:`repro.gateway.client` — :class:`GatewayClient`, the typed sync
  facade speaking the same calling convention as the in-process service.
* :mod:`repro.gateway.transport` — the in-process :class:`LoopbackTransport`
  and the stdlib :class:`GatewayHTTPServer` / :class:`HttpTransport` pair,
  wire-identical by construction.

Quickstart::

    from repro.cluster import ClusterConfig, ClusterService
    from repro.gateway import ClusterBackend, Gateway, GatewayClient, serve_http

    cluster = ClusterService(ClusterConfig(shards=4), registry=registry)
    gateway = Gateway(ClusterBackend(cluster))
    with serve_http(gateway) as server:                  # ephemeral port
        client = GatewayClient(server.transport())
        response = client.predict(model_id, batch)       # over the socket
        print(client.stats()["latency"])                 # unified schema
"""

from ..errors import (
    ApiError,
    DeadlineExceededError,
    ERROR_CODES,
    InternalError,
    InvalidArgumentError,
    NotFoundError,
    ResourceExhaustedError,
    UnavailableError,
    error_from_dict,
    error_from_exception,
)
from .api import ClusterBackend, LocalBackend, ServingAPI, as_serving_api
from .client import GatewayClient
from .gateway import Gateway, GatewayConfig
from .middleware import (
    DeadlineMiddleware,
    MetricsMiddleware,
    Middleware,
    RateLimitMiddleware,
    RetryMiddleware,
    ValidationMiddleware,
    build_pipeline,
)
from .transport import (
    GatewayHTTPServer,
    HttpTransport,
    LoopbackTransport,
    Transport,
    serve_http,
)
from .wire import API_VERSION, METHODS, ApiRequest, ApiResponse

__all__ = [
    # protocol + backends
    "ServingAPI",
    "LocalBackend",
    "ClusterBackend",
    "as_serving_api",
    # wire
    "API_VERSION",
    "METHODS",
    "ApiRequest",
    "ApiResponse",
    # errors (re-exported from repro.errors)
    "ApiError",
    "InvalidArgumentError",
    "NotFoundError",
    "ResourceExhaustedError",
    "UnavailableError",
    "DeadlineExceededError",
    "InternalError",
    "ERROR_CODES",
    "error_from_dict",
    "error_from_exception",
    # gateway + middleware
    "Gateway",
    "GatewayConfig",
    "Middleware",
    "build_pipeline",
    "ValidationMiddleware",
    "RateLimitMiddleware",
    "DeadlineMiddleware",
    "RetryMiddleware",
    "MetricsMiddleware",
    # client + transports
    "GatewayClient",
    "Transport",
    "LoopbackTransport",
    "HttpTransport",
    "GatewayHTTPServer",
    "serve_http",
]
