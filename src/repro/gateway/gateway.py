"""The gateway: one versioned front door over any :class:`ServingAPI` backend.

``Gateway.handle`` takes an :class:`~repro.gateway.wire.ApiRequest`, runs it
through the middleware pipeline (validation → metrics → rate limit → retry →
deadline) into the method router, and *always* returns an
:class:`~repro.gateway.wire.ApiResponse` — taxonomy errors raised anywhere in
the stack become failure envelopes, never exceptions into the transport.
``handle_json`` is the same contract one serialization step out, which is
exactly what the loopback and HTTP transports call, so every transport
shares one code path and bit-identical behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..cluster.telemetry import assert_stats_schema
from ..errors import ApiError, error_from_exception
from ..serve.types import PersonalizeRequest, PredictRequest
from ..trace import HOP_GATEWAY, HOP_MIDDLEWARE, Trace, trace_block
from .. import trace as _trace
from .api import ServingAPI, as_serving_api
from .middleware import (
    DeadlineMiddleware,
    MetricsMiddleware,
    Middleware,
    RateLimitMiddleware,
    RetryMiddleware,
    ValidationMiddleware,
    build_pipeline,
)
from .wire import ApiRequest, ApiResponse

__all__ = ["GatewayConfig", "Gateway"]


@dataclass
class GatewayConfig:
    """Deployment knobs of one gateway instance.

    Rate limiting is off unless ``rate_per_s`` (or ``quota``) is set — the
    default gateway adds no policy beyond validation, metrics and retries,
    so deterministic replay artifacts stay deterministic.
    """

    rate_per_s: Optional[float] = None  #: per-tenant token refill; None = off
    burst: Optional[float] = None  #: bucket capacity (default: ~rate_per_s)
    quota: Optional[int] = None  #: absolute per-tenant request ceiling
    max_attempts: int = 3  #: total tries per call (1 = no retries)
    retry_base_delay_s: float = 0.002
    seed: int = 0  #: seeds the retry jitter

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")


class Gateway:
    """Serving API v2 router + middleware over one backend.

    Example
    -------
    >>> gateway = Gateway(ClusterBackend(cluster))
    >>> response = gateway.handle(ApiRequest("predict", request.to_dict()))
    >>> response.ok, response.payload["response"]["classes"]
    """

    def __init__(
        self,
        backend: ServingAPI,
        config: Optional[GatewayConfig] = None,
        middlewares: Optional[Sequence[Middleware]] = None,
    ) -> None:
        self.backend = as_serving_api(backend)
        self.config = config or GatewayConfig()
        self.metrics = MetricsMiddleware()
        self.rate_limiter: Optional[RateLimitMiddleware] = None
        self.retry: Optional[RetryMiddleware] = None

        stack: List[Middleware] = [ValidationMiddleware(), self.metrics]
        if self.config.rate_per_s is not None or self.config.quota is not None:
            self.rate_limiter = RateLimitMiddleware(
                rate_per_s=self.config.rate_per_s,
                burst=self.config.burst,
                quota=self.config.quota,
            )
            stack.append(self.rate_limiter)
        if self.config.max_attempts > 1:
            self.retry = RetryMiddleware(
                max_attempts=self.config.max_attempts,
                base_delay_s=self.config.retry_base_delay_s,
                seed=self.config.seed,
            )
            stack.append(self.retry)
        stack.append(DeadlineMiddleware())
        if middlewares:
            stack.extend(middlewares)
        self.middlewares: List[Middleware] = stack
        self._pipeline = build_pipeline(stack, self._route)
        self._routes: Dict[str, Callable[[ApiRequest], ApiResponse]] = {
            "personalize": self._route_personalize,
            "predict": self._route_predict,
            "predict_batch": self._route_predict_batch,
            "stats": self._route_stats,
            "health": self._route_health,
            "drain": self._route_drain,
        }

    # -- the front door --------------------------------------------------------
    def handle(self, request: ApiRequest) -> ApiResponse:
        """Answer one envelope; never raises.

        Tracing rides per request: the process-wide switch
        (:func:`repro.trace.enable`) or the envelope's own ``trace`` flag
        turns it on; otherwise the only added cost is this one boolean
        check, and response bytes are exactly the pre-trace ones.
        """
        if not (_trace.enabled() or request.trace):
            try:
                return self._pipeline(request)
            except ApiError as err:
                return ApiResponse.failure(request, err)
            except Exception as exc:  # defence in depth
                return ApiResponse.failure(request, error_from_exception(exc))
        return self._handle_traced(request)

    def _handle_traced(self, request: ApiRequest) -> ApiResponse:
        """The traced twin of :meth:`handle`: same outcomes, plus spans.

        The ``gateway`` hop is the whole envelope time; ``middleware`` is
        recorded by :meth:`_route` as the time spent reaching the router,
        and the deeper hops land as the request crosses the backend.
        """
        trace_ctx = Trace()
        request._trace = trace_ctx
        request._trace_started = time.perf_counter()
        try:
            response = self._pipeline(request)
        except ApiError as err:
            response = ApiResponse.failure(request, err)
        except Exception as exc:  # defence in depth
            response = ApiResponse.failure(request, error_from_exception(exc))
        trace_ctx.add(HOP_GATEWAY, time.perf_counter() - request._trace_started)
        response.trace = trace_ctx.to_wire()
        return response

    def handle_json(self, raw) -> str:
        """The wire face: JSON request string/bytes in, JSON response out."""
        return self.handle_envelope(raw).to_json()

    def handle_envelope(self, raw) -> ApiResponse:
        """Decode + handle a raw JSON envelope (transport entry point)."""
        if isinstance(raw, (bytes, bytearray)):
            try:
                raw = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                return ApiResponse.failure(None, error_from_exception(exc))
        try:
            request = ApiRequest.from_json(raw)
        except ApiError as err:
            return ApiResponse.failure(None, err)
        return self.handle(request)

    # -- routes ----------------------------------------------------------------
    def _route(self, request: ApiRequest) -> ApiResponse:
        # Validation middleware guarantees the method exists by the time the
        # pipeline bottoms out here.
        trace_ctx = getattr(request, "_trace", None)
        if trace_ctx is not None:
            # Time from envelope entry to the router = the middleware chain.
            # Under retries the hop records once per attempt; hop totals sum.
            trace_ctx.add(
                HOP_MIDDLEWARE, time.perf_counter() - request._trace_started
            )
        return self._routes[request.method](request)

    def _deadline_s(self, request: ApiRequest) -> Optional[float]:
        """The remaining budget as the backend timeout, in seconds."""
        return None if request.deadline_ms is None else request.deadline_ms / 1e3

    def _route_personalize(self, request: ApiRequest) -> ApiResponse:
        spec = PersonalizeRequest.from_dict(request.payload)
        model_id = self.backend.personalize(spec)
        return ApiResponse.success(request, {"model_id": model_id})

    def _route_predict(self, request: ApiRequest) -> ApiResponse:
        predict = PredictRequest.from_dict(request.payload)
        predict.trace = getattr(request, "_trace", None)
        response = self.backend.predict(predict, timeout=self._deadline_s(request))
        return ApiResponse.success(request, {"response": response.to_dict()})

    def _route_predict_batch(self, request: ApiRequest) -> ApiResponse:
        predicts = [PredictRequest.from_dict(p) for p in request.payload["requests"]]
        trace_ctx = getattr(request, "_trace", None)
        if trace_ctx is not None:
            for predict in predicts:
                predict.trace = trace_ctx
        results = self.backend.predict_batch(
            predicts, timeout=self._deadline_s(request)
        )
        items: List[Dict] = []
        first_error: Optional[ApiError] = None
        for result in results:
            if isinstance(result, ApiError):
                items.append({"error": result.to_dict()})
                first_error = first_error or result
            else:
                items.append({"response": result.to_dict()})
        payload = {
            "results": items,
            "completed": sum(1 for item in items if "response" in item),
            "failed": sum(1 for item in items if "error" in item),
        }
        if first_error is not None:
            # Partial results: the error rides the envelope, the completed
            # responses ride the payload — neither is thrown away.
            return ApiResponse.failure(request, first_error, partial=payload)
        return ApiResponse.success(request, payload)

    def _route_stats(self, request: ApiRequest) -> ApiResponse:
        return ApiResponse.success(request, {"stats": self.stats()})

    def _route_health(self, request: ApiRequest) -> ApiResponse:
        report = dict(self.backend.health())
        report["middlewares"] = [type(m).__name__ for m in self.middlewares]
        return ApiResponse.success(request, report)

    def _route_drain(self, request: ApiRequest) -> ApiResponse:
        self.backend.drain()
        return ApiResponse.success(request, {"drained": True})

    # -- introspection / lifecycle ----------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Backend stats (unified schema) plus the gateway's own block.

        The top-level ``latency`` / ``cache`` / ``queue`` / ``errors`` keys
        are the *backend's* (where the serving work happens); the gateway's
        per-route latency/error metrics and middleware counters live under
        ``"gateway"``.
        """
        stats = dict(self.backend.stats())
        gateway_block = self.metrics.snapshot()
        if self.rate_limiter is not None:
            gateway_block["rate_limit"] = self.rate_limiter.snapshot()
        if self.retry is not None:
            gateway_block["retry"] = self.retry.snapshot()
        stats["gateway"] = gateway_block
        block = trace_block()
        if block is not None:
            stats["trace"] = block
        return assert_stats_schema(stats)

    def drain(self) -> None:
        self.backend.drain()

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
