"""Multi-tenant serving layer: the reproduction's canonical top-level API.

The paper's premise is *per-user* pruned models — one CRISP-personalized
network per user profile.  This package turns those pruned artifacts into
addressable, cacheable, batch-servable tenants:

* :mod:`repro.serve.types` — typed request/response messages with JSON
  round-trip (:class:`EngineSpec`, :class:`PersonalizeRequest`,
  :class:`PredictRequest`, :class:`PredictResponse`).
* :mod:`repro.serve.registry` — :class:`ModelRegistry`: pruned weights +
  engine specs under stable model ids, with a save/load directory layout.
* :mod:`repro.serve.cache` — :class:`EngineCache`: capacity-bounded LRU of
  lazily materialized per-tenant engines.
* :mod:`repro.serve.scheduler` — :class:`BatchScheduler`: micro-batches
  mixed-tenant request streams into one fused dispatch per tenant.
* :mod:`repro.serve.service` — :class:`PersonalizationService`: the facade
  wiring CRISP pruning → registry → cache → scheduler end to end.

Quickstart::

    from repro.serve import PersonalizationService, PersonalizeRequest, ServiceConfig

    service = PersonalizationService(ServiceConfig(cache_capacity=2))
    model_id = service.personalize(PersonalizeRequest(user_id=0, num_classes=3))
    response = service.predict(model_id, batch)        # one tenant
    responses = service.predict_batch(mixed_requests)  # micro-batched
"""

from .cache import EngineCache
from .registry import ModelRecord, ModelRegistry
from .scheduler import BatchScheduler
from .service import (
    PersonalizationService,
    ServiceConfig,
    clear_universal_model_cache,
    set_universal_model_store,
    restrict_head_to_classes,
    universal_model,
)
from .types import EngineSpec, PersonalizeRequest, PredictRequest, PredictResponse

__all__ = [
    "EngineSpec",
    "PersonalizeRequest",
    "PredictRequest",
    "PredictResponse",
    "ModelRecord",
    "ModelRegistry",
    "EngineCache",
    "BatchScheduler",
    "PersonalizationService",
    "ServiceConfig",
    "universal_model",
    "clear_universal_model_cache",
    "set_universal_model_store",
    "restrict_head_to_classes",
]
