"""The serving facade: CRISP pruning → registry → engine cache → scheduler.

:class:`PersonalizationService` is the canonical top-level API of the
reproduction.  One call personalizes a model for a user profile
(:meth:`~PersonalizationService.personalize` → stable model id), and one
call answers inference traffic against any registered id
(:meth:`~PersonalizationService.predict` /
:meth:`~PersonalizationService.predict_batch`), with engines cached per
tenant and mixed-tenant batches micro-batched by the scheduler.

The module also owns the *universal model provider* — pre-training and
caching of the shared backbone each personalization starts from — which the
experiment harness (:mod:`repro.experiments.common`) consumes through the
same functions.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data import (
    DataLoader,
    SyntheticImageDataset,
    UserProfile,
    build_user_loaders,
    make_dataset,
    sample_user_profile,
)
from ..nn.models import build_model
from ..nn.models.base import ClassifierModel, prunable_layers
from ..nn.trainer import TrainConfig, Trainer, evaluate
from ..pruning import CRISPConfig, crisp_prune
from .cache import EngineCache
from .registry import ModelRegistry
from .scheduler import BatchScheduler
from .types import EngineSpec, PersonalizeRequest, PredictRequest, PredictResponse

__all__ = [
    "ServiceConfig",
    "PersonalizationService",
    "universal_model",
    "clear_universal_model_cache",
    "set_universal_model_store",
    "restrict_head_to_classes",
]


# ---------------------------------------------------------------------------
# Universal model provider (shared backbone pre-training, cached per config)
# ---------------------------------------------------------------------------

#: Content key (sha256 of the training closure) -> (model, accuracy).
_UNIVERSAL_CACHE: Dict[str, Tuple[ClassifierModel, float]] = {}

#: Optional on-disk tier: a :class:`repro.pipeline.store.PipelineStore`
#: under which trained backbones persist across processes.
_UNIVERSAL_STORE = None

#: Step name universal models are filed under in the pipeline store.
_UNIVERSAL_STEP = "universal-model"


def clear_universal_model_cache() -> None:
    """Drop every cached pre-trained universal model (used by tests)."""
    _UNIVERSAL_CACHE.clear()


def set_universal_model_store(store) -> None:
    """Persist universal models through a pipeline store (``None`` disables).

    Accepts a :class:`repro.pipeline.store.PipelineStore` or a directory
    path.  Once set, a trained backbone is committed under its content key
    and later processes (or a resumed sweep) load it instead of retraining.
    """
    global _UNIVERSAL_STORE
    if store is None:
        _UNIVERSAL_STORE = None
        return
    from ..pipeline.store import PipelineStore

    _UNIVERSAL_STORE = store if isinstance(store, PipelineStore) else PipelineStore(store)


def _universal_model_key(spec: Dict[str, object], seed: int) -> str:
    """Content key of one universal-model training closure.

    Keyed by the full protocol *spec*, the *seed* and a fingerprint of the
    training code itself — not by names or paths — so editing the protocol
    or the trainer invalidates stale entries structurally (the old
    name-keyed cache served stale models when specs changed under the same
    name).
    """
    from ..pipeline.fingerprint import code_fingerprint, content_key

    return content_key(
        {"spec": spec, "seed": seed, "code": code_fingerprint(_train_universal)}
    )


def _train_universal(
    model_name: str,
    dataset_preset: str,
    pretrain_epochs: int,
    num_classes: int,
    input_size: int,
    batch_size: int,
    seed: int,
    dataset: Optional[SyntheticImageDataset] = None,
) -> Tuple[ClassifierModel, float]:
    """Actually pre-train one universal backbone (the fingerprinted closure)."""
    dataset = dataset or make_dataset(dataset_preset, seed=seed)
    all_classes = list(range(num_classes))
    train_x, train_y = dataset.split("train", classes=all_classes)
    val_x, val_y = dataset.split("val", classes=all_classes)
    train_loader = DataLoader(train_x, train_y, batch_size=batch_size, seed=seed)
    val_loader = DataLoader(val_x, val_y, batch_size=batch_size, shuffle=False)

    model = build_model(model_name, num_classes=num_classes, input_size=input_size, seed=seed)
    trainer = Trainer(model, TrainConfig(epochs=pretrain_epochs, lr=0.05))
    trainer.fit(train_loader, val_loader=None)
    accuracy = evaluate(model, iter(val_loader))
    return model, accuracy


def universal_model(
    model_name: str,
    dataset_preset: str,
    pretrain_epochs: int,
    num_classes: int,
    input_size: int,
    batch_size: int = 16,
    seed: int = 0,
    dataset: Optional[SyntheticImageDataset] = None,
) -> Tuple[ClassifierModel, float]:
    """Train (or fetch from cache) the universal model personalization starts from.

    Returns ``(model, validation_accuracy)``.  The cached instance is never
    handed out directly — callers receive a deep copy they can prune.  The
    cache is keyed by a content hash of the full training closure (protocol
    spec, seed and a fingerprint of the training code), so experiments and
    services with the same protocol share one pre-trained backbone — and a
    *changed* protocol or trainer can never be served a stale entry.  With
    :func:`set_universal_model_store` configured, trained backbones also
    persist on disk under the same keys.
    """
    from ..backend import active_backend

    # The backend participates in the key: different backends may accumulate
    # different floating-point round-off during training, and a cached model
    # must be reproducible for the backend that trained it.
    spec = {
        "model_name": model_name,
        "dataset_preset": dataset_preset,
        "pretrain_epochs": pretrain_epochs,
        "num_classes": num_classes,
        "input_size": input_size,
        "batch_size": batch_size,
        "backend": active_backend().name,
    }
    key = _universal_model_key(spec, seed)
    if key not in _UNIVERSAL_CACHE:
        entry = (
            _UNIVERSAL_STORE.get(_UNIVERSAL_STEP, key)
            if _UNIVERSAL_STORE is not None
            else None
        )
        if entry is not None:
            model = build_model(
                model_name, num_classes=num_classes, input_size=input_size, seed=seed
            )
            with np.load(entry.artifact_dir / "state.npz") as npz:
                model.load_state_dict({name: npz[name].copy() for name in npz.files})
            accuracy = float(entry.output["accuracy"])
        else:
            model, accuracy = _train_universal(
                model_name,
                dataset_preset,
                pretrain_epochs,
                num_classes,
                input_size,
                batch_size,
                seed,
                dataset=dataset,
            )
            if _UNIVERSAL_STORE is not None:
                staging = _UNIVERSAL_STORE.staging_dir(_UNIVERSAL_STEP, key)
                np.savez(staging / "artifacts" / "state.npz", **model.state_dict())
                _UNIVERSAL_STORE.commit(
                    _UNIVERSAL_STEP,
                    key,
                    {"accuracy": accuracy, "seed": seed, "spec": spec},
                    staging=staging,
                )
        _UNIVERSAL_CACHE[key] = (model, accuracy)

    cached_model, accuracy = _UNIVERSAL_CACHE[key]
    return copy.deepcopy(cached_model), accuracy


def restrict_head_to_classes(
    model: ClassifierModel, preferred_classes: Sequence[int], total_classes: int
) -> None:
    """Shrink the classification head to a user's preferred classes, in place.

    Keeps only the head rows of the preferred classes — the "focus the model
    on the classes the user sees" step the paper performs before pruning.
    The backbone is untouched.
    """
    from ..nn.layers import Linear

    # VGG wraps its head in a Sequential; the last prunable Linear is the head.
    linear_layers = [m for m in prunable_layers(model).values() if isinstance(m, Linear)]
    final = linear_layers[-1] if linear_layers else model.classifier
    if isinstance(final, Linear) and final.out_features == total_classes:
        keep_rows = np.asarray(list(preferred_classes))
        final.weight.data = final.weight.data[keep_rows].copy()
        if final.bias is not None:
            final.bias.data = final.bias.data[keep_rows].copy()
        final.out_features = len(keep_rows)
    model.num_classes = len(preferred_classes)


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------


@dataclass
class ServiceConfig:
    """Deployment-level knobs of a :class:`PersonalizationService`.

    The training-protocol fields mirror
    :class:`~repro.experiments.common.ExperimentScale` so an experiment scale
    converts directly into a service (see
    :func:`repro.experiments.common.make_service`).
    """

    model_name: str = "resnet_tiny"
    dataset_preset: str = "synthetic-tiny"
    pretrain_epochs: int = 2
    finetune_epochs: int = 1
    prune_iterations: int = 2
    batch_size: int = 16
    samples_per_class: Optional[int] = None
    cache_capacity: int = 4
    max_batch_size: Optional[int] = None
    engine: EngineSpec = field(default_factory=EngineSpec)
    seed: int = 0


class PersonalizationService:
    """End-to-end multi-tenant serving: personalize, register, cache, batch.

    Example
    -------
    >>> service = PersonalizationService(ServiceConfig(cache_capacity=2))
    >>> model_id = service.personalize(PersonalizeRequest(user_id=0, num_classes=3))
    >>> response = service.predict(model_id, batch)
    >>> responses = service.predict_batch(mixed_tenant_requests)
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        registry: Optional[ModelRegistry] = None,
    ) -> None:
        # Deferred import: repro.cluster layers on repro.serve, so importing
        # its telemetry at module scope would be circular.
        from ..cluster.telemetry import LatencyHistogram

        self.config = config or ServiceConfig()
        self.registry = registry or ModelRegistry()
        self.cache = EngineCache(self.registry, capacity=self.config.cache_capacity)
        self.scheduler = BatchScheduler(self.cache, max_batch_size=self.config.max_batch_size)
        self.latency = LatencyHistogram()
        self.failed = 0
        self._datasets: Dict[int, SyntheticImageDataset] = {}

    # -- data -----------------------------------------------------------------
    def dataset(self, seed: Optional[int] = None) -> SyntheticImageDataset:
        """The service's dataset (cached per seed)."""
        seed = self.config.seed if seed is None else seed
        if seed not in self._datasets:
            self._datasets[seed] = make_dataset(self.config.dataset_preset, seed=seed)
        return self._datasets[seed]

    def _resolve_profile(self, request: PersonalizeRequest) -> UserProfile:
        if request.preferred_classes is not None:
            return UserProfile(
                user_id=request.user_id,
                preferred_classes=sorted(request.preferred_classes),
            )
        dataset = self.dataset(request.seed)
        return sample_user_profile(
            dataset,
            request.num_classes,
            user_id=request.user_id,
            seed=request.seed + request.user_id,
        )

    # -- personalization ------------------------------------------------------
    def personalize(
        self, request: Union[PersonalizeRequest, UserProfile], **overrides
    ) -> str:
        """Build, prune and register a model for one user; return its model id.

        Accepts either a full :class:`PersonalizeRequest` or a bare
        :class:`~repro.data.UserProfile` (keyword overrides then feed the
        request, e.g. ``target_sparsity=0.9``).  The pipeline is the paper's:
        pre-trained universal model → head restricted to the user's classes →
        CRISP pruning on the user's data → registry entry with the engine
        spec the weights were pruned for.

        Model ids are stable per (architecture, engine spec, profile):
        personalizing the same profile again — even with different pruning
        settings — refreshes the tenant's model *in place* under the same
        id (and evicts any cached engine so stale weights are never
        served).  The registry metadata records the settings behind the
        current weights.
        """
        if isinstance(request, UserProfile):
            request = PersonalizeRequest(
                user_id=request.user_id,
                preferred_classes=list(request.preferred_classes),
                **overrides,
            )
        elif overrides:
            raise TypeError("keyword overrides are only valid with a UserProfile")

        config = self.config
        dataset = self.dataset(request.seed)
        profile = self._resolve_profile(request)

        model, universal_accuracy = universal_model(
            config.model_name,
            config.dataset_preset,
            config.pretrain_epochs,
            num_classes=dataset.num_classes,
            input_size=dataset.image_size,
            batch_size=config.batch_size,
            seed=request.seed,
            dataset=dataset,
        )
        restrict_head_to_classes(model, profile.preferred_classes, dataset.num_classes)

        train_loader, val_loader = build_user_loaders(
            dataset,
            profile,
            batch_size=config.batch_size,
            samples_per_class=config.samples_per_class,
            seed=request.seed,
        )

        spec = request.engine or config.engine
        result = crisp_prune(
            model,
            train_loader,
            val_loader,
            CRISPConfig(
                n=spec.n,
                m=spec.m,
                block_size=spec.block_size,
                target_sparsity=request.target_sparsity,
                iterations=request.iterations or config.prune_iterations,
                finetune_epochs=(
                    request.finetune_epochs
                    if request.finetune_epochs is not None
                    else config.finetune_epochs
                ),
                seed=request.seed,
            ),
        )

        model_id = self.registry.register(
            model,
            spec=spec,
            profile=profile,
            metadata={
                "target_sparsity": request.target_sparsity,
                "achieved_sparsity": result.final_sparsity,
                "accuracy": result.final_accuracy,
                "universal_accuracy": universal_accuracy,
            },
        )
        # A re-personalized tenant must not be served stale weights.
        self.cache.evict(model_id)
        return model_id

    # -- inference ------------------------------------------------------------
    def engine(self, model_id: str):
        """The (cached) inference engine serving ``model_id``."""
        return self.cache.get(model_id)

    def predict(
        self, model_id: str, batch: np.ndarray, request_id: Optional[str] = None
    ) -> PredictResponse:
        """Answer a single request (one tenant, one batch)."""
        return self.predict_batch([PredictRequest(model_id, batch, request_id)])[0]

    def predict_batch(self, requests: Sequence[PredictRequest]) -> List[PredictResponse]:
        """Answer a mixed-tenant request batch through the micro-batching scheduler.

        Each answered request records the dispatch's wall-clock time into the
        service latency histogram (that *is* the latency a synchronous caller
        observed); failed dispatches count into the ``errors`` stats block.
        """
        start = time.perf_counter()
        try:
            responses = self.scheduler.dispatch(requests)
        except Exception:
            self.failed += len(requests)
            raise
        elapsed = time.perf_counter() - start
        for _ in responses:
            self.latency.record(elapsed)
        for request in requests:
            # Traced requests attribute the whole dispatch to the `service`
            # hop (scheduler + cache + engine, as a synchronous caller sees
            # it); the `engine` sub-span is recorded by the scheduler.
            if request.trace is not None:
                request.trace.add("service", elapsed)
        return responses

    # -- introspection / persistence ------------------------------------------
    def model_ids(self) -> List[str]:
        return self.registry.ids()

    def stats(self) -> Dict[str, object]:
        """Service counters in the unified serving schema.

        The top-level ``latency`` / ``cache`` / ``queue`` / ``errors`` blocks
        are the cross-deployment contract (validated by
        :func:`repro.cluster.telemetry.assert_stats_schema` and shared with
        ``ClusterService.stats()`` and ``Gateway.stats()``); ``models`` and
        ``scheduler`` are this facade's own extras.
        """
        from ..cluster.telemetry import assert_stats_schema
        from ..trace import trace_block

        scheduler = self.scheduler.stats()
        payload = {
            "models": len(self.registry),
            "latency": self.latency.summary(),
            "cache": self.cache.stats(),
            "queue": {
                "pending": scheduler["pending"],
                "max_depth": scheduler["depth_max"],
            },
            "errors": {"failed": self.failed, "rejected": 0},
            "scheduler": scheduler,
        }
        block = trace_block()
        if block is not None:
            payload["trace"] = block
        return assert_stats_schema(payload)

    def save(self, root) -> None:
        """Persist every registered model under ``root`` (registry layout)."""
        self.registry.save(root)

    @classmethod
    def load(cls, root, config: Optional[ServiceConfig] = None) -> "PersonalizationService":
        """Rebuild a service over a registry directory written by :meth:`save`."""
        return cls(config=config, registry=ModelRegistry.load(root))
