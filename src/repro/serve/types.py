"""Typed request/response messages of the serving API.

These dataclasses are the wire format of :mod:`repro.serve`: everything a
caller exchanges with the :class:`~repro.serve.service.PersonalizationService`
is one of these, and every one of them round-trips through plain
JSON-compatible dicts (``to_dict`` / ``from_dict``) and JSON strings
(``to_json`` / ``from_json``) so request streams can be recorded, replayed
and shipped across process boundaries.

* :class:`EngineSpec` — how to materialize an inference
  :class:`~repro.backend.engine.Engine` for a stored model (backend, weight
  format, hybrid-sparsity parameters).
* :class:`PersonalizeRequest` — "build me a pruned model for this user
  profile": the input of the personalization path.
* :class:`PredictRequest` / :class:`PredictResponse` — one inference call
  against a registered model id, and its answer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..backend.engine import WEIGHT_FORMATS

__all__ = [
    "EngineSpec",
    "PersonalizeRequest",
    "PredictRequest",
    "PredictResponse",
]


class _JsonMessage:
    """Shared JSON round-trip plumbing for the serve dataclasses."""

    def to_dict(self) -> Dict:  # pragma: no cover - overridden
        raise NotImplementedError

    @classmethod
    def from_dict(cls, payload: Dict):  # pragma: no cover - overridden
        raise NotImplementedError

    def to_json(self) -> str:
        """Serialize to a JSON string (arrays become nested lists)."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, payload: str):
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(payload))


@dataclass(frozen=True)
class EngineSpec(_JsonMessage):
    """Everything needed to build an :class:`~repro.backend.engine.Engine`.

    A spec is stored next to each registered model so any process holding the
    registry can materialize an identical engine: the compute backend, the
    compressed weight format and the hybrid-sparsity parameters the weights
    were pruned with.
    """

    backend: str = "fast"
    weight_format: str = "crisp"
    n: int = 2
    m: int = 4
    block_size: int = 16

    def __post_init__(self) -> None:
        if self.weight_format not in WEIGHT_FORMATS:
            raise ValueError(
                f"Unknown weight_format {self.weight_format!r}; available: {WEIGHT_FORMATS}"
            )
        if not 0 < self.n <= self.m:
            raise ValueError(f"Invalid N:M ratio {self.n}:{self.m}")
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")

    def build(self, module, attach: bool = True):
        """Materialize an engine for ``module`` according to this spec."""
        from ..backend.engine import Engine

        return Engine.from_spec(module, self, attach=attach)

    def to_dict(self) -> Dict:
        return {
            "backend": self.backend,
            "weight_format": self.weight_format,
            "n": self.n,
            "m": self.m,
            "block_size": self.block_size,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "EngineSpec":
        return cls(
            backend=payload.get("backend", "fast"),
            weight_format=payload.get("weight_format", "crisp"),
            n=int(payload.get("n", 2)),
            m=int(payload.get("m", 4)),
            block_size=int(payload.get("block_size", 16)),
        )


@dataclass
class PersonalizeRequest(_JsonMessage):
    """Ask the service to build a pruned model for one user.

    Either ``preferred_classes`` (an explicit class subset) or
    ``num_classes`` (sample a profile of that size) must be given.  The
    hybrid-sparsity parameters of ``engine`` double as the CRISP pruning
    configuration, so the stored weights always satisfy the format they will
    be served in; like ``iterations`` and ``finetune_epochs``, ``engine``
    left as ``None`` falls back to the service's configured default.
    """

    user_id: int
    preferred_classes: Optional[List[int]] = None
    num_classes: Optional[int] = None
    target_sparsity: float = 0.8
    iterations: Optional[int] = None
    finetune_epochs: Optional[int] = None
    seed: int = 0
    engine: Optional[EngineSpec] = None

    def __post_init__(self) -> None:
        if self.preferred_classes is None and self.num_classes is None:
            raise ValueError("PersonalizeRequest needs preferred_classes or num_classes")
        if self.preferred_classes is not None:
            self.preferred_classes = [int(c) for c in self.preferred_classes]
            if not self.preferred_classes:
                raise ValueError("preferred_classes must be non-empty")
        if not 0.0 <= self.target_sparsity < 1.0:
            raise ValueError(f"target_sparsity must be in [0, 1), got {self.target_sparsity}")

    def to_dict(self) -> Dict:
        return {
            "user_id": self.user_id,
            "preferred_classes": self.preferred_classes,
            "num_classes": self.num_classes,
            "target_sparsity": self.target_sparsity,
            "iterations": self.iterations,
            "finetune_epochs": self.finetune_epochs,
            "seed": self.seed,
            "engine": None if self.engine is None else self.engine.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PersonalizeRequest":
        engine = payload.get("engine")
        return cls(
            user_id=int(payload["user_id"]),
            preferred_classes=payload.get("preferred_classes"),
            num_classes=payload.get("num_classes"),
            target_sparsity=float(payload.get("target_sparsity", 0.8)),
            iterations=payload.get("iterations"),
            finetune_epochs=payload.get("finetune_epochs"),
            seed=int(payload.get("seed", 0)),
            engine=None if engine is None else EngineSpec.from_dict(engine),
        )


@dataclass
class PredictRequest(_JsonMessage):
    """One inference call: a batch of inputs addressed to a model id.

    ``request_id`` is assigned by the scheduler on submission when not
    provided, so replayed request streams keep their original ids.
    """

    model_id: str
    inputs: np.ndarray
    request_id: Optional[str] = None

    #: In-flight trace context (:class:`repro.trace.Trace`) or ``None``.
    #: Deliberately a plain class attribute — not a dataclass field — so it
    #: stays outside ``to_dict``/equality and the wire format is unchanged.
    trace = None

    def __post_init__(self) -> None:
        self.inputs = np.asarray(self.inputs, dtype=np.float64)
        if self.inputs.ndim == 3:  # single image -> batch of one
            self.inputs = self.inputs[None]
        if self.inputs.ndim != 4:
            raise ValueError(
                f"inputs must be (N, C, H, W) images, got shape {self.inputs.shape}"
            )

    @property
    def batch_size(self) -> int:
        return int(self.inputs.shape[0])

    def to_dict(self) -> Dict:
        return {
            "model_id": self.model_id,
            "inputs": self.inputs.tolist(),
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PredictRequest":
        return cls(
            model_id=payload["model_id"],
            inputs=np.asarray(payload["inputs"], dtype=np.float64),
            request_id=payload.get("request_id"),
        )


@dataclass
class PredictResponse(_JsonMessage):
    """The answer to one :class:`PredictRequest`.

    ``batched_with`` records how many requests shared the fused dispatch that
    produced this response — the observable effect of micro-batching.
    ``status`` is the HTTP-style outcome code (always 200 here; the cluster
    frontend answers over-admission with a 503-status rejection sharing the
    same ``request_id``/``model_id``/``status`` surface).
    """

    request_id: str
    model_id: str
    logits: np.ndarray
    classes: np.ndarray
    batched_with: int = 1
    status: int = 200

    #: Completed trace context for traced requests (see
    #: :attr:`PredictRequest.trace`); outside the wire dict by design.
    trace = None

    def __post_init__(self) -> None:
        self.logits = np.asarray(self.logits, dtype=np.float64)
        self.classes = np.asarray(self.classes, dtype=np.int64)

    @property
    def ok(self) -> bool:
        return self.status < 400

    def to_dict(self) -> Dict:
        return {
            "request_id": self.request_id,
            "model_id": self.model_id,
            "logits": self.logits.tolist(),
            "classes": self.classes.tolist(),
            "batched_with": self.batched_with,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PredictResponse":
        return cls(
            request_id=payload["request_id"],
            model_id=payload["model_id"],
            logits=np.asarray(payload["logits"], dtype=np.float64),
            classes=np.asarray(payload["classes"], dtype=np.int64),
            batched_with=int(payload.get("batched_with", 1)),
            status=int(payload.get("status", 200)),
        )
