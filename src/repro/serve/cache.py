"""Multi-tenant engine cache: LRU over lazily materialized engines.

Materializing an :class:`~repro.backend.engine.Engine` is the expensive part
of serving a tenant — the module is rebuilt from the registry and every
prunable layer's weight re-encoded into its compressed format.  The cache
amortises that cost across requests: the first request for a model id pays
the build, subsequent requests reuse the attached engine, and a bounded
capacity keeps memory proportional to the number of *hot* tenants rather
than the number of registered ones (the paper's millions-of-users setting).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from ..metrics.events import emit
from .registry import ModelRegistry

__all__ = ["EngineCache"]


class EngineCache:
    """Capacity-bounded LRU cache of per-tenant inference engines."""

    def __init__(self, registry: ModelRegistry, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.registry = registry
        self.capacity = capacity
        self._engines: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Lifecycle seam: when the registry tracks tenant versions, a
        # promote/rollback must never serve a stale engine — drop every
        # cached version of the tenant the moment its active version flips.
        subscribe = getattr(registry, "subscribe_versions", None)
        if callable(subscribe):
            subscribe(self._on_version_change)

    def _on_version_change(self, tenant: str, old: str, new: str) -> None:
        for version_id in self.registry.versions(tenant):
            self.evict(version_id, reason="version_change")

    def get(self, model_id: str):
        """Return the engine for ``model_id``, building it on first use.

        Touching an entry makes it most-recently-used; inserting beyond
        capacity evicts (and detaches) the least-recently-used engine.
        """
        if model_id in self._engines:
            self.hits += 1
            self._engines.move_to_end(model_id)
            return self._engines[model_id]
        self.misses += 1
        engine = self.registry.build_engine(model_id)
        self._engines[model_id] = engine
        self._evict_overflow()
        return engine

    def _evict_overflow(self) -> None:
        """Detach-and-drop from the LRU end until capacity is respected."""
        while len(self._engines) > self.capacity:
            model_id, evicted = self._engines.popitem(last=False)
            evicted.detach()
            self.evictions += 1
            emit("cache_evict", model_id=model_id, reason="capacity")

    def put(self, model_id: str, engine) -> None:
        """Insert (or replace) an entry directly, as most-recently-used.

        The normal path is :meth:`get` building engines lazily; ``put`` is
        the seam for callers that need to plant a specific engine under an
        id — fault injection poisoning a live entry, or tests staging a
        pre-built engine.  A replaced engine is detached; inserting beyond
        capacity evicts from the LRU end as usual.
        """
        old = self._engines.pop(model_id, None)
        if old is not None and old is not engine:
            old.detach()
        self._engines[model_id] = engine
        self._evict_overflow()

    def evict(self, model_id: str, reason: str = "explicit") -> bool:
        """Drop one entry (detaching its engine); returns whether it existed."""
        engine = self._engines.pop(model_id, None)
        if engine is None:
            return False
        engine.detach()
        self.evictions += 1
        emit("cache_evict", model_id=model_id, reason=reason)
        return True

    def clear(self) -> None:
        """Detach and drop every cached engine (counted as evictions)."""
        for model_id in list(self._engines):
            self.evict(model_id)

    def cached_ids(self) -> List[str]:
        """Model ids currently resident, least-recently-used first."""
        return list(self._engines)

    def __contains__(self, model_id: str) -> bool:
        return model_id in self._engines

    def __len__(self) -> int:
        return len(self._engines)

    def stats(self) -> Dict[str, object]:
        """Hit/miss/eviction counters plus the derived hit rate.

        The schema is shared verbatim by the single-process facade
        (``PersonalizationService.stats()["cache"]``) and the per-shard
        blocks of ``ClusterService.stats()``, so dashboards read both paths
        with one parser.
        """
        lookups = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "resident": len(self._engines),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }
