"""Model registry: pruned models stored under stable, addressable ids.

The registry is the serving system's source of truth.  Each entry couples a
model's weights (including pruning masks and batch-norm buffers) with the
:class:`~repro.serve.types.EngineSpec` needed to serve it and enough
architecture metadata to rebuild the module from the model zoo.

Ids are *stable*: registering the same user profile with the same
architecture and spec always produces the same id, so a request stream
recorded against one registry replays against a reloaded copy.

On-disk layout (one directory per model)::

    <root>/
      <model_id>/
        record.json   # arch, num classes, spec, profile, metadata
        state.npz     # parameter data, masks, buffers (Module.state_dict)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..data.loader import UserProfile
from ..nn.models import build_model
from ..nn.module import Module
from .types import EngineSpec

__all__ = ["ModelRecord", "ModelRegistry"]


@dataclass
class ModelRecord:
    """One registered model: weights + serving spec + provenance."""

    model_id: str
    arch: str
    num_classes: int
    input_size: int
    spec: EngineSpec
    state: Dict[str, np.ndarray]
    profile: Optional[UserProfile] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def build_module(self) -> Module:
        """Rebuild the module from the zoo and load the stored weights."""
        module = build_model(
            self.arch, num_classes=self.num_classes, input_size=self.input_size, seed=0
        )
        module.load_state_dict(self.state)
        return module

    def record_dict(self) -> Dict:
        """JSON-serializable half of the record (weights live in ``state.npz``)."""
        return {
            "model_id": self.model_id,
            "arch": self.arch,
            "num_classes": self.num_classes,
            "input_size": self.input_size,
            "spec": self.spec.to_dict(),
            "profile": None
            if self.profile is None
            else {
                "user_id": self.profile.user_id,
                "preferred_classes": list(self.profile.preferred_classes),
            },
            "metadata": self.metadata,
        }


def _stable_model_id(arch: str, spec: EngineSpec, profile: Optional[UserProfile]) -> str:
    """Deterministic id from (architecture, spec, user profile)."""
    payload = {"arch": arch, "spec": spec.to_dict()}
    if profile is not None:
        payload["profile"] = {
            "user_id": profile.user_id,
            "preferred_classes": list(profile.preferred_classes),
        }
    digest = hashlib.sha1(json.dumps(payload, sort_keys=True).encode()).hexdigest()[:8]
    user = f"u{profile.user_id}-" if profile is not None else ""
    return f"{arch}-{user}{digest}"


class ModelRegistry:
    """In-memory registry of pruned models with directory persistence."""

    def __init__(self) -> None:
        self._records: Dict[str, ModelRecord] = {}

    # -- registration ---------------------------------------------------------
    def register(
        self,
        module: Module,
        spec: Optional[EngineSpec] = None,
        model_id: Optional[str] = None,
        profile: Optional[UserProfile] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> str:
        """Store a (pruned) module under a stable id and return the id.

        The id is the *tenant address*, derived from (architecture, spec,
        profile) only — deliberately not from pruning hyper-parameters.
        Re-registering the same address overwrites the stored weights, which
        is how a tenant's model gets refreshed in place (re-personalization
        with a new sparsity target updates the model behind the same id;
        ``metadata`` records which settings produced the current weights).
        Pass an explicit ``model_id`` to keep several variants of one
        profile side by side.
        """
        arch = getattr(module, "arch_name", type(module).__name__.lower())
        spec = spec or EngineSpec()
        if model_id is None:
            model_id = _stable_model_id(arch, spec, profile)
        record = ModelRecord(
            model_id=model_id,
            arch=arch,
            num_classes=int(getattr(module, "num_classes", 0)),
            input_size=int(getattr(module, "input_size", 0)),
            spec=spec,
            state=module.state_dict(),
            profile=profile,
            metadata=dict(metadata or {}),
        )
        self._records[model_id] = record
        return model_id

    def unregister(self, model_id: str) -> None:
        self._records.pop(model_id, None)

    # -- lookup ---------------------------------------------------------------
    def get(self, model_id: str) -> ModelRecord:
        if model_id not in self._records:
            raise KeyError(f"Unknown model id {model_id!r}; registered: {self.ids()}")
        return self._records[model_id]

    def ids(self) -> List[str]:
        return sorted(self._records)

    def __contains__(self, model_id: str) -> bool:
        return model_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    # -- materialization ------------------------------------------------------
    def materialize(self, model_id: str) -> Module:
        """Rebuild the stored module (a fresh instance on every call)."""
        return self.get(model_id).build_module()

    def build_engine(self, model_id: str, attach: bool = True):
        """Materialize the module and wrap it in an engine per its spec."""
        record = self.get(model_id)
        return record.spec.build(record.build_module(), attach=attach)

    # -- persistence ----------------------------------------------------------
    def save(self, root) -> Path:
        """Write every record under ``root`` (one subdirectory per model)."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        for model_id, record in self._records.items():
            model_dir = root / model_id
            model_dir.mkdir(parents=True, exist_ok=True)
            (model_dir / "record.json").write_text(
                json.dumps(record.record_dict(), indent=2, sort_keys=True)
            )
            np.savez(model_dir / "state.npz", **record.state)
        return root

    @classmethod
    def load(cls, root) -> "ModelRegistry":
        """Load a registry from the directory layout written by :meth:`save`."""
        root = Path(root)
        if not root.is_dir():
            raise FileNotFoundError(f"Registry directory {root} does not exist")
        registry = cls()
        for record_path in sorted(root.glob("*/record.json")):
            payload = json.loads(record_path.read_text())
            with np.load(record_path.parent / "state.npz") as npz:
                state = {key: npz[key].copy() for key in npz.files}
            profile = None
            if payload.get("profile") is not None:
                profile = UserProfile(
                    user_id=int(payload["profile"]["user_id"]),
                    preferred_classes=[int(c) for c in payload["profile"]["preferred_classes"]],
                )
            record = ModelRecord(
                model_id=payload["model_id"],
                arch=payload["arch"],
                num_classes=int(payload["num_classes"]),
                input_size=int(payload["input_size"]),
                spec=EngineSpec.from_dict(payload["spec"]),
                state=state,
                profile=profile,
                metadata=payload.get("metadata", {}),
            )
            registry._records[record.model_id] = record
        return registry
