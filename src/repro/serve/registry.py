"""Model registry: pruned models stored under stable, addressable ids.

The registry is the serving system's source of truth.  Each entry couples a
model's weights (including pruning masks and batch-norm buffers) with the
:class:`~repro.serve.types.EngineSpec` needed to serve it and enough
architecture metadata to rebuild the module from the model zoo.

Ids are *stable*: registering the same user profile with the same
architecture and spec always produces the same id, so a request stream
recorded against one registry replays against a reloaded copy.

On-disk layout (one directory per model)::

    <root>/
      versions.json   # tenant -> {versions: [...], active: id}; only
                      # written when any tenant has lifecycle versions
      <model_id>/
        record.json   # arch, num classes, spec, profile, metadata
        state.npz     # parameter data, masks, buffers (Module.state_dict)

Versioning (the lifecycle plane, :mod:`repro.lifecycle`): a tenant's base
id is version 1; :meth:`ModelRegistry.register_version` stacks further
versions under ``<tenant>@v<N>`` ids, :meth:`ModelRegistry.set_active`
flips which one :meth:`ModelRegistry.resolve` routes the tenant's traffic
to, and version-change subscribers (engine caches) are notified so no
stale engine survives a promote or rollback.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..data.loader import UserProfile
from ..nn.models import build_model
from ..nn.module import Module
from .types import EngineSpec

__all__ = ["ModelRecord", "ModelRegistry"]


@dataclass
class ModelRecord:
    """One registered model: weights + serving spec + provenance."""

    model_id: str
    arch: str
    num_classes: int
    input_size: int
    spec: EngineSpec
    state: Dict[str, np.ndarray]
    profile: Optional[UserProfile] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def build_module(self) -> Module:
        """Rebuild the module from the zoo and load the stored weights."""
        module = build_model(
            self.arch, num_classes=self.num_classes, input_size=self.input_size, seed=0
        )
        module.load_state_dict(self.state)
        return module

    def record_dict(self) -> Dict:
        """JSON-serializable half of the record (weights live in ``state.npz``)."""
        return {
            "model_id": self.model_id,
            "arch": self.arch,
            "num_classes": self.num_classes,
            "input_size": self.input_size,
            "spec": self.spec.to_dict(),
            "profile": None
            if self.profile is None
            else {
                "user_id": self.profile.user_id,
                "preferred_classes": list(self.profile.preferred_classes),
            },
            "metadata": self.metadata,
        }


def _stable_model_id(arch: str, spec: EngineSpec, profile: Optional[UserProfile]) -> str:
    """Deterministic id from (architecture, spec, user profile)."""
    payload = {"arch": arch, "spec": spec.to_dict()}
    if profile is not None:
        payload["profile"] = {
            "user_id": profile.user_id,
            "preferred_classes": list(profile.preferred_classes),
        }
    digest = hashlib.sha1(json.dumps(payload, sort_keys=True).encode()).hexdigest()[:8]
    user = f"u{profile.user_id}-" if profile is not None else ""
    return f"{arch}-{user}{digest}"


class ModelRegistry:
    """In-memory registry of pruned models with directory persistence."""

    def __init__(self) -> None:
        self._records: Dict[str, ModelRecord] = {}
        #: tenant base id -> ordered version ids (the base id is version 1).
        self._versions: Dict[str, List[str]] = {}
        #: tenant base id -> the version id traffic resolves to.
        self._active: Dict[str, str] = {}
        #: callbacks fired as (tenant, old_active, new_active) on set_active.
        self._version_subscribers: List = []

    # -- registration ---------------------------------------------------------
    def register(
        self,
        module: Module,
        spec: Optional[EngineSpec] = None,
        model_id: Optional[str] = None,
        profile: Optional[UserProfile] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> str:
        """Store a (pruned) module under a stable id and return the id.

        The id is the *tenant address*, derived from (architecture, spec,
        profile) only — deliberately not from pruning hyper-parameters.
        Re-registering the same address overwrites the stored weights, which
        is how a tenant's model gets refreshed in place (re-personalization
        with a new sparsity target updates the model behind the same id;
        ``metadata`` records which settings produced the current weights).
        Pass an explicit ``model_id`` to keep several variants of one
        profile side by side.
        """
        arch = getattr(module, "arch_name", type(module).__name__.lower())
        spec = spec or EngineSpec()
        if model_id is None:
            model_id = _stable_model_id(arch, spec, profile)
        record = ModelRecord(
            model_id=model_id,
            arch=arch,
            num_classes=int(getattr(module, "num_classes", 0)),
            input_size=int(getattr(module, "input_size", 0)),
            spec=spec,
            state=module.state_dict(),
            profile=profile,
            metadata=dict(metadata or {}),
        )
        self._records[model_id] = record
        return model_id

    def unregister(self, model_id: str) -> None:
        self._records.pop(model_id, None)
        if model_id in self._versions:
            # Dropping a tenant's base id drops its whole version history.
            for version_id in self._versions.pop(model_id):
                if version_id != model_id:
                    self._records.pop(version_id, None)
            self._active.pop(model_id, None)
            return
        for tenant, version_ids in self._versions.items():
            if model_id in version_ids:
                version_ids.remove(model_id)
                if self._active.get(tenant) == model_id:
                    self._active[tenant] = version_ids[-1]
                break

    # -- versioning -----------------------------------------------------------
    def register_version(
        self,
        tenant: str,
        module: Module,
        spec: Optional[EngineSpec] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> str:
        """Stack a new version of ``tenant``'s model and return its id.

        The tenant's originally registered id is version 1; this call
        stores the module under the stable id ``<tenant>@v<N>`` (N = 2, 3,
        ...) *without* touching which version serves traffic — promotion is
        an explicit, separate :meth:`set_active` call, which is what lets a
        canary phase route a fraction of traffic at the new id first.
        """
        base = self.get(tenant)  # KeyError for unknown tenants
        version_ids = self._versions.setdefault(tenant, [tenant])
        self._active.setdefault(tenant, tenant)
        version_id = f"{tenant}@v{len(version_ids) + 1}"
        self.register(
            module,
            spec=spec or base.spec,
            model_id=version_id,
            profile=base.profile,
            metadata=metadata,
        )
        version_ids.append(version_id)
        return version_id

    def versions(self, tenant: str) -> List[str]:
        """All version ids for ``tenant``, oldest first (base id = v1)."""
        if tenant in self._versions:
            return list(self._versions[tenant])
        self.get(tenant)  # KeyError for unknown tenants
        return [tenant]

    def active_version(self, tenant: str) -> str:
        """The version id ``tenant``'s traffic currently resolves to."""
        if tenant in self._active:
            return self._active[tenant]
        self.get(tenant)  # KeyError for unknown tenants
        return tenant

    def resolve(self, model_id: str) -> str:
        """Map a tenant address to its active version (pass-through else)."""
        return self._active.get(model_id, model_id)

    def set_active(self, tenant: str, version_id: str) -> str:
        """Flip which version serves ``tenant`` and notify subscribers.

        Subscribers are notified even when the active version is unchanged
        (a rollback re-asserts the old version): caches must still drop any
        engines built for the abandoned canary version.
        """
        if version_id not in self.versions(tenant):
            raise KeyError(
                f"{version_id!r} is not a version of {tenant!r}; "
                f"versions: {self.versions(tenant)}"
            )
        old = self.active_version(tenant)
        self._versions.setdefault(tenant, [tenant])
        self._active[tenant] = version_id
        for callback in list(self._version_subscribers):
            callback(tenant, old, version_id)
        return old

    def subscribe_versions(self, callback) -> None:
        """Register ``callback(tenant, old_active, new_active)``."""
        self._version_subscribers.append(callback)

    # -- lookup ---------------------------------------------------------------
    def get(self, model_id: str) -> ModelRecord:
        if model_id not in self._records:
            raise KeyError(f"Unknown model id {model_id!r}; registered: {self.ids()}")
        return self._records[model_id]

    def ids(self) -> List[str]:
        return sorted(self._records)

    def __contains__(self, model_id: str) -> bool:
        return model_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    # -- materialization ------------------------------------------------------
    def materialize(self, model_id: str) -> Module:
        """Rebuild the stored module (a fresh instance on every call)."""
        return self.get(model_id).build_module()

    def build_engine(self, model_id: str, attach: bool = True):
        """Materialize the module and wrap it in an engine per its spec."""
        record = self.get(model_id)
        return record.spec.build(record.build_module(), attach=attach)

    # -- persistence ----------------------------------------------------------
    def save(self, root) -> Path:
        """Write every record under ``root`` (one subdirectory per model)."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        for model_id, record in self._records.items():
            model_dir = root / model_id
            model_dir.mkdir(parents=True, exist_ok=True)
            (model_dir / "record.json").write_text(
                json.dumps(record.record_dict(), indent=2, sort_keys=True)
            )
            np.savez(model_dir / "state.npz", **record.state)
        if self._versions:
            payload = {
                tenant: {
                    "versions": list(version_ids),
                    "active": self.active_version(tenant),
                }
                for tenant, version_ids in self._versions.items()
            }
            (root / "versions.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True)
            )
        return root

    @classmethod
    def load(cls, root) -> "ModelRegistry":
        """Load a registry from the directory layout written by :meth:`save`."""
        root = Path(root)
        if not root.is_dir():
            raise FileNotFoundError(f"Registry directory {root} does not exist")
        registry = cls()
        for record_path in sorted(root.glob("*/record.json")):
            payload = json.loads(record_path.read_text())
            with np.load(record_path.parent / "state.npz") as npz:
                state = {key: npz[key].copy() for key in npz.files}
            profile = None
            if payload.get("profile") is not None:
                profile = UserProfile(
                    user_id=int(payload["profile"]["user_id"]),
                    preferred_classes=[int(c) for c in payload["profile"]["preferred_classes"]],
                )
            record = ModelRecord(
                model_id=payload["model_id"],
                arch=payload["arch"],
                num_classes=int(payload["num_classes"]),
                input_size=int(payload["input_size"]),
                spec=EngineSpec.from_dict(payload["spec"]),
                state=state,
                profile=profile,
                metadata=payload.get("metadata", {}),
            )
            registry._records[record.model_id] = record
        versions_path = root / "versions.json"
        if versions_path.is_file():
            payload = json.loads(versions_path.read_text())
            for tenant in sorted(payload):
                entry = payload[tenant]
                version_ids = [v for v in entry["versions"] if v in registry]
                if not version_ids:
                    continue
                registry._versions[tenant] = version_ids
                active = entry.get("active", tenant)
                registry._active[tenant] = (
                    active if active in version_ids else version_ids[-1]
                )
        return registry
