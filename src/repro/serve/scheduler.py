"""Micro-batching scheduler: fuse per-tenant request groups into one dispatch.

Aggregated inference traffic interleaves requests for many tenants.  The
scheduler accepts :class:`~repro.serve.types.PredictRequest`s in arrival
order, groups the queue by model id at flush time, and answers each group
with a single fused :meth:`~repro.backend.engine.Engine.predict_many` call —
one engine lookup and one forward pass per tenant instead of one per
request.  Responses come back in submission order regardless of grouping.
"""

from __future__ import annotations

import re
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set

from ..errors import InvalidArgumentError
from .cache import EngineCache
from .types import PredictRequest, PredictResponse

__all__ = ["BatchScheduler"]

#: Shape of scheduler-generated request ids; a caller-provided id matching it
#: bumps the generator's counter past it so the same id is never handed to a
#: later request.
_GENERATED_ID = re.compile(r"req-(\d{6,})")


class BatchScheduler:
    """Queue requests across tenants and dispatch them in fused groups."""

    def __init__(self, cache: EngineCache, max_batch_size: Optional[int] = None) -> None:
        if max_batch_size is not None and max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self.cache = cache
        self.max_batch_size = max_batch_size
        self._queue: List[PredictRequest] = []
        self._next_id = 0
        self._pending_ids: Set[str] = set()
        self.requests_served = 0
        self.dispatches = 0
        self.largest_group = 0
        self.depth_max = 0  #: deepest the queue has ever been

    def submit(self, request: PredictRequest) -> str:
        """Enqueue one request, assigning a request id if it has none.

        Ids must be unique among pending requests — a duplicate would make
        two responses indistinguishable — so resubmitting a pending id raises
        :class:`~repro.errors.InvalidArgumentError` (a ``ValueError``, so
        pre-gateway callers keep catching it).  The id counter only advances
        when the scheduler
        generates an id, and a caller-provided id in the generated
        ``req-NNNNNN`` namespace bumps the counter past it so the generator
        never collides with it.
        """
        if request.request_id is None:
            request.request_id = f"req-{self._next_id:06d}"
            self._next_id += 1
        else:
            if request.request_id in self._pending_ids:
                raise InvalidArgumentError(
                    f"duplicate request id {request.request_id!r} is already pending"
                )
            squatted = _GENERATED_ID.fullmatch(request.request_id)
            if squatted:
                self._next_id = max(self._next_id, int(squatted.group(1)) + 1)
        self._pending_ids.add(request.request_id)
        self._queue.append(request)
        self.depth_max = max(self.depth_max, len(self._queue))
        return request.request_id

    @property
    def pending(self) -> int:
        return len(self._queue)

    def flush(self) -> List[PredictResponse]:
        """Dispatch the queue grouped by tenant; responses in submission order.

        Groups keep their first-arrival order, so engine-cache LRU pressure
        follows traffic order.  ``max_batch_size`` (in requests) splits very
        large groups so one hot tenant cannot starve the rest of a flush.
        """
        queue, self._queue = self._queue, []
        self._pending_ids.clear()
        if not queue:
            return []

        groups: "OrderedDict[str, List[int]]" = OrderedDict()
        for index, request in enumerate(queue):
            groups.setdefault(request.model_id, []).append(index)

        responses: List[Optional[PredictResponse]] = [None] * len(queue)
        for model_id, indices in groups.items():
            engine = self.cache.get(model_id)
            limit = self.max_batch_size or len(indices)
            for start in range(0, len(indices), limit):
                chunk = indices[start : start + limit]
                dispatch_start = time.perf_counter()
                outputs = engine.predict_many([queue[i].inputs for i in chunk])
                dispatch_elapsed = time.perf_counter() - dispatch_start
                self.dispatches += 1
                self.largest_group = max(self.largest_group, len(chunk))
                for i in chunk:
                    # Every fused request shares the chunk's engine time —
                    # the fusion is exactly what the span should show.
                    if queue[i].trace is not None:
                        queue[i].trace.add("engine", dispatch_elapsed)
                for index, logits in zip(chunk, outputs):
                    responses[index] = PredictResponse(
                        request_id=queue[index].request_id,
                        model_id=model_id,
                        logits=logits,
                        classes=logits.argmax(axis=1),
                        batched_with=len(chunk),
                    )
                    if queue[index].trace is not None:
                        responses[index].trace = queue[index].trace
        self.requests_served += len(queue)
        return [r for r in responses if r is not None]

    def dispatch(self, requests: Sequence[PredictRequest]) -> List[PredictResponse]:
        """Submit many requests and flush them in one call.

        All-or-nothing submission: if any request is rejected (e.g. a
        duplicate id), the ones this call already queued are rolled back
        before the error propagates, so previously pending work is not
        misaligned with later flushes.
        """
        submitted: List[PredictRequest] = []
        try:
            for request in requests:
                self.submit(request)
                submitted.append(request)
        except Exception:
            # Identity-based removal: PredictRequest compares by value, and
            # only the exact objects queued by this call may be rolled back.
            self._queue = [
                queued for queued in self._queue
                if not any(queued is request for request in submitted)
            ]
            for request in submitted:
                self._pending_ids.discard(request.request_id)
            raise
        return self.flush()

    def stats(self) -> Dict[str, object]:
        return {
            "pending": self.pending,
            "requests_served": self.requests_served,
            "dispatches": self.dispatches,
            "largest_group": self.largest_group,
            "max_batch_size": self.max_batch_size,
            "depth_max": self.depth_max,
        }
