"""repro.pipeline: content-addressed, resumable experiment DAGs.

A pipeline is a small DAG of :class:`Step`\\ s.  Each step's output is
stored on disk under a key derived from the full closure that produced it —
step name, code fingerprint, params, and the keys of its upstream outputs —
so re-running an unchanged pipeline is 100% verified cache hits, and editing
one step's params re-runs exactly that step and its downstream dependents.

>>> from repro.pipeline import Pipeline, PipelineStore, standard_chain
>>> pipe = Pipeline(standard_chain(tenants=2), PipelineStore("/tmp/store"))
>>> summary = pipe.run()
>>> summary.all_hits          # second run, nothing changed
False
>>> pipe.run().all_hits
True
"""

from .fingerprint import canonical_bytes, canonical_dumps, code_fingerprint, content_key
from .presets import PIPELINES, build_pipeline, pipeline_names
from .step import Pipeline, RunSummary, Step, StepContext, StepResult
from .steps import (
    encode_formats,
    prune_fleet,
    register_fleet,
    replay_requests,
    score_replay,
    standard_chain,
)
from .store import PipelineStore, StoreEntry

__all__ = [
    "Pipeline",
    "PipelineStore",
    "RunSummary",
    "Step",
    "StepContext",
    "StepResult",
    "StoreEntry",
    "PIPELINES",
    "build_pipeline",
    "pipeline_names",
    "standard_chain",
    "prune_fleet",
    "encode_formats",
    "register_fleet",
    "replay_requests",
    "score_replay",
    "canonical_dumps",
    "canonical_bytes",
    "content_key",
    "code_fingerprint",
]
