"""Built-in steps: the standard prune → encode → register → replay → score chain.

Each function here is a :class:`~repro.pipeline.step.Step` body over the
real subsystems — magnitude-masked fleets (the loadgen construction),
:func:`repro.sparsity.compare_formats` encodings, the
:class:`~repro.serve.registry.ModelRegistry` persistence layout, serving
through the :class:`~repro.gateway.api.ServingAPI`, and dense-oracle
scoring (precision@k over served classes + per-tenant accuracy curves).
Everything is seeded, so a step's JSON output is byte-stable across re-runs
— which is what makes the content-addressed cache *verifiable* rather than
merely convenient.

:func:`standard_chain` wires them into the canonical five-step DAG.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

import numpy as np

from .step import Step, StepContext

__all__ = [
    "prune_fleet",
    "encode_formats",
    "register_fleet",
    "replay_requests",
    "score_replay",
    "standard_chain",
]


def _round6(value: float) -> float:
    """Quantize reported floats (same grain the SLO report uses)."""
    return round(float(value), 6)


# ---------------------------------------------------------------------------
# prune: magnitude-masked tenant models
# ---------------------------------------------------------------------------

def prune_fleet(ctx: StepContext) -> Dict[str, object]:
    """Build ``tenants`` magnitude-sparsified models; weights land in artifacts.

    Tenant ``i`` is built from seed ``seed + i`` — the same construction the
    loadgen fleet uses — and its full state dict (weights, masks, buffers)
    is saved as ``tenant-<i>.npz`` for the downstream encode/register steps.
    """
    from ..nn.models import build_model
    from ..nn.models.base import prunable_layers

    p = ctx.params
    tenants = int(p["tenants"])
    seed = int(p["seed"])
    sparsity = float(p["sparsity"])
    per_tenant: List[Dict[str, object]] = []
    for i in range(tenants):
        model = build_model(
            p["model_name"],
            num_classes=int(p["num_classes"]),
            input_size=int(p["input_size"]),
            seed=seed + i,
        )
        kept = total = 0
        for layer in prunable_layers(model).values():
            w = layer.weight.data
            keep = (np.abs(w) >= np.quantile(np.abs(w), sparsity)).astype(np.float64)
            layer.weight.set_mask(keep)
            kept += int(keep.sum())
            total += keep.size
        state = model.state_dict()
        ctx.save_arrays(f"tenant-{i}", **state)
        per_tenant.append(
            {
                "tenant": f"tenant-{i}",
                "seed": seed + i,
                "kept_weights": kept,
                "total_weights": total,
                "density": _round6(kept / total),
            }
        )
    return {
        "model_name": p["model_name"],
        "num_classes": int(p["num_classes"]),
        "input_size": int(p["input_size"]),
        "seed": seed,
        "sparsity": sparsity,
        "tenants": per_tenant,
    }


# ---------------------------------------------------------------------------
# encode: per-tenant compressed-format bit costs
# ---------------------------------------------------------------------------

def encode_formats(ctx: StepContext) -> Dict[str, object]:
    """Encode each tenant's largest masked matrix in every sparse format.

    The per-format bit costs (Fig. 4's primitive) become the step output, so
    a sweep over N:M / block-size parameters is a sweep over this one step —
    upstream pruning stays cached.
    """
    from ..sparsity.formats import compare_formats

    p = ctx.params
    fleet = ctx.inputs["prune"]
    report: Dict[str, object] = {}
    for entry in fleet["tenants"]:
        state = ctx.load_arrays("prune", entry["tenant"])
        # The largest 2-D masked parameter is the layer worth encoding; key
        # order ties are broken lexicographically for determinism.
        weights = {
            name: array
            for name, array in sorted(state.items())
            if name.endswith("weight") and array.ndim == 2
        }
        name, matrix = max(weights.items(), key=lambda item: (item[1].size, item[0]))
        # Stored data is already masked (set_mask zeroes in place), but apply
        # the saved mask anyway so the encoding never trusts that invariant.
        mask_key = f"{name}::mask"
        if mask_key in state:
            matrix = matrix * state[mask_key]
        summaries = compare_formats(
            matrix, n=int(p["n"]), m=int(p["m"]), block_size=int(p["block_size"])
        )
        report[entry["tenant"]] = {
            "layer": name,
            "shape": list(matrix.shape),
            "formats": {
                fmt: {
                    "nnz": s.nnz,
                    "data_bits": s.data_bits,
                    "metadata_bits": s.metadata_bits,
                    "total_bits": s.total_bits,
                }
                for fmt, s in sorted(summaries.items())
            },
        }
    return {"n": int(p["n"]), "m": int(p["m"]), "block_size": int(p["block_size"]),
            "tenants": report}


# ---------------------------------------------------------------------------
# register: persist the fleet as a serving registry
# ---------------------------------------------------------------------------

def register_fleet(ctx: StepContext) -> Dict[str, object]:
    """Rebuild the pruned modules and persist them as a ModelRegistry.

    The registry directory layout (``record.json`` + ``state.npz`` per
    model) lands in this step's artifacts, so any later step — or a human —
    can ``ModelRegistry.load`` it straight out of the store.
    """
    from ..nn.models import build_model
    from ..serve.registry import ModelRegistry
    from ..serve.types import EngineSpec

    p = ctx.params
    fleet = ctx.inputs["prune"]
    spec = EngineSpec(backend=p["backend"], weight_format=p["weight_format"])
    registry = ModelRegistry()
    digests: Dict[str, str] = {}
    for entry in fleet["tenants"]:
        state = ctx.load_arrays("prune", entry["tenant"])
        model = build_model(
            fleet["model_name"],
            num_classes=int(fleet["num_classes"]),
            input_size=int(fleet["input_size"]),
            seed=0,
        )
        model.load_state_dict(state)
        model_id = registry.register(model, spec=spec, model_id=entry["tenant"])
        digest = hashlib.sha256()
        for name in sorted(state):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(state[name]).tobytes())
        digests[model_id] = digest.hexdigest()
    registry.save(ctx.artifact_dir / "registry")
    return {
        "model_ids": sorted(digests),
        "spec": spec.to_dict(),
        "state_sha256": digests,
    }


# ---------------------------------------------------------------------------
# replay: serve a deterministic request stream through the ServingAPI
# ---------------------------------------------------------------------------

def replay_requests(ctx: StepContext) -> Dict[str, object]:
    """Serve a seeded mixed-tenant request stream; logits land in artifacts.

    The registry is loaded from the ``register`` step's artifacts and served
    through the real Serving API v2 stack (service → scheduler → engines),
    so micro-batching and the compressed formats are on the measured path.
    Inputs and served logits are saved per tenant for the scoring step.
    """
    from ..gateway.api import LocalBackend
    from ..serve.registry import ModelRegistry
    from ..serve.service import PersonalizationService, ServiceConfig
    from ..serve.types import PredictRequest

    p = ctx.params
    fleet = ctx.inputs["prune"]
    model_ids = list(ctx.inputs["register"]["model_ids"])
    registry = ModelRegistry.load(ctx.input_dir("register") / "registry")
    rng = np.random.default_rng(int(p["seed"]))
    rounds = int(p["rounds"])
    batch = int(p["batch"])
    shape = (batch, 3, int(fleet["input_size"]), int(fleet["input_size"]))

    inputs = {mid: [] for mid in model_ids}
    requests = []
    for round_index in range(rounds):
        for mid in model_ids:
            x = rng.standard_normal(shape)
            inputs[mid].append(x)
            requests.append(
                PredictRequest(
                    model_id=mid, inputs=x, request_id=f"replay-{mid}-{round_index}"
                )
            )

    service = PersonalizationService(
        ServiceConfig(cache_capacity=max(2, len(model_ids))), registry=registry
    )
    with LocalBackend(service) as api:
        responses = api.predict_batch(requests)

    logits = {mid: [] for mid in model_ids}
    batched_with = []
    for request, response in zip(requests, responses):
        logits[request.model_id].append(np.asarray(response.logits))
        batched_with.append(int(response.batched_with))

    digest = hashlib.sha256()
    arrays = {}
    for mid in model_ids:
        arrays[f"inputs-{mid}"] = np.concatenate(inputs[mid], axis=0)
        arrays[f"logits-{mid}"] = np.concatenate(logits[mid], axis=0)
        digest.update(np.ascontiguousarray(arrays[f"logits-{mid}"]).tobytes())
    ctx.save_arrays("replay", **arrays)
    return {
        "requests": len(requests),
        "rounds": rounds,
        "batch": batch,
        "logits_sha256": digest.hexdigest(),
        "max_batched_with": max(batched_with),
    }


# ---------------------------------------------------------------------------
# score: precision@k + per-tenant accuracy curves against the dense oracle
# ---------------------------------------------------------------------------

def score_replay(ctx: StepContext) -> Dict[str, object]:
    """Score served logits against the dense (unmasked) oracle models.

    The oracle for tenant ``i`` is the same architecture/seed rebuilt
    *without* pruning masks, so the score measures exactly what sparsity
    cost: ``precision@k`` is the mean overlap between the served top-k class
    set and the oracle's, and each tenant's accuracy curve is the top-k
    accuracy of the served ranking against the oracle's argmax label as k
    grows (the drain-style per-tenant view).
    """
    from ..nn.models import build_model

    p = ctx.params
    fleet = ctx.inputs["prune"]
    ks = [int(k) for k in p["ks"]]
    num_classes = int(fleet["num_classes"])
    per_tenant: Dict[str, object] = {}
    precision_sums = {k: 0.0 for k in ks}
    samples = 0
    for entry in fleet["tenants"]:
        mid = entry["tenant"]
        arrays = ctx.load_arrays("replay", "replay")
        served = arrays[f"logits-{mid}"]
        inputs = arrays[f"inputs-{mid}"]
        oracle_model = build_model(
            fleet["model_name"],
            num_classes=num_classes,
            input_size=int(fleet["input_size"]),
            seed=int(entry["seed"]),
        )
        oracle = oracle_model(inputs)
        served_rank = np.argsort(-served, axis=1)
        oracle_rank = np.argsort(-oracle, axis=1)
        labels = oracle_rank[:, 0]
        n = served.shape[0]
        samples += n
        for k in ks:
            overlap = [
                len(set(served_rank[i, :k]) & set(oracle_rank[i, :k])) / k
                for i in range(n)
            ]
            precision_sums[k] += float(np.sum(overlap))
        curve = [
            _round6(float(np.mean([labels[i] in served_rank[i, :k] for i in range(n)])))
            for k in range(1, num_classes + 1)
        ]
        per_tenant[mid] = {"samples": n, "accuracy_curve": curve}
    return {
        "samples": samples,
        "precision_at_k": {
            str(k): _round6(precision_sums[k] / samples) for k in ks
        },
        "tenants": per_tenant,
    }


# ---------------------------------------------------------------------------
# the canonical chain
# ---------------------------------------------------------------------------

def standard_chain(
    tenants: int = 3,
    seed: int = 0,
    num_classes: int = 6,
    input_size: int = 12,
    sparsity: float = 0.7,
    model_name: str = "resnet_tiny",
    backend: str = "fast",
    weight_format: str = "csr",
    n: int = 2,
    m: int = 4,
    block_size: int = 16,
    rounds: int = 2,
    batch: int = 2,
    ks=(1, 3),
) -> List[Step]:
    """The five-step prune → encode → register → replay → score DAG."""
    return [
        Step(
            "prune",
            prune_fleet,
            params={
                "tenants": tenants,
                "seed": seed,
                "num_classes": num_classes,
                "input_size": input_size,
                "sparsity": sparsity,
                "model_name": model_name,
            },
        ),
        Step(
            "encode",
            encode_formats,
            params={"n": n, "m": m, "block_size": block_size},
            deps=("prune",),
        ),
        Step(
            "register",
            register_fleet,
            params={"backend": backend, "weight_format": weight_format},
            deps=("prune",),
        ),
        Step(
            "replay",
            replay_requests,
            params={"seed": seed, "rounds": rounds, "batch": batch},
            deps=("prune", "register"),
        ),
        Step(
            "score",
            score_replay,
            params={"ks": list(ks)},
            deps=("prune", "replay"),
        ),
    ]
