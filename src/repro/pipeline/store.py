"""The on-disk content-addressed step store.

Layout — one directory per (step, key)::

    <root>/
      <step_name>/
        <key>/
          output.json     # the step's JSON output, canonical bytes
          meta.json       # key closure + sha256 of output.json + artifact digests
          artifacts/      # optional step-written files (npz weights, registries)

``output.json`` is written with the canonical encoder, and its sha256 (plus
one per artifact file) is recorded in ``meta.json`` at commit time.  A cache
*hit* re-reads the stored bytes and verifies every digest — "unchanged
upstream steps are cache hits with byte-identical outputs, verified" is a
checked property, not an assumption.  A corrupted entry simply fails
verification and is treated as a miss (and removed), so a killed run never
poisons the store: commits happen by staging into a temp directory and
renaming it into place atomically.
"""

from __future__ import annotations

import hashlib
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from .fingerprint import canonical_bytes, canonical_dumps

__all__ = ["StoreEntry", "PipelineStore"]

_OUTPUT = "output.json"
_META = "meta.json"
_ARTIFACTS = "artifacts"


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class StoreEntry:
    """One resident step output."""

    step: str
    key: str
    output: Dict[str, object]
    output_sha256: str
    path: Path  #: the entry directory

    @property
    def artifact_dir(self) -> Path:
        return self.path / _ARTIFACTS


class PipelineStore:
    """Content-addressed, verified on-disk store of step outputs."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- addressing -------------------------------------------------------------
    def entry_dir(self, step: str, key: str) -> Path:
        return self.root / step / key

    def has(self, step: str, key: str) -> bool:
        return (self.entry_dir(step, key) / _META).exists()

    def keys(self, step: str) -> List[str]:
        """Every resident key of one step (committed entries only)."""
        step_dir = self.root / step
        if not step_dir.is_dir():
            return []
        return sorted(
            entry.name for entry in step_dir.iterdir() if (entry / _META).exists()
        )

    # -- reads ------------------------------------------------------------------
    def get(self, step: str, key: str, verify: bool = True) -> Optional[StoreEntry]:
        """Load one entry; ``None`` on a miss *or* a failed verification.

        With ``verify`` (the default for cache hits) the stored
        ``output.json`` bytes are re-hashed against the digest recorded at
        commit time, and so is every artifact file — an entry that does not
        verify byte-for-byte is removed and reported as a miss, forcing a
        clean re-run instead of serving silent corruption.
        """
        entry_dir = self.entry_dir(step, key)
        meta_path = entry_dir / _META
        output_path = entry_dir / _OUTPUT
        if not meta_path.exists() or not output_path.exists():
            return None
        import json

        try:
            meta = json.loads(meta_path.read_text())
            output_bytes = output_path.read_bytes()
            output = json.loads(output_bytes)
        except (OSError, ValueError):
            self.evict(step, key)
            return None
        if verify and not self._verify(entry_dir, meta, output_bytes):
            self.evict(step, key)
            return None
        return StoreEntry(
            step=step,
            key=key,
            output=output,
            output_sha256=meta["output_sha256"],
            path=entry_dir,
        )

    def _verify(self, entry_dir: Path, meta: Dict, output_bytes: bytes) -> bool:
        if hashlib.sha256(output_bytes).hexdigest() != meta.get("output_sha256"):
            return False
        recorded: Dict[str, str] = meta.get("artifacts", {})
        artifact_dir = entry_dir / _ARTIFACTS
        resident = {
            str(path.relative_to(artifact_dir)): path
            for path in sorted(artifact_dir.rglob("*"))
            if path.is_file()
        } if artifact_dir.is_dir() else {}
        if set(resident) != set(recorded):
            return False
        return all(_sha256_file(resident[rel]) == digest for rel, digest in recorded.items())

    # -- writes -----------------------------------------------------------------
    def staging_dir(self, step: str, key: str) -> Path:
        """A fresh private staging directory for one step execution."""
        staging = self.root / step / f".staging-{key[:16]}-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        (staging / _ARTIFACTS).mkdir(parents=True)
        return staging

    def commit(
        self,
        step: str,
        key: str,
        output: Dict[str, object],
        staging: Optional[Path] = None,
        closure: Optional[Dict[str, object]] = None,
    ) -> StoreEntry:
        """Finalize one step execution into the store, atomically.

        Writes the canonical ``output.json``, digests it and every staged
        artifact into ``meta.json``, then renames the staging directory into
        its addressed slot — a crashed run leaves either the old entry or
        none, never a half-written one.
        """
        staging = staging if staging is not None else self.staging_dir(step, key)
        artifact_dir = staging / _ARTIFACTS
        artifact_dir.mkdir(exist_ok=True)
        output_bytes = canonical_bytes(output)
        (staging / _OUTPUT).write_bytes(output_bytes)
        artifacts = {
            str(path.relative_to(artifact_dir)): _sha256_file(path)
            for path in sorted(artifact_dir.rglob("*"))
            if path.is_file()
        }
        meta = {
            "step": step,
            "key": key,
            "output_sha256": hashlib.sha256(output_bytes).hexdigest(),
            "artifacts": artifacts,
            "closure": closure or {},
        }
        (staging / _META).write_text(canonical_dumps(meta))
        entry_dir = self.entry_dir(step, key)
        entry_dir.parent.mkdir(parents=True, exist_ok=True)
        if entry_dir.exists():
            shutil.rmtree(entry_dir)
        os.replace(staging, entry_dir)
        return StoreEntry(
            step=step,
            key=key,
            output=dict(output),
            output_sha256=meta["output_sha256"],
            path=entry_dir,
        )

    def discard_staging(self, staging: Path) -> None:
        """Drop a staging directory after a failed step execution."""
        if staging.exists():
            shutil.rmtree(staging, ignore_errors=True)

    def evict(self, step: str, key: str) -> bool:
        """Remove one entry (corruption recovery / forced invalidation)."""
        entry_dir = self.entry_dir(step, key)
        if not entry_dir.exists():
            return False
        shutil.rmtree(entry_dir)
        return True
