"""Steps and the DAG runner: content-addressed, resumable execution.

A :class:`Step` is a named function over (params, upstream outputs).  The
:class:`Pipeline` topologically orders its steps, computes each one's
content key — ``hash(name, code fingerprint, params, upstream keys)`` — and
runs only the steps whose key has no verified entry in the
:class:`~repro.pipeline.store.PipelineStore`.  Re-running an unchanged
pipeline is therefore 100% cache hits; editing one step's params (or its
code) changes its key *and every downstream key*, so exactly that step and
its dependents re-run.

Step functions receive a :class:`StepContext`:

* ``ctx.params`` — the step's declared parameters;
* ``ctx.inputs[dep]`` — a dependency's JSON output dict;
* ``ctx.input_dir(dep)`` / ``ctx.load_arrays(dep, name)`` — a dependency's
  committed artifact files;
* ``ctx.artifact_dir`` / ``ctx.save_arrays(name, **arrays)`` — the step's
  own staging artifacts, committed with its output.

and return a JSON-compatible dict (the step's output).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .fingerprint import canonical_dumps, code_fingerprint, content_key
from .store import PipelineStore, StoreEntry

__all__ = ["Step", "StepContext", "StepResult", "RunSummary", "Pipeline"]


@dataclass
class Step:
    """One named, parameterized node of the experiment DAG."""

    name: str
    fn: Callable[["StepContext"], Dict[str, object]]
    params: Dict[str, object] = field(default_factory=dict)
    deps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(f"step name must be a non-empty path-safe token, got {self.name!r}")
        self.deps = tuple(self.deps)
        # Params must canonicalize now, not at key time — a step with
        # unhashable params should fail at construction, where the bug is.
        canonical_dumps(self.params)


class StepContext:
    """What a step function sees while it executes."""

    def __init__(
        self,
        step: Step,
        key: str,
        inputs: Mapping[str, Dict[str, object]],
        input_dirs: Mapping[str, Path],
        artifact_dir: Path,
    ) -> None:
        self.step = step
        self.key = key
        self.params = dict(step.params)
        self.inputs = dict(inputs)
        self._input_dirs = dict(input_dirs)
        self.artifact_dir = artifact_dir

    def input_dir(self, dep: str) -> Path:
        """The committed artifact directory of one dependency."""
        return self._input_dirs[dep]

    def save_arrays(self, name: str, **arrays: np.ndarray) -> Path:
        """Persist named arrays as ``<name>.npz`` among this step's artifacts."""
        path = self.artifact_dir / f"{name}.npz"
        np.savez(path, **arrays)
        return path

    def load_arrays(self, dep: str, name: str) -> Dict[str, np.ndarray]:
        """Load a dependency's ``save_arrays`` file back as a dict."""
        with np.load(self.input_dir(dep) / f"{name}.npz") as data:
            return {key: data[key] for key in data.files}


@dataclass
class StepResult:
    """How one step resolved during a run."""

    name: str
    key: str
    status: str  #: ``"hit"`` (verified cache entry) or ``"ran"``
    output: Dict[str, object]
    output_sha256: str
    elapsed_s: float
    artifact_dir: Path

    @property
    def hit(self) -> bool:
        return self.status == "hit"


class RunSummary:
    """The per-step resolution record of one pipeline run."""

    def __init__(self, results: List[StepResult]) -> None:
        self.results = results

    @property
    def hits(self) -> int:
        return sum(1 for r in self.results if r.hit)

    @property
    def ran(self) -> int:
        return sum(1 for r in self.results if not r.hit)

    @property
    def all_hits(self) -> bool:
        return bool(self.results) and self.hits == len(self.results)

    def outputs(self) -> Dict[str, Dict[str, object]]:
        return {r.name: r.output for r in self.results}

    def __getitem__(self, name: str) -> StepResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)

    def to_dict(self) -> Dict[str, object]:
        return {
            "steps": [
                {
                    "name": r.name,
                    "key": r.key,
                    "status": r.status,
                    "output_sha256": r.output_sha256,
                    "elapsed_s": r.elapsed_s,
                }
                for r in self.results
            ],
            "hits": self.hits,
            "ran": self.ran,
        }

    def render(self) -> str:
        """Human summary, one line per step."""
        lines = []
        for r in self.results:
            lines.append(
                f"  {r.status:>4}  {r.name:<28} key={r.key[:12]}  "
                f"out={r.output_sha256[:12]}  {r.elapsed_s * 1e3:8.1f}ms"
            )
        lines.append(f"  {self.hits} hit(s), {self.ran} ran")
        return "\n".join(lines)


class Pipeline:
    """A DAG of steps over one content-addressed store."""

    def __init__(self, steps: Sequence[Step], store: PipelineStore) -> None:
        self.store = store
        names = [step.name for step in steps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate step names in {names}")
        self.steps: Dict[str, Step] = {step.name: step for step in steps}
        for step in steps:
            missing = [dep for dep in step.deps if dep not in self.steps]
            if missing:
                raise ValueError(f"step {step.name!r} depends on unknown step(s) {missing}")
        self.order = self._topo_order(steps)
        self._keys: Dict[str, str] = {}

    def _topo_order(self, steps: Sequence[Step]) -> List[str]:
        """Kahn's algorithm, stable in the given step order."""
        remaining = {step.name: set(step.deps) for step in steps}
        order: List[str] = []
        while remaining:
            ready = [name for name, deps in remaining.items() if not deps]
            if not ready:
                raise ValueError(f"dependency cycle among steps {sorted(remaining)}")
            for name in ready:
                order.append(name)
                del remaining[name]
            for deps in remaining.values():
                deps.difference_update(ready)
        return order

    # -- content keys -----------------------------------------------------------
    def key_of(self, name: str) -> str:
        """The content key of one step (upstream keys folded in, memoized)."""
        if name not in self._keys:
            step = self.steps[name]
            self._keys[name] = content_key(
                {
                    "step": step.name,
                    "code": code_fingerprint(step.fn),
                    "params": step.params,
                    "inputs": {dep: self.key_of(dep) for dep in sorted(step.deps)},
                }
            )
        return self._keys[name]

    # -- inspection -------------------------------------------------------------
    def status(self) -> List[Dict[str, object]]:
        """Per-step cache residency against the store (no execution)."""
        return [
            {
                "name": name,
                "key": self.key_of(name),
                "cached": self.store.has(name, self.key_of(name)),
                "deps": list(self.steps[name].deps),
            }
            for name in self.order
        ]

    # -- execution --------------------------------------------------------------
    def run(
        self,
        force: Sequence[str] = (),
        progress: Optional[Callable[[StepResult], None]] = None,
    ) -> RunSummary:
        """Execute the DAG; cached steps are verified hits, the rest run.

        ``force`` names steps to re-run even when cached (their downstream
        steps keep their keys, so they only re-run if a forced step's output
        actually reaches them through a changed key — forcing is for
        re-measuring, not for invalidation; change params to invalidate).
        """
        force = set(force)
        unknown = force - set(self.steps)
        if unknown:
            raise KeyError(f"cannot force unknown step(s) {sorted(unknown)}")
        results: List[StepResult] = []
        resolved: Dict[str, StoreEntry] = {}
        for name in self.order:
            step = self.steps[name]
            key = self.key_of(name)
            started = time.perf_counter()
            entry = None if name in force else self.store.get(name, key, verify=True)
            if entry is not None:
                status = "hit"
            else:
                entry = self._execute(step, key, resolved)
                status = "ran"
            resolved[name] = entry
            result = StepResult(
                name=name,
                key=key,
                status=status,
                output=entry.output,
                output_sha256=entry.output_sha256,
                elapsed_s=time.perf_counter() - started,
                artifact_dir=entry.artifact_dir,
            )
            results.append(result)
            if progress is not None:
                progress(result)
        return RunSummary(results)

    def _execute(self, step: Step, key: str, resolved: Mapping[str, StoreEntry]) -> StoreEntry:
        staging = self.store.staging_dir(step.name, key)
        context = StepContext(
            step=step,
            key=key,
            inputs={dep: resolved[dep].output for dep in step.deps},
            input_dirs={dep: resolved[dep].artifact_dir for dep in step.deps},
            artifact_dir=staging / "artifacts",
        )
        try:
            output = step.fn(context)
        except BaseException:
            self.store.discard_staging(staging)
            raise
        if not isinstance(output, dict):
            self.store.discard_staging(staging)
            raise TypeError(
                f"step {step.name!r} must return a JSON-compatible dict, "
                f"got {type(output).__name__}"
            )
        closure = {
            "code": code_fingerprint(step.fn),
            "params": step.params,
            "inputs": {dep: self.key_of(dep) for dep in sorted(step.deps)},
        }
        return self.store.commit(step.name, key, output, staging=staging, closure=closure)
