"""Content addressing for pipeline steps: canonical JSON + code fingerprints.

A step's cache key is the hash of its *closure*: the step name, a
fingerprint of the code that implements it, its canonicalized parameters and
the keys of every upstream output it consumes.  Any change to any of those —
an edited parameter, a re-implemented function, a re-run upstream step —
changes the key, so stale cache entries are structurally unreachable rather
than "invalidated".
"""

from __future__ import annotations

import hashlib
import inspect
import json
from typing import Callable

__all__ = ["canonical_dumps", "canonical_bytes", "content_key", "code_fingerprint"]


def canonical_dumps(payload) -> str:
    """Canonical JSON: sorted keys, fixed separators, no NaN.

    The same encoding contract as the gateway wire envelopes
    (:func:`repro.gateway.wire.dumps`), restated here so the pipeline layer
    does not import the serving stack just to hash a dict.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def canonical_bytes(payload) -> bytes:
    return canonical_dumps(payload).encode("utf-8")


def content_key(payload) -> str:
    """sha256 hex digest of the canonical encoding of ``payload``."""
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


def code_fingerprint(fn: Callable) -> str:
    """A stable digest of a step function's implementation.

    Hashes the function's source text when it is available (the normal
    case), so editing a step's body re-keys it just like editing its
    params.  Callables without retrievable source (builtins, C extensions)
    fall back to their qualified name — coarser, but still stable.
    """
    target = inspect.unwrap(fn)
    try:
        source = inspect.getsource(target)
    except (OSError, TypeError):
        source = f"{getattr(target, '__module__', '?')}.{getattr(target, '__qualname__', repr(target))}"
    return hashlib.sha256(source.encode("utf-8")).hexdigest()
