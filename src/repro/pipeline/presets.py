"""Named pipelines: the experiment sweeps ported onto the content-addressed DAG.

Three presets ship with the CLI (``repro pipeline --list-steps``):

* ``standard`` — the tiny five-step prune → encode → register → replay →
  score chain from :mod:`repro.pipeline.steps` (the CI smoke pipeline);
* ``fig1`` — the Fig. 1 N:M-ratio sweep as a DAG: one pre-train/setup step
  per model, one step per (model, N:M) point, one collect step.  Editing a
  ratio re-runs exactly that point; the pre-trained setup stays cached —
  this replaces the in-process universal-model cache as the sweep's
  memoization layer;
* ``loadgen-sweep`` — one deterministic loadgen scenario per step plus a
  collect step pinning each scenario's outcome counts and predictions
  digest;
* ``autoscale-compare`` — the autoscaled-vs-static evaluation as a DAG:
  pin a scenario plan, replay it through the deterministic fluid simulator
  under the stock autoscaling policy and under a static fleet pinned at the
  same peak capacity, then score shard-seconds saved at (proxy) equal SLO;
* ``lifecycle-compare`` — the tenant-lifecycle evaluation as a DAG: pin a
  class-drift workload, replay it with the lifecycle disabled (static: v1
  serves forever) and enabled (drift-detect → re-prune → canary → promote),
  then score the served-head accuracy recovered at held SLO.

Every preset accepts ``smoke=True``, which shrinks it to seconds for CI.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .step import Pipeline, Step, StepContext
from .steps import standard_chain
from .store import PipelineStore

__all__ = ["PIPELINES", "build_pipeline", "pipeline_names"]


def _round6(value) -> float:
    return round(float(value), 6)


# ---------------------------------------------------------------------------
# fig1: the N:M ratio sweep as a DAG
# ---------------------------------------------------------------------------

def fig1_setup(ctx: StepContext) -> Dict[str, object]:
    """Pre-train the universal model and fine-tune the dense baseline.

    The restricted-head model (the state every sweep point starts from) is
    saved to artifacts; the dense fine-tuned accuracy — Fig. 1's upper bound
    — rides in the output.
    """
    from ..experiments.common import (
        ExperimentScale,
        clone_model,
        make_personalization_setup,
    )
    from ..pruning.baselines import dense_finetune

    p = ctx.params
    scale = ExperimentScale(
        name=f"pipeline-{p['model_name']}",
        dataset_preset=p["dataset_preset"],
        model_name=p["model_name"],
        pretrain_epochs=int(p["pretrain_epochs"]),
        finetune_epochs=int(p["finetune_epochs"]),
        prune_iterations=int(p["prune_iterations"]),
        batch_size=int(p["batch_size"]),
        samples_per_class=p["samples_per_class"],
    )
    setup = make_personalization_setup(
        scale, int(p["num_user_classes"]), seed=int(p["seed"])
    )
    dense_result = dense_finetune(
        clone_model(setup.model),
        setup.train_loader,
        setup.val_loader,
        epochs=int(p["finetune_epochs"]),
    )
    ctx.save_arrays("model", **setup.model.state_dict())
    return {
        "model_name": p["model_name"],
        "dataset_preset": p["dataset_preset"],
        "num_user_classes": int(p["num_user_classes"]),
        "head_classes": len(setup.profile.preferred_classes),
        "input_size": setup.dataset.image_size,
        "batch_size": int(p["batch_size"]),
        "samples_per_class": p["samples_per_class"],
        "seed": int(p["seed"]),
        "finetune_epochs": int(p["finetune_epochs"]),
        "universal_accuracy": _round6(setup.universal_accuracy),
        "dense_accuracy": _round6(dense_result.final_accuracy or 0.0),
    }


def fig1_nm_point(ctx: StepContext) -> Dict[str, object]:
    """Prune one (model, N:M) sweep point from the cached setup state."""
    from ..data import build_user_loaders, make_dataset, sample_user_profile
    from ..nn.models import build_model
    from ..pruning.baselines import nm_prune

    p = ctx.params
    dep = ctx.step.deps[0]
    setup = ctx.inputs[dep]
    dataset = make_dataset(setup["dataset_preset"], seed=setup["seed"])
    profile = sample_user_profile(
        dataset, setup["num_user_classes"], user_id=0, seed=setup["seed"]
    )
    train_loader, val_loader = build_user_loaders(
        dataset,
        profile,
        batch_size=setup["batch_size"],
        samples_per_class=setup["samples_per_class"],
        seed=setup["seed"],
    )
    model = build_model(
        setup["model_name"],
        num_classes=setup["head_classes"],
        input_size=setup["input_size"],
        seed=0,
    )
    model.load_state_dict(ctx.load_arrays(dep, "model"))
    result = nm_prune(
        model,
        int(p["n"]),
        int(p["m"]),
        train_loader=train_loader,
        val_loader=val_loader,
        finetune_epochs=setup["finetune_epochs"],
    )
    return {
        "model": setup["model_name"],
        "pattern": f"{int(p['n'])}:{int(p['m'])}",
        "sparsity": _round6(result.achieved_sparsity),
        "accuracy": _round6(result.final_accuracy or 0.0),
        "dense_accuracy": setup["dense_accuracy"],
        "accuracy_drop": _round6(
            (setup["dense_accuracy"] or 0.0) - (result.final_accuracy or 0.0)
        ),
    }


def fig1_collect(ctx: StepContext) -> Dict[str, object]:
    """Assemble the Fig. 1 table in the same row order ``run_fig1`` emits."""
    rows: List[Dict[str, object]] = []
    for model_name in ctx.params["models"]:
        setup = ctx.inputs[f"setup-{model_name}"]
        rows.append(
            {
                "model": model_name,
                "pattern": "dense",
                "sparsity": 0.0,
                "accuracy": setup["dense_accuracy"],
                "dense_accuracy": setup["dense_accuracy"],
                "accuracy_drop": 0.0,
            }
        )
        for n, m in ctx.params["nm_ratios"]:
            rows.append(dict(ctx.inputs[f"nm-{model_name}-{n}of{m}"]))
    return {"rows": rows}


def _fig1_steps(smoke: bool = False) -> List[Step]:
    from ..experiments.fig1_nm_ratios import DEFAULT_MODELS
    from ..experiments.common import TINY_SCALE

    models = list(DEFAULT_MODELS[:1] if smoke else DEFAULT_MODELS)
    nm_ratios = [[2, 4]] if smoke else [[3, 4], [2, 4], [1, 4]]
    scale = TINY_SCALE
    steps: List[Step] = []
    for model_name in models:
        steps.append(
            Step(
                f"setup-{model_name}",
                fig1_setup,
                params={
                    "model_name": model_name,
                    "dataset_preset": scale.dataset_preset,
                    "pretrain_epochs": scale.pretrain_epochs,
                    "finetune_epochs": scale.finetune_epochs,
                    "prune_iterations": scale.prune_iterations,
                    "batch_size": scale.batch_size,
                    "samples_per_class": scale.samples_per_class,
                    "num_user_classes": 4,
                    "seed": 0,
                },
            )
        )
        for n, m in nm_ratios:
            steps.append(
                Step(
                    f"nm-{model_name}-{n}of{m}",
                    fig1_nm_point,
                    params={"n": n, "m": m},
                    deps=(f"setup-{model_name}",),
                )
            )
    steps.append(
        Step(
            "collect",
            fig1_collect,
            params={"models": models, "nm_ratios": nm_ratios},
            deps=tuple(
                [f"setup-{model_name}" for model_name in models]
                + [
                    f"nm-{model_name}-{n}of{m}"
                    for model_name in models
                    for n, m in nm_ratios
                ]
            ),
        )
    )
    return steps


# ---------------------------------------------------------------------------
# loadgen-sweep: deterministic scenario payloads as cacheable points
# ---------------------------------------------------------------------------

def loadgen_point(ctx: StepContext) -> Dict[str, object]:
    """Run one fault-free loadgen scenario; output its deterministic payload."""
    from ..experiments.loadgen_cli import LoadgenConfig, run_loadgen

    p = ctx.params
    config = LoadgenConfig(
        scenario=p["scenario"],
        shards=int(p["shards"]),
        tenants=int(p["tenants"]),
        requests=int(p["requests"]),
        seed=int(p["seed"]),
        time_scale=0.0,
    )
    _, payload = run_loadgen(config)
    return payload


def loadgen_collect(ctx: StepContext) -> Dict[str, object]:
    """Pin every scenario's outcome counts + predictions digest in one table."""
    table: Dict[str, object] = {}
    for dep in sorted(ctx.step.deps):
        outcomes = ctx.inputs[dep].get("outcomes", {})
        table[dep] = {
            "requests": outcomes.get("requests"),
            "completed": outcomes.get("completed"),
            "rejected": outcomes.get("rejected"),
            "predictions_digest": outcomes.get("predictions_digest"),
        }
    return {"scenarios": table}


def _loadgen_sweep_steps(smoke: bool = False) -> List[Step]:
    scenarios = ["steady-uniform"] if smoke else [
        "steady-uniform",
        "poisson-zipf",
        "zipf-burst",
    ]
    requests = 8 if smoke else 24
    steps = [
        Step(
            f"scenario-{name}",
            loadgen_point,
            params={
                "scenario": name,
                "shards": 2,
                "tenants": 4,
                "requests": requests,
                "seed": 0,
            },
        )
        for name in scenarios
    ]
    steps.append(
        Step(
            "collect",
            loadgen_collect,
            deps=tuple(step.name for step in steps),
        )
    )
    return steps


# ---------------------------------------------------------------------------
# autoscale-compare: autoscaled vs static replay of one scenario
# ---------------------------------------------------------------------------

def autoscale_scenario(ctx: StepContext) -> Dict[str, object]:
    """Pin the scenario plan both arms replay (content-addresses the inputs)."""
    from ..loadgen import build_scenario

    p = ctx.params
    scenario = build_scenario(p["scenario"], requests=int(p["requests"]))
    return {
        "scenario": scenario.to_dict(),
        "seed": int(p["seed"]),
        "tick_s": float(p["tick_s"]),
        "service_rate": float(p["service_rate"]),
    }


def autoscale_replay(ctx: StepContext) -> Dict[str, object]:
    """Replay the pinned scenario through the fluid model under one policy.

    ``params["policy"]`` picks the arm: ``"autoscaled"`` runs the stock
    rules between the step's min/max clamps, ``"static"`` pins the fleet at
    ``max_shards`` — the capacity a fixed deployment must provision for the
    same peak.  Both arms are pure functions of the pinned plan, so the
    cache key IS the determinism contract: re-running cannot change bytes.
    """
    from ..autoscale import default_policy, simulate_autoscaler, static_policy

    p = ctx.params
    plan = ctx.inputs[ctx.step.deps[0]]
    if p["policy"] == "static":
        policy = static_policy(int(p["max_shards"]))
    else:
        policy = default_policy(
            min_shards=int(p["min_shards"]), max_shards=int(p["max_shards"])
        )
    return simulate_autoscaler(
        scenario=plan["scenario"]["name"],
        requests=plan["scenario"]["requests"],
        seed=plan["seed"],
        policy=policy,
        tick_s=plan["tick_s"],
        service_rate=plan["service_rate"],
    )


def autoscale_compare(ctx: StepContext) -> Dict[str, object]:
    """Score the two arms: shard-seconds saved at (proxy) equal SLO."""
    auto = ctx.inputs["autoscaled"]
    static = ctx.inputs["static"]
    saved = static["shard_seconds"] - auto["shard_seconds"]
    ratio = saved / static["shard_seconds"] if static["shard_seconds"] else 0.0
    return {
        "scenario": auto["scenario"],
        "autoscaled": {
            "shard_seconds": auto["shard_seconds"],
            "peak_shards": auto["peak_shards"],
            "peak_p99_ms": auto["peak_p99_ms"],
            "actions": auto["actions"],
            "drained": auto["drained"],
        },
        "static": {
            "shard_seconds": static["shard_seconds"],
            "peak_shards": static["peak_shards"],
            "peak_p99_ms": static["peak_p99_ms"],
            "drained": static["drained"],
        },
        "shard_seconds_saved": _round6(saved),
        "savings_ratio": _round6(ratio),
        "autoscaler_wins": bool(
            auto["drained"]
            and static["drained"]
            and auto["shard_seconds"] < static["shard_seconds"]
        ),
    }


def _autoscale_compare_steps(smoke: bool = False) -> List[Step]:
    requests = 160 if smoke else 512
    tick_s = 0.02 if smoke else 0.01
    min_shards, max_shards = 2, 6
    scenario_step = Step(
        "scenario",
        autoscale_scenario,
        params={
            "scenario": "diurnal-ramp",
            "requests": requests,
            "seed": 0,
            "tick_s": tick_s,
            "service_rate": 400.0,
        },
    )
    return [
        scenario_step,
        Step(
            "autoscaled",
            autoscale_replay,
            params={
                "policy": "autoscaled",
                "min_shards": min_shards,
                "max_shards": max_shards,
            },
            deps=("scenario",),
        ),
        Step(
            "static",
            autoscale_replay,
            params={"policy": "static", "max_shards": max_shards},
            deps=("scenario",),
        ),
        Step(
            "compare",
            autoscale_compare,
            deps=("autoscaled", "static"),
        ),
    ]


# ---------------------------------------------------------------------------
# lifecycle-compare: static vs lifecycle-managed replay of one drift workload
# ---------------------------------------------------------------------------

def lifecycle_scenario(ctx: StepContext) -> Dict[str, object]:
    """Pin the drift workload both arms replay (plan digest included)."""
    from ..loadgen import build_scenario

    p = ctx.params
    scenario = build_scenario(p["scenario"], requests=int(p["requests"]))
    return {
        "scenario": scenario.to_dict(),
        "name": p["scenario"],
        "requests": int(p["requests"]),
        "tenants": int(p["tenants"]),
        "seed": int(p["seed"]),
    }


def lifecycle_replay(ctx: StepContext) -> Dict[str, object]:
    """Replay the pinned drift workload with the lifecycle on or off.

    ``params["lifecycle"]`` picks the arm: ``False`` is the static fleet
    (v1 serves forever — what PRs 1–9 did), ``True`` runs the full
    drift-detect → re-prune → canary → promote loop.  Both arms are pure
    functions of the pinned plan, so the content-addressed cache key IS
    the determinism contract: a re-run cannot change a byte.
    """
    from ..lifecycle import run_lifecycle_replay

    p = ctx.params
    plan = ctx.inputs[ctx.step.deps[0]]
    return run_lifecycle_replay(
        scenario=plan["name"],
        tenants=plan["tenants"],
        requests=plan["requests"],
        seed=plan["seed"],
        lifecycle=bool(p["lifecycle"]),
    )


def lifecycle_compare_step(ctx: StepContext) -> Dict[str, object]:
    """Score the arms: accuracy recovered at held SLO, plus the audit trail."""
    static = ctx.inputs["static"]
    managed = ctx.inputs["managed"]
    static_final = static["accuracy"]["final_window"] or 0.0
    managed_final = managed["accuracy"]["final_window"] or 0.0
    slo_held = (
        managed["outcomes"]["failed"] == 0
        and managed["outcomes"]["completed"] == managed["requests"]
    )
    return {
        "scenario": managed["scenario"],
        "requests": managed["requests"],
        "static_final_accuracy": _round6(static_final),
        "managed_final_accuracy": _round6(managed_final),
        "accuracy_delta": _round6(managed_final - static_final),
        "promoted": managed["manager"]["promoted"],
        "rolled_back": managed["manager"]["rolled_back"],
        "states_seen": sorted({t["to_state"] for t in managed["audit"]}),
        "slo_held": slo_held,
        "lifecycle_wins": bool(managed_final > static_final and slo_held),
    }


def _lifecycle_compare_steps(smoke: bool = False) -> List[Step]:
    requests = 128 if smoke else 192
    scenario_step = Step(
        "scenario",
        lifecycle_scenario,
        params={
            "scenario": "drift-step",
            "requests": requests,
            "tenants": 4,
            "seed": 0,
        },
    )
    return [
        scenario_step,
        Step(
            "static",
            lifecycle_replay,
            params={"lifecycle": False},
            deps=("scenario",),
        ),
        Step(
            "managed",
            lifecycle_replay,
            params={"lifecycle": True},
            deps=("scenario",),
        ),
        Step(
            "compare",
            lifecycle_compare_step,
            deps=("static", "managed"),
        ),
    ]


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

def _standard_steps(smoke: bool = False) -> List[Step]:
    if smoke:
        return standard_chain(tenants=2, rounds=1, batch=1)
    return standard_chain()


#: Preset name -> step-list builder (``smoke`` shrinks it for CI).
PIPELINES: Dict[str, Callable[..., List[Step]]] = {
    "standard": _standard_steps,
    "fig1": _fig1_steps,
    "loadgen-sweep": _loadgen_sweep_steps,
    "autoscale-compare": _autoscale_compare_steps,
    "lifecycle-compare": _lifecycle_compare_steps,
}


def pipeline_names() -> List[str]:
    return sorted(PIPELINES)


def build_pipeline(name: str, store: PipelineStore, smoke: bool = False) -> Pipeline:
    """Materialize a named preset over ``store``."""
    if name not in PIPELINES:
        raise KeyError(f"unknown pipeline {name!r}; available: {pipeline_names()}")
    return Pipeline(PIPELINES[name](smoke=smoke), store)
