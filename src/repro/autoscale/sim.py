"""Deterministic fluid-queue simulator for autoscaler control loops.

The live cluster gives the autoscaler a real plant to actuate, but wall
clocks make its decision *timing* (not its decision *logic*) run-dependent.
This module supplies the other half of the story: a fluid-approximation
replay of a named loadgen scenario where arrivals come from the scenario's
own seeded :meth:`~repro.loadgen.arrivals.ArrivalProcess.times`, service is
a constant per-shard drain rate, and the controller ticks on a fixed virtual
cadence — so the full decision log is a pure function of
``(scenario, requests, seed, policy, tick_s, service_rate)`` and two
same-seed runs are byte-identical.  This is what the CI determinism diff and
the autoscaled-vs-static pipeline comparison run on.

The queue model is intentionally minimal (M/D/c-ish fluid): per tick,
``capacity = live_shards × service_rate × tick_s`` requests drain from the
backlog, and the p99 proxy is the queueing delay a new arrival would see
(``backlog / aggregate_rate``) plus a floor.  Scenario faults are honored
with the live semantics: ``kill_shard`` leaves the shard *in* the fleet
(telemetry still counts it — exactly what the real poller reports) but
removes its capacity; ``heal_shard`` removes the dead shard from the fleet
the way :meth:`~repro.loadgen.faults.FaultInjector.heal_shard` calls
``remove_shard``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..loadgen.scenario import build_scenario
from .autoscaler import Autoscaler
from .policy import ScalingPolicy, default_policy

__all__ = ["FleetModel", "simulate_autoscaler"]

#: Safety valve: a mis-tuned policy that can never drain the backlog raises
#: instead of spinning forever (100k ticks at the default 20ms is 2000
#: virtual seconds — far beyond any preset scenario).
_MAX_TICKS = 100_000


class FleetModel:
    """The minimal scaling target: integer shard ids, no threads, a journal.

    Implements exactly the surface :class:`~repro.autoscale.Autoscaler`
    validates — ``shards`` / ``shard_ids()`` / ``add_shard()`` /
    ``remove_shard(id)`` — with :class:`~repro.cluster.ClusterService`'s
    semantics (monotonic ids, KeyError on unknown, refuses the last shard)
    and a ``log`` of every mutation for decision-sequence assertions.
    """

    def __init__(self, shards: int = 1) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._ids: List[int] = list(range(shards))
        self._next = shards
        self.log: List[str] = []

    @property
    def shards(self) -> int:
        return len(self._ids)

    def shard_ids(self) -> List[int]:
        return sorted(self._ids)

    def add_shard(self) -> int:
        shard_id = self._next
        self._next += 1
        self._ids.append(shard_id)
        self.log.append(f"add:{shard_id}")
        return shard_id

    def remove_shard(self, shard_id: int) -> None:
        if shard_id not in self._ids:
            raise KeyError(f"unknown shard {shard_id}")
        if len(self._ids) == 1:
            raise ValueError("cannot remove the last shard")
        self._ids.remove(shard_id)
        self.log.append(f"remove:{shard_id}")


def simulate_autoscaler(
    scenario: str = "diurnal-ramp",
    requests: Optional[int] = None,
    seed: int = 0,
    policy: Optional[ScalingPolicy] = None,
    tick_s: float = 0.02,
    service_rate: float = 400.0,
    latency_floor_ms: float = 2.0,
) -> Dict[str, object]:
    """Replay a named scenario through the fluid model under ``policy``.

    Returns a JSON-stable payload (every float derived from seeded arrivals
    and fixed arithmetic — no wall clock anywhere) with the full decision
    log, the fleet history, and the ``shard_seconds`` cost integral the
    autoscaled-vs-static comparison is scored on.
    """
    if tick_s <= 0:
        raise ValueError(f"tick_s must be > 0, got {tick_s}")
    if service_rate <= 0:
        raise ValueError(f"service_rate must be > 0, got {service_rate}")
    scn = build_scenario(scenario, requests)
    if scn.arrivals.closed_loop:
        raise ValueError(
            f"scenario {scenario!r} is closed-loop; the fluid model needs "
            "scheduled arrival offsets"
        )
    pol = policy if policy is not None else default_policy()
    offsets = scn.arrivals.times(scn.requests, np.random.default_rng(seed))
    faults = [
        f for f in scn.faults if f.action in ("kill_shard", "heal_shard")
    ]

    fleet = FleetModel(pol.min_shards)
    scaler = Autoscaler(fleet, policy=pol, clock=lambda: 0.0)

    backlog = 0.0
    peak_backlog = 0.0
    peak_p99 = 0.0
    arrived = 0
    fault_idx = 0
    dead: List[int] = []
    tick = 0
    t = 0.0
    n = len(offsets)

    while arrived < n or backlog > 1e-9:
        if tick >= _MAX_TICKS:
            raise RuntimeError(
                f"fluid simulation did not drain within {_MAX_TICKS} ticks; "
                "policy/service_rate cannot keep up with the scenario"
            )
        # Arrivals landing in [t, t + tick_s).
        arr = 0
        while arrived < n and offsets[arrived] < t + tick_s:
            arrived += 1
            arr += 1
        # Scenario faults are indexed by cumulative arrivals (the live
        # driver fires them just before dispatching request at_request).
        while fault_idx < len(faults) and faults[fault_idx].at_request < arrived:
            fault = faults[fault_idx]
            fault_idx += 1
            live_ids = [i for i in fleet.shard_ids() if i not in dead]
            if fault.action == "kill_shard" and live_ids:
                dead.append(live_ids[fault.target % len(live_ids)])
            elif fault.action == "heal_shard" and dead:
                victim = dead.pop(0)
                if victim in fleet.shard_ids() and fleet.shards > 1:
                    fleet.remove_shard(victim)
        # The controller may have scaled a dead id away; drop stale entries.
        dead = [i for i in dead if i in fleet.shard_ids()]

        shards = fleet.shards
        live = shards - len(dead)
        capacity = live * service_rate * tick_s
        backlog = max(0.0, backlog + arr - capacity)
        peak_backlog = max(peak_backlog, backlog)
        if live > 0:
            p99 = latency_floor_ms + 1e3 * backlog / (live * service_rate)
        else:
            p99 = latency_floor_ms + 1e3 * backlog  # fleet fully dead
        peak_p99 = max(peak_p99, p99)

        tick += 1
        t = tick * tick_s
        scaler.tick(
            {
                "queue_pending": backlog,
                "queue_per_shard": backlog / max(shards, 1),
                "p99_ms": p99,
                "error_burn_rate": 0.0,
                "shards": float(shards),
            },
            now=round(t, 9),
        )

    duration = round(t, 9)
    return {
        "scenario": scenario,
        "requests": n,
        "seed": seed,
        "tick_s": tick_s,
        "service_rate": service_rate,
        "ticks": tick,
        "duration_s": duration,
        "policy": pol.to_dict(),
        "decisions": [d.to_dict() for d in scaler.decisions],
        "actions": scaler.action_counts(),
        "fleet_log": [[at, shards] for at, shards in scaler.fleet_log],
        "peak_shards": max(n_ for _, n_ in scaler.fleet_log),
        "final_shards": fleet.shards,
        "shard_seconds": round(scaler.shard_seconds(until=duration), 9),
        "peak_backlog": round(peak_backlog, 9),
        "peak_p99_ms": round(peak_p99, 9),
        "drained": backlog <= 1e-9,
    }
