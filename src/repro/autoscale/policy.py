"""Declarative scaling policies: rules, clamps, cooldown, typed decisions.

A :class:`ScalingRule` is the control-loop analogue of the SLO plane's
:class:`~repro.metrics.slo.AlertRule`: it names a *signal* (a key in the
dictionary the :class:`~repro.autoscale.Autoscaler` derives from each
unified-schema stats snapshot), a comparison, a threshold, and a
``for_samples`` hold count — the same consecutive-sample debounce the
:class:`~repro.metrics.slo.SLOMonitor` uses, in controller ticks rather than
wall time, so deterministic tests can drive it tick by tick.  Unlike an
alert rule it also carries a verdict: the ``action`` ("scale_out" or
"scale_in") and how many shards to move (``step``).

A :class:`ScalingPolicy` bundles the ordered rule set with the safety rails
every production control loop needs:

* ``min_shards`` / ``max_shards`` — hard clamps; a decision that would cross
  a bound is recorded as a ``clamp`` verdict and applies nothing;
* ``cooldown_ticks`` — after an applied action, further rule firings are
  recorded as ``suppress`` verdicts until the cooldown expires, which is the
  hysteresis that keeps the loop from flapping against its own telemetry lag;
* ``alert_actions`` — the SLOMonitor hand-off table, mapping an alert rule
  name (e.g. ``"queue-depth-sustained"``) to an action; the monitor's own
  fire-once-until-resolved state machine then guarantees exactly one action
  per alert episode.

Every verdict — applied, suppressed, or clamped — is recorded as an
immutable :class:`ScalingDecision` whose JSON face has sorted keys, so a
decision log replayed under an injected clock is byte-stable across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple

__all__ = [
    "ACTIONS",
    "VERDICTS",
    "ScalingRule",
    "ScalingPolicy",
    "ScalingDecision",
    "default_policy",
    "static_policy",
]

#: What a rule may ask for.
ACTIONS = ("scale_out", "scale_in")

#: What a decision may record: an applied action, or why nothing moved.
VERDICTS = ACTIONS + ("suppress", "clamp")

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


@dataclass(frozen=True)
class ScalingRule:
    """One declarative condition over one control signal, with its verdict."""

    name: str
    signal: str  #: key into the tick's signal dict (see Autoscaler.SIGNALS)
    op: str  #: one of > >= < <=
    threshold: float
    action: str  #: "scale_out" | "scale_in"
    for_samples: int = 1  #: consecutive ticks the condition must hold
    step: int = 1  #: shards to add/remove per applied action
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r}; known: {sorted(_OPS)}")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown action {self.action!r}; known: {ACTIONS}"
            )
        if self.for_samples < 1:
            raise ValueError(f"for_samples must be >= 1, got {self.for_samples}")
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")

    def condition(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "signal": self.signal,
            "op": self.op,
            "threshold": self.threshold,
            "action": self.action,
            "for_samples": self.for_samples,
            "step": self.step,
            "description": self.description,
        }


@dataclass(frozen=True)
class ScalingPolicy:
    """An ordered rule set plus the clamps/cooldown safety rails."""

    rules: Tuple[ScalingRule, ...] = ()
    min_shards: int = 1
    max_shards: int = 8
    cooldown_ticks: int = 4  #: ticks an applied action silences the loop for
    #: SLOMonitor hand-off: alert rule name -> action to apply when it fires.
    alert_actions: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError(f"min_shards must be >= 1, got {self.min_shards}")
        if self.max_shards < self.min_shards:
            raise ValueError(
                f"max_shards must be >= min_shards, got "
                f"{self.max_shards} < {self.min_shards}"
            )
        if self.cooldown_ticks < 0:
            raise ValueError(
                f"cooldown_ticks must be >= 0, got {self.cooldown_ticks}"
            )
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in policy: {names}")
        for alert, action in self.alert_actions.items():
            if action not in ACTIONS:
                raise ValueError(
                    f"alert_actions[{alert!r}] must be one of {ACTIONS}, "
                    f"got {action!r}"
                )
        # Freeze the mapping into a plain dict copy so policies are value-like.
        object.__setattr__(self, "alert_actions", dict(self.alert_actions))
        object.__setattr__(self, "rules", tuple(self.rules))

    def clamp(self, shards: int) -> int:
        return min(max(shards, self.min_shards), self.max_shards)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "min_shards": self.min_shards,
            "max_shards": self.max_shards,
            "cooldown_ticks": self.cooldown_ticks,
            "alert_actions": dict(sorted(self.alert_actions.items())),
        }


@dataclass(frozen=True)
class ScalingDecision:
    """One immutable controller verdict: what fired, and what (if anything) moved.

    ``action`` is an applied ``scale_out``/``scale_in``, or ``suppress``
    (cooldown held it back) / ``clamp`` (a min/max bound did).  ``tick`` and
    ``at`` come from the controller's own counter and injected clock, so a
    scripted run's log is reproducible byte for byte.
    """

    tick: int
    at: float
    action: str  #: one of VERDICTS
    rule: str
    signal: str
    value: float
    threshold: float
    shards_before: int
    shards_after: int
    reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "tick": self.tick,
            "at": self.at,
            "action": self.action,
            "rule": self.rule,
            "signal": self.signal,
            "value": self.value,
            "threshold": self.threshold,
            "shards_before": self.shards_before,
            "shards_after": self.shards_after,
            "reason": self.reason,
        }

    def to_json(self) -> str:
        """One JSONL line (sorted keys: identical decisions render identically)."""
        return json.dumps(self.to_dict(), sort_keys=True)


def default_policy(
    min_shards: int = 1,
    max_shards: int = 8,
    cooldown_ticks: int = 4,
    queue_high: float = 4.0,
    queue_low: float = 0.5,
    p99_ms: float = 250.0,
    burn_ratio: float = 0.1,
) -> ScalingPolicy:
    """The stock policy: queue-pressure/burn/p99 out, long-held idle in.

    The hysteresis lives in the gap between ``queue_high`` and ``queue_low``
    (per-shard backlog, so the thresholds mean the same thing at any fleet
    size) and in the asymmetric hold counts: scale-out reacts in 2 ticks,
    scale-in only after 4 quiet ones.  Rule order is priority order — a tick
    where both directions qualify scales out.
    """
    return ScalingPolicy(
        rules=(
            ScalingRule(
                name="queue-pressure",
                signal="queue_per_shard",
                op=">=",
                threshold=float(queue_high),
                action="scale_out",
                for_samples=2,
                description=f"backlog >= {queue_high:g}/shard for 2 ticks",
            ),
            ScalingRule(
                name="burn-rate",
                signal="error_burn_rate",
                op=">",
                threshold=float(burn_ratio),
                action="scale_out",
                for_samples=1,
                description=f"bad-outcome fraction > {burn_ratio:g} this tick",
            ),
            ScalingRule(
                name="p99-pressure",
                signal="p99_ms",
                op=">",
                threshold=float(p99_ms),
                action="scale_out",
                for_samples=2,
                description=f"p99 > {p99_ms:g}ms for 2 ticks",
            ),
            ScalingRule(
                name="queue-idle",
                signal="queue_per_shard",
                op="<=",
                threshold=float(queue_low),
                action="scale_in",
                for_samples=4,
                description=f"backlog <= {queue_low:g}/shard for 4 ticks",
            ),
        ),
        min_shards=min_shards,
        max_shards=max_shards,
        cooldown_ticks=cooldown_ticks,
        alert_actions={"queue-depth-sustained": "scale_out"},
    )


def static_policy(shards: int) -> ScalingPolicy:
    """A no-op policy pinning the fleet at ``shards`` (the control arm).

    No rules, equal clamps: the controller observes but never moves, which
    is exactly the static fleet the autoscaled-vs-static comparison runs
    against.
    """
    return ScalingPolicy(
        rules=(), min_shards=shards, max_shards=shards, cooldown_ticks=0
    )
