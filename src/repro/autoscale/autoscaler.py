"""The Autoscaler: a closed control loop over a scalable shard fleet.

The controller consumes the same unified-schema stats snapshots the
telemetry plane already samples — queue depth, p99 latency, and the
per-interval rejection/failure burn rate — and actuates the scaling seams
the cluster already exposes (:meth:`~repro.cluster.ClusterService.add_shard`
and the graceful-drain :meth:`~repro.cluster.ClusterService.remove_shard`).
Nothing in the loop is new machinery; the PR's work is closing it:

.. code-block:: text

            ┌────────────────────────────────────────────────┐
            │                 TelemetryPoller                 │
            │   stats() ──► record_sample ──► SLOMonitor      │
            └───────┬────────────────────────────┬───────────┘
                    │ subscribe(stats, t)        │ alerts
                    ▼                            ▼
            ┌──────────────┐  alert_actions  ┌────────────┐
            │  Autoscaler  │◄────────────────│  on_alert  │
            │ rules+streaks│                 └────────────┘
            │ cooldown+clamps
            └──────┬───────┘
                   │ add_shard() / remove_shard(id)
                   ▼
            ┌──────────────┐
            │ ClusterService│──► stats() ──► (back to the poller)
            └──────────────┘

Two driving modes, mirroring the poller's:

* **attached** — :meth:`attach` subscribes :meth:`observe` to a
  :class:`~repro.metrics.poller.TelemetryPoller`, so every poll becomes one
  controller tick against the live fleet;
* **scripted** — call :meth:`tick` yourself with a signal dict and an
  explicit ``now``; with an injected clock the full decision log is a pure
  function of the script, byte for byte (the deterministic test suite and
  the CI determinism diff both drive this mode).

The debounce is the :class:`~repro.metrics.slo.SLOMonitor` pattern
transplanted: per-rule consecutive-tick streaks, an explicit cooldown window
after every applied action, and min/max clamps — with the twist that
*suppressed and clamped firings are recorded too*, as first-class
:class:`~repro.autoscale.policy.ScalingDecision` rows, because "the loop
wanted to move and the rails held it" is exactly what an operator debugging
a flapping fleet needs to see.

The scale-in victim is always the highest live shard id: deterministic,
and biased toward the youngest shard, whose engine cache is the coldest.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..metrics.events import emit
from .policy import (
    ACTIONS,
    ScalingDecision,
    ScalingPolicy,
    default_policy,
)

__all__ = ["Autoscaler", "SIGNALS"]

#: The control-signal vocabulary :meth:`Autoscaler.signals` derives from a
#: unified-schema stats snapshot (rules may also name custom keys when the
#: loop is driven with hand-built signal dicts).
SIGNALS = (
    "queue_pending",     # fleet-wide queued requests (queue.pending)
    "queue_per_shard",   # queue_pending / live shards — size-invariant backlog
    "p99_ms",            # latency.p99_ms when present, else 0
    "error_burn_rate",   # (Δfailed + Δrejected) / Δoutcomes since last tick
    "shards",            # live shard count
)


class Autoscaler:
    """Declarative-policy control loop over anything with the scaling seams.

    ``target`` needs ``shards`` / ``shard_ids()`` / ``add_shard()`` /
    ``remove_shard(id)`` — :class:`~repro.cluster.ClusterService` natively, a
    :class:`~repro.gateway.ClusterBackend` via its ``.cluster``, or the
    thread-free :class:`~repro.autoscale.sim.FleetModel` in tests.
    """

    def __init__(
        self,
        target,
        policy: Optional[ScalingPolicy] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        # A ClusterBackend adapter exposes the scaling seams through its
        # wrapped cluster; unwrap so decisions actuate the real fleet.
        cluster = getattr(target, "cluster", None)
        if cluster is not None and hasattr(cluster, "add_shard"):
            target = cluster
        for attr in ("shards", "shard_ids", "add_shard", "remove_shard"):
            if not hasattr(target, attr):
                raise TypeError(
                    f"autoscaler target {type(target).__name__} has no "
                    f"{attr!r}; it must expose the cluster scaling surface"
                )
        self.target = target
        self.policy = policy if policy is not None else default_policy()
        self.clock = clock
        self.ticks = 0
        self.decisions: List[ScalingDecision] = []
        self._streaks: Dict[str, int] = {r.name: 0 for r in self.policy.rules}
        self._cooldown_until = 0  #: tick index the cooldown holds through
        self._fleet_log: List[Tuple[float, int]] = []  #: (t, shards) steps
        self._prev_outcomes: Optional[Tuple[float, float, float]] = None
        self._lock = threading.RLock()

    # -- signal extraction -----------------------------------------------------
    def signals(self, stats: Dict[str, object]) -> Dict[str, float]:
        """Derive the control signals from one unified-schema snapshot.

        The burn rate is computed the way
        :func:`~repro.metrics.poller.record_sample` derives it — from the
        *deltas* of the completed/failed/rejected totals since the previous
        tick, clamped non-negative — so a long-healthy history cannot dilute
        a fresh outage.  The first snapshot only sets the baseline.
        """
        latency = stats.get("latency") or {}
        queue = stats.get("queue") or {}
        errors = stats.get("errors") or {}
        shards = float(stats.get("shards", self.target.shards) or 1.0)
        pending = float(queue.get("pending", 0.0) or 0.0)
        totals = (
            float(latency.get("count", 0.0) or 0.0),
            float(errors.get("failed", 0.0) or 0.0),
            float(errors.get("rejected", 0.0) or 0.0),
        )
        with self._lock:
            prev = self._prev_outcomes if self._prev_outcomes else totals
            self._prev_outcomes = totals
        deltas = [max(0.0, cur - old) for cur, old in zip(totals, prev)]
        interval = sum(deltas)
        burn = (deltas[1] + deltas[2]) / interval if interval else 0.0
        return {
            "queue_pending": pending,
            "queue_per_shard": pending / max(shards, 1.0),
            "p99_ms": float(latency.get("p99_ms", 0.0) or 0.0),
            "error_burn_rate": burn,
            "shards": shards,
        }

    # -- the loop --------------------------------------------------------------
    def observe(
        self, stats: Dict[str, object], now: Optional[float] = None
    ) -> List[ScalingDecision]:
        """One tick from a raw stats snapshot (the poller-subscriber entry)."""
        with self._lock:
            return self.tick(self.signals(stats), now=now)

    def tick(
        self, signals: Dict[str, float], now: Optional[float] = None
    ) -> List[ScalingDecision]:
        """One controller pass over a signal dict; returns new decisions.

        Streak accounting mirrors the SLOMonitor: a rule's streak grows on
        every tick its condition holds and resets the moment it (or its
        signal) goes away.  The first rule in policy order whose streak
        reaches ``for_samples`` fires; its firing is then judged against the
        cooldown window and the min/max clamps, and the verdict — applied,
        ``suppress``, or ``clamp`` — is appended to the decision log.
        """
        with self._lock:
            t = self.clock() if now is None else float(now)
            if not self._fleet_log:
                self._fleet_log.append((t, int(self.target.shards)))
            self.ticks += 1
            fired = None
            for rule in self.policy.rules:
                value = signals.get(rule.signal)
                if value is None or not rule.condition(float(value)):
                    self._streaks[rule.name] = 0
                    continue
                self._streaks[rule.name] += 1
                if fired is None and self._streaks[rule.name] >= rule.for_samples:
                    fired = (rule, float(value))
            if fired is None:
                return []
            rule, value = fired
            decision = self._apply(
                rule.action,
                rule=rule.name,
                signal=rule.signal,
                value=value,
                threshold=rule.threshold,
                step=rule.step,
                at=t,
            )
            if decision.action in ACTIONS:
                # The fleet changed: every rule's evidence described the old
                # one.  Start all streaks over.
                for name in self._streaks:
                    self._streaks[name] = 0
            else:
                # Suppressed/clamped: re-arm just the rule that fired so the
                # log records one verdict per held window, not one per tick.
                self._streaks[rule.name] = 0
            return [decision]

    def on_alert(self, alert) -> Optional[ScalingDecision]:
        """SLOMonitor hand-off: map one *firing* alert to one scaling action.

        Wired via ``monitor.subscribe(autoscaler.on_alert)`` (see
        :meth:`wire`).  Only ``firing`` transitions of rules listed in the
        policy's ``alert_actions`` act; ``resolved`` transitions are the
        monitor re-arming its own debounce, so a sustained violation scales
        exactly once per alert episode.  The tick cooldown is *not* checked
        here — the monitor's fire-once-until-resolved state machine is the
        hysteresis on this path — but an applied action still starts the
        cooldown so the rule-driven path backs off.
        """
        action = self.policy.alert_actions.get(getattr(alert, "rule", None))
        if action is None or getattr(alert, "state", None) != "firing":
            return None
        with self._lock:
            decision = self._apply(
                action,
                rule=f"alert:{alert.rule}",
                signal=alert.metric,
                value=float(alert.value),
                threshold=float(alert.threshold),
                step=1,
                at=float(alert.at),
                honor_cooldown=False,
            )
            if decision.action in ACTIONS:
                for name in self._streaks:
                    self._streaks[name] = 0
            return decision

    def _apply(
        self,
        action: str,
        *,
        rule: str,
        signal: str,
        value: float,
        threshold: float,
        step: int,
        at: float,
        honor_cooldown: bool = True,
    ) -> ScalingDecision:
        before = int(self.target.shards)
        if not self._fleet_log:
            self._fleet_log.append((at, before))
        if honor_cooldown and self.ticks <= self._cooldown_until:
            decision = ScalingDecision(
                tick=self.ticks, at=at, action="suppress", rule=rule,
                signal=signal, value=value, threshold=threshold,
                shards_before=before, shards_after=before,
                reason=f"cooldown until tick {self._cooldown_until}",
            )
        else:
            delta = step if action == "scale_out" else -step
            after = self.policy.clamp(before + delta)
            if after == before:
                bound = "max_shards" if delta > 0 else "min_shards"
                decision = ScalingDecision(
                    tick=self.ticks, at=at, action="clamp", rule=rule,
                    signal=signal, value=value, threshold=threshold,
                    shards_before=before, shards_after=before,
                    reason=f"at {bound} ({getattr(self.policy, bound)})",
                )
            else:
                if after > before:
                    for _ in range(after - before):
                        self.target.add_shard()
                else:
                    # Deterministic victims: the highest (youngest) live ids.
                    victims = sorted(self.target.shard_ids(), reverse=True)
                    for shard_id in victims[: before - after]:
                        self.target.remove_shard(shard_id)
                self._cooldown_until = self.ticks + self.policy.cooldown_ticks
                self._fleet_log.append((at, after))
                decision = ScalingDecision(
                    tick=self.ticks, at=at, action=action, rule=rule,
                    signal=signal, value=value, threshold=threshold,
                    shards_before=before, shards_after=after,
                )
        self.decisions.append(decision)
        emit(
            "autoscale",
            tick=decision.tick,
            action=decision.action,
            rule=decision.rule,
            shards_before=decision.shards_before,
            shards_after=decision.shards_after,
            value=decision.value,
        )
        return decision

    # -- wiring ----------------------------------------------------------------
    def attach(self, poller) -> "Autoscaler":
        """Subscribe to a :class:`TelemetryPoller`: every sample, one tick."""
        poller.subscribe(self.observe)
        return self

    def wire(self, monitor) -> "Autoscaler":
        """Subscribe :meth:`on_alert` to an :class:`SLOMonitor`'s transitions."""
        monitor.subscribe(self.on_alert)
        return self

    # -- accounting ------------------------------------------------------------
    @property
    def fleet_log(self) -> List[Tuple[float, int]]:
        """(t, shards) steps: the initial size plus every applied change."""
        with self._lock:
            return list(self._fleet_log)

    def shard_seconds(self, until: Optional[float] = None) -> float:
        """∫ shards dt over the observed fleet history, up to ``until``.

        The cost integral the autoscaled-vs-static comparison is scored on:
        a static fleet pays ``shards × duration``; the controller's win is
        the area it shaves off while the SLO still holds.
        """
        log = self.fleet_log
        if not log:
            return 0.0
        end = self.clock() if until is None else float(until)
        total = 0.0
        for (t0, n), (t1, _) in zip(log, log[1:]):
            total += n * max(0.0, t1 - t0)
        total += log[-1][1] * max(0.0, end - log[-1][0])
        return total

    def action_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        with self._lock:
            for decision in self.decisions:
                counts[decision.action] = counts.get(decision.action, 0) + 1
        return dict(sorted(counts.items()))

    def decision_log_jsonl(self) -> str:
        """The decision log as JSONL — the CI-diffable determinism artifact."""
        with self._lock:
            decisions = list(self.decisions)
        return "".join(decision.to_json() + "\n" for decision in decisions)

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            decisions = list(self.decisions)
            fleet_log = list(self._fleet_log)
        return {
            "ticks": self.ticks,
            "shards": int(self.target.shards),
            "policy": self.policy.to_dict(),
            "decisions": [decision.to_dict() for decision in decisions],
            "actions": self.action_counts(),
            "fleet_log": [[t, n] for t, n in fleet_log],
            "peak_shards": max((n for _, n in fleet_log), default=0),
        }
