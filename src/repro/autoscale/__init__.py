"""Closed-loop autoscaling and multi-cluster federation.

The two halves of "the fleet manages itself":

* :class:`Autoscaler` — a deterministic control loop over the cluster's
  scaling seams, driven by the telemetry plane's samples and governed by a
  declarative :class:`ScalingPolicy` (rules with SLOMonitor-style debounce,
  cooldown hysteresis, min/max clamps), with every verdict — applied,
  suppressed, clamped — recorded as an immutable :class:`ScalingDecision`;
* :class:`FederatedBackend` — one :class:`~repro.gateway.ServingAPI` over N
  member clusters with sticky tenant affinity and per-request spillover on
  ``RESOURCE_EXHAUSTED``.

:func:`simulate_autoscaler` replays any open-loop loadgen scenario through a
fluid queue model so control-loop behaviour is a byte-stable pure function
of its inputs — the face CI diffs and the autoscaled-vs-static pipeline
compares on — while :meth:`Autoscaler.attach` closes the same loop against a
live :class:`~repro.cluster.ClusterService` under real traffic.
"""

from .autoscaler import SIGNALS, Autoscaler
from .federation import CapacityGate, FederatedBackend
from .policy import (
    ACTIONS,
    VERDICTS,
    ScalingDecision,
    ScalingPolicy,
    ScalingRule,
    default_policy,
    static_policy,
)
from .sim import FleetModel, simulate_autoscaler

__all__ = [
    "ACTIONS",
    "VERDICTS",
    "SIGNALS",
    "Autoscaler",
    "ScalingRule",
    "ScalingPolicy",
    "ScalingDecision",
    "default_policy",
    "static_policy",
    "FleetModel",
    "simulate_autoscaler",
    "FederatedBackend",
    "CapacityGate",
]
