"""Federated serving: one ServingAPI over N clusters, with tenant affinity.

A :class:`FederatedBackend` is the multi-cluster analogue of the cluster's
own shard router, one level up: member *clusters* (each any
:class:`~repro.gateway.ServingAPI` — a :class:`~repro.gateway.ClusterBackend`
in production, a fake in tests) sit on a consistent-hash ring keyed by member
name, and every tenant gets a sticky **home** cluster.  The affinity contract
is the whole point: a tenant's engine cache, its personalized weights, its
latency history all live where its traffic lands, so the federation never
*splits* a tenant across clusters — a tenant is served by exactly one member
until a topology change (its home leaving) forces a re-home.

The one exception is **spillover**: when the home answers
``RESOURCE_EXHAUSTED`` — a quota/capacity signal, not a failure — the request
(not the tenant) is served by the next member in ring order, counted and
emitted as a ``spillover`` event.  Any other error propagates untouched:
``UNAVAILABLE`` is retryable *at the same home* (the gateway's retry
middleware owns that), and failing over on it would silently migrate tenants
on transient blips, defeating the affinity contract.

Because it *is* a ``ServingAPI``, the federation drops into everything built
for one cluster unchanged: ``Gateway(FederatedBackend(...))`` serves it over
HTTP, the ``TelemetryPoller`` samples its merged stats (schema-validated by
:func:`~repro.cluster.telemetry.assert_stats_schema`), and an
:class:`~repro.autoscale.Autoscaler` can watch the merged signals.

:class:`CapacityGate` is the deterministic capacity harness: it wraps any
backend and converts programmed or in-flight-limit overload into
``RESOURCE_EXHAUSTED``, which is how the spillover tests (and demos) push a
member to its quota without racing real queues.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.router import ConsistentHashRouter
from ..cluster.telemetry import LatencyHistogram, assert_stats_schema
from ..errors import ApiError, NotFoundError, ResourceExhaustedError
from ..metrics.events import emit
from ..serve.types import PersonalizeRequest, PredictRequest, PredictResponse
from ..gateway.api import BatchResult, ServingAPI, as_serving_api

__all__ = ["FederatedBackend", "CapacityGate"]


class FederatedBackend(ServingAPI):
    """Tenant-affine routing over named member clusters, with spillover."""

    name = "federated"

    def __init__(self, members=None, replicas: int = 64) -> None:
        self._lock = threading.RLock()
        self._members: Dict[str, ServingAPI] = {}
        self._ring: ConsistentHashRouter = ConsistentHashRouter(replicas=replicas)
        self._homes: Dict[str, str] = {}  #: model_id -> member name (sticky)
        self.spillovers = 0
        self.spillovers_by_member: Dict[str, int] = {}
        self.rehomes = 0
        if members:
            pairs = members.items() if hasattr(members, "items") else members
            for member_name, backend in pairs:
                self.add_member(member_name, backend)

    # -- membership ------------------------------------------------------------
    def add_member(self, member_name: str, backend) -> ServingAPI:
        """Join ``backend`` (anything ``as_serving_api`` accepts) as a member.

        Joining moves ring territory but not tenants: existing homes are
        sticky, so only tenants first seen after the join can land on the
        new member.  That asymmetry is deliberate — rebalancing live tenants
        means cold caches, and the ring only exists to place *new* ones.
        """
        if not member_name or not isinstance(member_name, str):
            raise ValueError(f"member name must be a non-empty str, got {member_name!r}")
        backend = as_serving_api(backend)
        with self._lock:
            self._ring.add_shard(member_name)  # ValueError on duplicate
            self._members[member_name] = backend
        return backend

    def remove_member(self, member_name: str) -> ServingAPI:
        """Detach a member; its tenants re-home on next use.  Not closed here:
        the caller decides whether the cluster dies or just leaves the ring."""
        with self._lock:
            if member_name not in self._members:
                raise KeyError(f"unknown member {member_name!r}")
            if len(self._members) == 1:
                raise ValueError("cannot remove the last member of a federation")
            self._ring.remove_shard(member_name)
            backend = self._members.pop(member_name)
            orphaned = [m for m, home in self._homes.items() if home == member_name]
            for model_id in orphaned:
                del self._homes[model_id]
            self.rehomes += len(orphaned)
        return backend

    def member_names(self) -> List[str]:
        with self._lock:
            return sorted(self._members)

    def homes(self) -> Dict[str, str]:
        """The current tenant -> member assignment (a copy)."""
        with self._lock:
            return dict(self._homes)

    # -- routing ---------------------------------------------------------------
    def _home_for(self, key: str, record_as: Optional[str] = None) -> str:
        """The sticky home member for ``key``, assigning via the ring on first
        use.  ``record_as`` additionally pins a second key (a freshly minted
        model id) to the same member."""
        with self._lock:
            if not self._members:
                raise NotFoundError("federation has no members")
            home = self._homes.get(key)
            if home is None or home not in self._members:
                home = self._ring.route(key)
                self._homes[key] = home
            if record_as is not None:
                self._homes[record_as] = home
            return home

    def _spill_order(self, home: str) -> List[Tuple[str, ServingAPI]]:
        """The members after ``home`` in sorted-name cyclic order (no home)."""
        with self._lock:
            ordered = sorted(self._members)
            pivot = ordered.index(home) if home in ordered else 0
            names = ordered[pivot + 1 :] + ordered[:pivot]
            return [(member_name, self._members[member_name]) for member_name in names]

    def _member(self, member_name: str) -> ServingAPI:
        with self._lock:
            return self._members[member_name]

    # -- ServingAPI surface ----------------------------------------------------
    def personalize(self, request: PersonalizeRequest) -> str:
        """Build the tenant's model on the home its *user* hashes to, and pin
        the returned model id there — affinity starts at birth."""
        home = self._home_for(f"user:{request.user_id}")
        model_id = self._member(home).personalize(request)
        with self._lock:
            self._homes[model_id] = home
        return model_id

    def predict(
        self, request: PredictRequest, timeout: Optional[float] = None
    ) -> PredictResponse:
        home = self._home_for(request.model_id)
        try:
            return self._member(home).predict(request, timeout)
        except ResourceExhaustedError as exc:
            return self._spillover(request, home, timeout, exc)
        except NotFoundError as exc:
            return self._rehome(request, home, timeout, exc)

    def _spillover(
        self,
        request: PredictRequest,
        home: str,
        timeout: Optional[float],
        cause: ResourceExhaustedError,
    ) -> PredictResponse:
        """Serve one request off-home because the home's capacity is spent.

        The home assignment does NOT move — the next request tries home
        first again.  Spillover is per-request relief, not migration.
        """
        for member_name, backend in self._spill_order(home):
            try:
                response = backend.predict(request, timeout)
            except ResourceExhaustedError:
                continue  # this member is out of quota too; keep walking
            with self._lock:
                self.spillovers += 1
                self.spillovers_by_member[member_name] = (
                    self.spillovers_by_member.get(member_name, 0) + 1
                )
            emit(
                "spillover",
                model_id=request.model_id,
                request_id=request.request_id,
                home=home,
                via=member_name,
            )
            return response
        raise cause  # the whole federation is out of capacity

    def _rehome(
        self,
        request: PredictRequest,
        home: str,
        timeout: Optional[float],
        cause: NotFoundError,
    ) -> PredictResponse:
        """Separate-registry support: the ring guessed a member that has never
        heard of this tenant.  Scan for the member that has, move the home
        there permanently (this IS migration, unlike spillover), retry once."""
        for member_name, backend in self._spill_order(home):
            if request.model_id not in backend.model_ids():
                continue
            with self._lock:
                self._homes[request.model_id] = member_name
                self.rehomes += 1
            return backend.predict(request, timeout)
        raise cause

    def predict_batch(
        self, requests: Sequence[PredictRequest], timeout: Optional[float] = None
    ) -> List[BatchResult]:
        """Group by home so co-tenant fusion still happens inside each member,
        then stitch results back in request order.  Per-item
        ``RESOURCE_EXHAUSTED`` outcomes get one spillover attempt each."""
        groups: Dict[str, List[int]] = {}
        for i, request in enumerate(requests):
            groups.setdefault(self._home_for(request.model_id), []).append(i)
        results: List[Optional[BatchResult]] = [None] * len(requests)
        for home, indices in groups.items():
            batch = [requests[i] for i in indices]
            for i, result in zip(indices, self._member(home).predict_batch(batch, timeout)):
                if isinstance(result, ResourceExhaustedError):
                    try:
                        result = self._spillover(requests[i], home, timeout, result)
                    except ApiError as exc:
                        result = exc
                results[i] = result
        return list(results)  # type: ignore[arg-type]

    def stats(self) -> Dict[str, object]:
        """Merged unified-schema stats across the fleet, plus a per-member map.

        Latency merges losslessly when members expose their reservoir
        (:meth:`~repro.cluster.ClusterService.merged_latency` through the
        adapter chain); members that only publish summaries contribute a
        count-weighted approximation.  Either way the result passes
        :func:`assert_stats_schema` — one dashboard, any topology.
        """
        with self._lock:
            members = dict(self._members)
            tenants = len(self._homes)
        per_member: Dict[str, Dict[str, object]] = {}
        histograms: List[LatencyHistogram] = []
        summaries: List[Dict[str, float]] = []
        cache = {"hits": 0.0, "misses": 0.0, "evictions": 0.0}
        queue = {"pending": 0.0, "max_depth": 0.0}
        errors = {"failed": 0.0, "rejected": 0.0}
        shards = 0.0
        for member_name in sorted(members):
            stats = members[member_name].stats()
            per_member[member_name] = stats
            histogram = _member_histogram(members[member_name])
            if histogram is not None:
                histograms.append(histogram)
            else:
                summaries.append(dict(stats.get("latency") or {}))
            block = stats.get("cache") or {}
            for key in cache:
                cache[key] += float(block.get(key, 0) or 0)
            block = stats.get("queue") or {}
            queue["pending"] += float(block.get("pending", 0) or 0)
            queue["max_depth"] = max(
                queue["max_depth"], float(block.get("max_depth", 0) or 0)
            )
            block = stats.get("errors") or {}
            for key in errors:
                errors[key] += float(block.get(key, 0) or 0)
            shards += float(stats.get("shards", 1) or 1)
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / lookups if lookups else 0.0
        with self._lock:
            spillovers = self.spillovers
            by_member = dict(sorted(self.spillovers_by_member.items()))
            rehomes = self.rehomes
        merged = {
            "backend": self.name,
            "members": len(members),
            "shards": int(shards),
            "latency": _merge_latency(histograms, summaries),
            "cache": cache,
            "queue": queue,
            "errors": errors,
            "federation": {
                "tenants": tenants,
                "spillovers": spillovers,
                "spillovers_by_member": by_member,
                "rehomes": rehomes,
            },
            "per_member": per_member,
        }
        return assert_stats_schema(merged)

    def engine(self, model_id: str):
        home = self._home_for(model_id)
        try:
            return self._member(home).engine(model_id)
        except NotFoundError:
            for member_name, backend in self._spill_order(home):
                if model_id in backend.model_ids():
                    with self._lock:
                        self._homes[model_id] = member_name
                        self.rehomes += 1
                    return backend.engine(model_id)
            raise

    def model_ids(self) -> List[str]:
        with self._lock:
            members = list(self._members.values())
        ids = set()
        for backend in members:
            ids.update(backend.model_ids())
        return sorted(ids)

    def health(self) -> Dict[str, object]:
        report = super().health()
        with self._lock:
            members = dict(self._members)
        report["members"] = {
            member_name: members[member_name].health()
            for member_name in sorted(members)
        }
        return report

    def drain(self) -> None:
        for member_name in self.member_names():
            self._member(member_name).drain()

    def close(self) -> None:
        with self._lock:
            members = list(self._members.values())
            self._members.clear()
            self._homes.clear()
        for backend in members:
            backend.close()


def _member_histogram(backend) -> Optional[LatencyHistogram]:
    """Find a real latency reservoir behind a member adapter, if any.

    Walks the adapter chain (``ClusterBackend.cluster``,
    ``LocalBackend.service``) looking for ``merged_latency`` — the lossless
    path.  Returns ``None`` for summary-only members (the weighted fallback).
    """
    for obj in (backend, getattr(backend, "cluster", None), getattr(backend, "service", None)):
        if obj is not None and hasattr(obj, "merged_latency"):
            try:
                return obj.merged_latency()
            except Exception:
                return None
    return None


def _merge_latency(
    histograms: List[LatencyHistogram], summaries: List[Dict[str, float]]
) -> Dict[str, float]:
    """Merge member latencies: lossless where reservoirs exist, count-weighted
    for summary-only members, schema-complete either way."""
    if histograms and not summaries:
        return LatencyHistogram.merged(histograms).summary()
    merged: Dict[str, float] = {
        "count": 0.0, "mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0,
        "p99_ms": 0.0, "max_ms": 0.0,
    }
    parts = [h.summary() for h in histograms] + summaries
    total = sum(float(part.get("count", 0) or 0) for part in parts)
    for part in parts:
        count = float(part.get("count", 0) or 0)
        weight = count / total if total else 1.0 / max(len(parts), 1)
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
            merged[key] += weight * float(part.get(key, 0) or 0)
        merged["max_ms"] = max(merged["max_ms"], float(part.get("max_ms", 0) or 0))
    merged["count"] = total
    return merged


class CapacityGate(ServingAPI):
    """Deterministic ``RESOURCE_EXHAUSTED`` harness around any backend.

    Two triggers, both deterministic:

    * ``limit`` — more than ``limit`` predicts in flight at once answer 429
      immediately (a hard admission quota, not a queue);
    * :meth:`trip` — program the next ``n`` predicts to answer 429 regardless,
      which is how tests script "the home is out of capacity right now"
      without racing real queues.

    Everything else delegates untouched, so a gated member still reports its
    real stats, model ids, and health.
    """

    name = "capacity-gate"

    def __init__(self, backend, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.backend = as_serving_api(backend)
        self.limit = limit
        self.exhausted = 0  #: predicts answered RESOURCE_EXHAUSTED by the gate
        self._tripped = 0
        self._inflight = 0
        self._lock = threading.Lock()

    def trip(self, n: int = 1) -> None:
        """Force the next ``n`` predicts to answer ``RESOURCE_EXHAUSTED``."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        with self._lock:
            self._tripped += n

    def _admit(self, request: PredictRequest) -> None:
        with self._lock:
            if self._tripped > 0:
                self._tripped -= 1
                self.exhausted += 1
                raise ResourceExhaustedError(
                    f"capacity gate tripped for {request.model_id}",
                    details={"request_id": request.request_id},
                )
            if self.limit is not None and self._inflight >= self.limit:
                self.exhausted += 1
                raise ResourceExhaustedError(
                    f"capacity gate at limit {self.limit}",
                    details={"request_id": request.request_id},
                )
            self._inflight += 1

    def predict(
        self, request: PredictRequest, timeout: Optional[float] = None
    ) -> PredictResponse:
        self._admit(request)
        try:
            return self.backend.predict(request, timeout)
        finally:
            with self._lock:
                self._inflight -= 1

    def predict_batch(
        self, requests: Sequence[PredictRequest], timeout: Optional[float] = None
    ) -> List[BatchResult]:
        results: List[BatchResult] = []
        for request in requests:
            try:
                results.append(self.predict(request, timeout))
            except ApiError as exc:
                results.append(exc)
        return results

    def personalize(self, request: PersonalizeRequest) -> str:
        return self.backend.personalize(request)

    def stats(self) -> Dict[str, object]:
        return self.backend.stats()

    def engine(self, model_id: str):
        return self.backend.engine(model_id)

    def model_ids(self) -> List[str]:
        return self.backend.model_ids()

    def health(self) -> Dict[str, object]:
        report = self.backend.health()
        report["capacity_gate"] = {
            "limit": self.limit,
            "exhausted": self.exhausted,
        }
        return report

    def drain(self) -> None:
        self.backend.drain()

    def close(self) -> None:
        self.backend.close()
