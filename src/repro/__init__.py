"""Reproduction of "CRISP: Hybrid Structured Sparsity for Class-aware Model Pruning".

Package layout
--------------
* :mod:`repro.nn` — NumPy deep-learning substrate (layers, models, training).
* :mod:`repro.data` — synthetic class-conditional datasets and loaders.
* :mod:`repro.sparsity` — N:M / block / hybrid masks, storage formats, kernels.
* :mod:`repro.backend` — pluggable compute backends and the inference engine.
* :mod:`repro.pruning` — the CRISP pruning framework and baseline pruners.
* :mod:`repro.hw` — analytical sparse-accelerator latency/energy models.
* :mod:`repro.serve` — multi-tenant serving: model registry, engine cache,
  micro-batching scheduler and the :class:`~repro.serve.PersonalizationService`.
* :mod:`repro.errors` — the serving error taxonomy (stable ``ApiError`` codes).
* :mod:`repro.gateway` — Serving API v2: one versioned gateway (middleware,
  typed clients, loopback/HTTP transports) over every serving backend.
* :mod:`repro.autoscale` — closed-loop autoscaling over the cluster's scaling
  seams, plus federated multi-cluster serving with tenant affinity.
* :mod:`repro.experiments` — one runner per paper figure/table.
"""

__version__ = "1.4.0"

from . import nn
from . import data
from . import sparsity
from . import backend
from . import pruning
from . import hw
from . import errors
from . import serve
from . import gateway
from . import autoscale
from . import experiments

__all__ = [
    "nn",
    "data",
    "sparsity",
    "backend",
    "pruning",
    "hw",
    "errors",
    "serve",
    "gateway",
    "autoscale",
    "experiments",
    "__version__",
]
