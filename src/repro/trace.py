"""Request-level trace spans: attribute tail latency to a serving hop.

Every serving request crosses a fixed sequence of seams — gateway route →
middleware chain → cluster frontend → shard queue/batch → engine predict —
and an SLO regression is only actionable once it is pinned to one of them.
This module provides the span plumbing those seams record into:

* :class:`Trace` — the per-request span list.  A trace is *attached* to the
  in-flight message objects (``PredictRequest.trace`` /
  ``PredictResponse.trace``, plain attributes outside the wire dicts) and
  accumulates ``(hop, seconds)`` spans as the request crosses each layer.
* :class:`Span` — explicit context-manager timing into a trace and/or the
  global per-hop aggregator.
* :func:`trace_step` — the decorator face of the same: wrap a function and
  every call records one span under the given hop name (when tracing is on).
* the **global aggregator** — per-hop :class:`LatencyHistogram`\\ s that the
  serving facades surface as the optional ``trace`` block of the unified
  stats schema (per-hop p50/p95/p99).

Tracing is **off by default** and the off path is one module-level boolean
check — no allocation, no clock reads — so the serving path's latency is
unchanged when disabled (bench_gateway enforces < 5% p99 drift).  Spans
record *durations only*, never absolute timeline positions: hops cross
process boundaries (the process shard workers) where monotonic clocks are
not meaningfully comparable, but a duration measured on either side is.

Cross-process propagation rides the existing wire envelopes: the parent
marks the predict frame's payload with ``"trace": true``, the child times
its shard/engine hops into a fresh :class:`Trace`, and the reply payload
carries the spans back (``Trace.to_wire`` / ``Trace.extend_wire``) where the
parent merges them into the original request's trace *before* resolving the
caller's future.

Deterministic JSON faces stay byte-stable: trace data only ever lands in
measured surfaces (the SLO report's ``slo`` block, stats snapshots) and the
wire envelopes only gain their optional trace fields when a trace is
actually present.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "HOPS",
    "HOP_GATEWAY",
    "HOP_MIDDLEWARE",
    "HOP_FRONTEND",
    "HOP_SHARD",
    "HOP_ENGINE",
    "HOP_SERVICE",
    "Trace",
    "Span",
    "trace_step",
    "enable",
    "disable",
    "enabled",
    "tracing",
    "new_trace",
    "hops_of",
    "aggregate",
    "hop_summaries",
    "reset_aggregator",
    "trace_block",
]

#: Canonical hop names, outermost first.  ``gateway`` is the end-to-end
#: envelope time (the other hops nest inside it); ``service`` is the
#: single-process dispatch hop a :class:`LocalBackend` records where a
#: cluster records ``frontend`` + ``shard``.
HOP_GATEWAY = "gateway"
HOP_MIDDLEWARE = "middleware"
HOP_FRONTEND = "frontend"
HOP_SHARD = "shard"
HOP_ENGINE = "engine"
HOP_SERVICE = "service"
HOPS = (HOP_GATEWAY, HOP_MIDDLEWARE, HOP_FRONTEND, HOP_SHARD, HOP_ENGINE, HOP_SERVICE)

#: The one switch the hot paths check.  Module-level so the disabled cost is
#: a single attribute load per seam.
_ENABLED = False


def enable() -> None:
    """Turn request tracing on process-wide."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn request tracing off (the default)."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether tracing is currently on."""
    return _ENABLED


class tracing:
    """Context manager scoping :func:`enable` to a block (tests, CLI runs)."""

    def __init__(self, on: bool = True) -> None:
        self.on = on
        self._previous = False

    def __enter__(self) -> "tracing":
        global _ENABLED
        self._previous = _ENABLED
        _ENABLED = self.on
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ENABLED
        _ENABLED = self._previous


class Trace:
    """The span list of one in-flight request.

    Appends are what the serving seams do; everything else is reporting.
    A trace is deliberately tiny (one list) because one is allocated per
    request while tracing is on.
    """

    __slots__ = ("spans",)

    def __init__(self, spans: Optional[List[Tuple[str, float]]] = None) -> None:
        self.spans: List[Tuple[str, float]] = list(spans) if spans else []

    def add(self, hop: str, seconds: float) -> None:
        """Record one span and fold it into the global per-hop aggregator."""
        self.spans.append((hop, float(seconds)))
        aggregate(hop, seconds)

    def hop_ms(self) -> Dict[str, float]:
        """Total milliseconds per hop (spans of the same hop sum)."""
        totals: Dict[str, float] = {}
        for hop, seconds in self.spans:
            totals[hop] = totals.get(hop, 0.0) + seconds * 1e3
        return totals

    def hops(self) -> Tuple[str, ...]:
        """The distinct hop names recorded, in first-seen order."""
        seen: Dict[str, None] = {}
        for hop, _ in self.spans:
            seen.setdefault(hop)
        return tuple(seen)

    # -- wire format ------------------------------------------------------------
    def to_wire(self) -> List[List[object]]:
        """JSON-compatible span list (``[[hop, seconds], ...]``)."""
        return [[hop, seconds] for hop, seconds in self.spans]

    def extend_wire(self, spans: Sequence[Sequence[object]]) -> "Trace":
        """Merge spans that crossed a process/wire boundary into this trace."""
        for hop, seconds in spans:
            self.add(str(hop), float(seconds))
        return self

    @classmethod
    def from_wire(cls, spans: Sequence[Sequence[object]]) -> "Trace":
        return cls().extend_wire(spans)

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{hop}={seconds * 1e3:.2f}ms" for hop, seconds in self.spans)
        return f"Trace({parts})"


class Span:
    """Explicit span timing: ``with Span(trace, 'engine'): ...``.

    ``trace=None`` records into the global aggregator only, which is what
    hop instrumentation without a request context (e.g. warmup probes)
    uses.  A span is always recorded once entered — the enabled() gate
    belongs at the call site, where skipping it is free.
    """

    __slots__ = ("trace", "hop", "_start")

    def __init__(self, trace: Optional[Trace], hop: str) -> None:
        self.trace = trace
        self.hop = hop
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        if self.trace is not None:
            self.trace.add(self.hop, elapsed)
        else:
            aggregate(self.hop, elapsed)


def trace_step(hop: str) -> Callable:
    """Decorator: record each call of the wrapped function as one ``hop`` span.

    When tracing is off the wrapper is a single boolean check around the
    call.  When on, the span lands in the first argument's attached trace if
    it carries one (``request.trace``), otherwise in the global aggregator —
    so the same decorator instruments both request-scoped and free-standing
    steps::

        @trace_step("engine")
        def predict_many(self, batches): ...
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _ENABLED:
                return fn(*args, **kwargs)
            trace = None
            for arg in args[:2]:  # self and/or the request-shaped argument
                candidate = getattr(arg, "trace", None)
                if isinstance(candidate, Trace):
                    trace = candidate
                    break
            with Span(trace, hop):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def new_trace(message) -> Optional[Trace]:
    """Attach a fresh :class:`Trace` to ``message`` if tracing is enabled.

    The attachment point is a plain ``trace`` attribute — outside the
    message's wire dict, so deterministic JSON faces are unaffected.
    Returns the trace (or ``None`` when tracing is off).
    """
    if not _ENABLED:
        return None
    trace = Trace()
    message.trace = trace
    return trace


def hops_of(message) -> Optional[Dict[str, float]]:
    """The per-hop milliseconds of a message's attached trace, if any."""
    trace = getattr(message, "trace", None)
    if isinstance(trace, Trace) and trace.spans:
        return trace.hop_ms()
    return None


# ---------------------------------------------------------------------------
# The global per-hop aggregator (feeds the stats schema's ``trace`` block)
# ---------------------------------------------------------------------------

_AGG_LOCK = threading.Lock()
_AGGREGATOR: Dict[str, "object"] = {}


def aggregate(hop: str, seconds: float) -> None:
    """Fold one span into the process-wide per-hop histograms."""
    # Deferred import: repro.cluster.telemetry must stay importable without
    # this module (and vice versa).
    from .cluster.telemetry import LatencyHistogram

    with _AGG_LOCK:
        histogram = _AGGREGATOR.get(hop)
        if histogram is None:
            histogram = _AGGREGATOR[hop] = LatencyHistogram()
        histogram.record(seconds)


def hop_summaries() -> Dict[str, Dict[str, float]]:
    """Per-hop latency summaries (p50/p95/p99 + mean/max), hop-name sorted."""
    with _AGG_LOCK:
        return {hop: _AGGREGATOR[hop].summary() for hop in sorted(_AGGREGATOR)}


def reset_aggregator() -> None:
    """Drop every accumulated hop histogram (tests / run isolation)."""
    with _AGG_LOCK:
        _AGGREGATOR.clear()


def trace_block() -> Optional[Dict[str, object]]:
    """The optional ``trace`` block of the unified stats schema.

    ``None`` while tracing is off and nothing has been recorded — facades
    then omit the block entirely, keeping pre-trace stats payloads
    unchanged.  Once tracing is (or has been) active the block carries the
    per-hop latency summaries accumulated in this process.
    """
    summaries = hop_summaries()
    if not _ENABLED and not summaries:
        return None
    return {"enabled": _ENABLED, "hops": summaries}
