"""Chaos layer: scripted faults against a live :class:`ClusterService`.

The :class:`FaultInjector` is the executable side of a scenario's
:class:`~repro.loadgen.scenario.FaultEvent` schedule.  It drives the
cluster's own chaos seams — :meth:`ClusterService.kill_shard`, the shard
workers' ``chaos_delay_s`` knob, and :meth:`EngineCache.put` — so every
fault exercises exactly the paths production failures would: admission
control under backlog, clean future failure on crash, drain on heal,
rebalance on reroute, cache rebuild after poisoning.

Shard targets are indices into the *live* sorted shard-id list (modulo its
length), tenant targets indices into the workload's model-id list, so the
same scenario runs unchanged against any fleet size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cluster.frontend import ClusterService
from ..metrics.events import emit
from .scenario import FaultEvent

__all__ = ["FaultInjector", "PoisonedEngineError", "PoisonedEngine"]


class PoisonedEngineError(RuntimeError):
    """A poisoned engine-cache entry was asked to predict."""


class PoisonedEngine:
    """A stand-in engine that fails every prediction (cache-poison fault).

    Mimics the :class:`~repro.backend.engine.Engine` surface the serving
    path touches (``predict`` / ``predict_many`` / ``detach``) so it can sit
    in an :class:`~repro.serve.cache.EngineCache` slot undetected until the
    scheduler dispatches to it.
    """

    def __init__(self, model_id: str) -> None:
        self.model_id = model_id

    def _raise(self, *args, **kwargs):
        raise PoisonedEngineError(
            f"engine-cache entry for {self.model_id!r} is poisoned"
        )

    predict = _raise
    predict_many = _raise

    def detach(self) -> None:  # eviction must succeed so the cache can heal
        pass


class FaultInjector:
    """Executes fault events against one cluster and logs what it did."""

    def __init__(self, cluster: ClusterService) -> None:
        self.cluster = cluster
        self.log: List[Dict[str, object]] = []
        self._killed: List[int] = []  # kill order, for heal_shard
        self._slowed: Dict[int, float] = {}

    # -- target resolution -------------------------------------------------------
    def _shard_id(self, index: int) -> int:
        shard_ids = self.cluster.shard_ids()
        if not shard_ids:
            raise RuntimeError("cluster has no shards to target")
        return shard_ids[index % len(shard_ids)]

    def _model_id(self, index: int, model_ids: Sequence[str]) -> str:
        if not model_ids:
            raise RuntimeError("no tenants to target")
        return model_ids[index % len(model_ids)]

    # -- primitive faults --------------------------------------------------------
    def kill_shard(self, index: int = 0) -> int:
        """Crash the ``index``-th live shard; returns the killed shard id."""
        shard_id = self._shard_id(index)
        self.cluster.kill_shard(shard_id)
        self._killed.append(shard_id)
        return shard_id

    def heal_shard(self) -> Optional[int]:
        """Remove the earliest still-present killed shard (reroutes tenants).

        A dead *last* shard cannot be removed (the cluster refuses to drop
        its only shard), so on a one-shard fleet the heal is a no-op: the
        outage simply persists, which is also what the real system would do.
        """
        while self._killed:
            shard_id = self._killed.pop(0)
            if shard_id not in self.cluster.shard_ids():
                continue
            if self.cluster.shards == 1:
                self._killed.insert(0, shard_id)  # nothing to fail over to
                return None
            self.cluster.remove_shard(shard_id)
            return shard_id
        return None

    def slow_shard(self, index: int, delay_s: float) -> int:
        """Degrade one shard: every dispatch sleeps ``delay_s`` first."""
        shard_id = self._shard_id(index)
        self.cluster.worker(shard_id).chaos_delay_s = float(delay_s)
        self._slowed[shard_id] = float(delay_s)
        return shard_id

    def restore_shard(self, index: int) -> int:
        """Clear an injected slowdown on the ``index``-th live shard."""
        shard_id = self._shard_id(index)
        self.cluster.worker(shard_id).chaos_delay_s = 0.0
        self._slowed.pop(shard_id, None)
        return shard_id

    def poison_cache(self, model_id: str) -> int:
        """Replace the owning shard's cached engine with a poisoned one.

        The next dispatch touching the entry raises
        :class:`PoisonedEngineError` (failing that batch's futures cleanly);
        the entry stays poisoned until healed.  Returns the owning shard id.
        """
        worker = self.cluster.worker_for(model_id)
        worker.put_engine(model_id, PoisonedEngine(model_id))
        emit("cache_poison", model_id=model_id, shard=worker.shard_id)
        return worker.shard_id

    def heal_cache(self, model_id: str) -> int:
        """Evict the tenant's (poisoned) entry so the next request rebuilds."""
        worker = self.cluster.worker_for(model_id)
        worker.evict(model_id)
        return worker.shard_id

    def restore_all(self) -> None:
        """Clear every injected slowdown (end-of-run hygiene)."""
        for shard_id in list(self._slowed):
            if shard_id in self.cluster.shard_ids():
                self.cluster.worker(shard_id).chaos_delay_s = 0.0
        self._slowed.clear()

    # -- scheduled dispatch ------------------------------------------------------
    def fire(self, event: FaultEvent, model_ids: Sequence[str]) -> Dict[str, object]:
        """Execute one scheduled fault event; returns (and logs) a summary."""
        if event.action == "kill_shard":
            shard_id = self.kill_shard(event.target)
            summary = f"killed shard {shard_id}"
        elif event.action == "heal_shard":
            shard_id = self.heal_shard()
            summary = (
                f"healed: removed dead shard {shard_id}, tenants rerouted"
                if shard_id is not None
                else "heal_shard: nothing to heal"
            )
        elif event.action == "slow_shard":
            shard_id = self.slow_shard(event.target, event.delay_s)
            summary = f"slowed shard {shard_id} by {event.delay_s * 1e3:.0f}ms/dispatch"
        elif event.action == "restore_shard":
            shard_id = self.restore_shard(event.target)
            summary = f"restored shard {shard_id}"
        elif event.action == "poison_cache":
            model_id = self._model_id(event.target, model_ids)
            shard_id = self.poison_cache(model_id)
            summary = f"poisoned cache entry {model_id!r} on shard {shard_id}"
        elif event.action == "heal_cache":
            model_id = self._model_id(event.target, model_ids)
            shard_id = self.heal_cache(model_id)
            summary = f"evicted cache entry {model_id!r} on shard {shard_id}"
        else:  # pragma: no cover - FaultEvent validates actions
            raise ValueError(f"Unknown fault action {event.action!r}")
        entry = {"at_request": event.at_request, "action": event.action, "summary": summary}
        self.log.append(entry)
        emit("fault", action=event.action, at_request=event.at_request,
             summary=summary)
        return entry
