"""Scenario workload generation + fault injection for the serving runtime.

The serving stack (:mod:`repro.serve` single-process,
:mod:`repro.cluster` sharded) is only as credible as the traffic it has
survived.  This package is the benchmark-and-evaluation layer that
generates that traffic — deterministic, seedable, adversarial — and scores
the runtime's behaviour under it:

* :mod:`repro.loadgen.arrivals` — arrival processes (constant-rate,
  Poisson, bursty on/off, diurnal ramp, closed-loop);
* :mod:`repro.loadgen.popularity` — tenant-popularity models (uniform,
  Zipf-skewed, hot-set churn, class drift);
* :mod:`repro.loadgen.scenario` — named :class:`Scenario` presets composing
  the two, plus scheduled :class:`FaultEvent` chaos, synthesized into
  replayable :class:`Workload` plans;
* :mod:`repro.loadgen.driver` — :class:`LoadDriver`: paces a workload into
  any service facade (async against a cluster, sync against the
  single-process service) and records every outcome;
* :mod:`repro.loadgen.report` — :class:`SLOReport`: p50/p95/p99 latency,
  goodput, rejection rate, per-shard imbalance, cluster merged percentiles;
* :mod:`repro.loadgen.faults` — :class:`FaultInjector`: kill/slow a shard,
  poison an engine-cache entry, heal — the executable chaos layer;
* :mod:`repro.loadgen.fleet` — cheap deterministic tenant fleets.

Deterministic-seed contract: a workload is a pure function of
``(scenario, model_ids, seed)`` — arrival offsets, tenant sequence, inputs
and fault schedule are bit-stable across runs and machines
(:meth:`Workload.digest` proves it), and for fault-free scenarios so are
the outcome counts and the predictions digest.  Only wall-clock latency
measurements vary; the report keeps them in a separate ``slo`` block.

Quickstart::

    from repro.cluster import ClusterConfig, ClusterService
    from repro.loadgen import LoadDriver, build_scenario, synthetic_fleet

    registry, model_ids = synthetic_fleet(tenants=8, seed=0)
    scenario = build_scenario("zipf-burst")
    workload = scenario.synthesize(model_ids, seed=0)
    with ClusterService(ClusterConfig(shards=4), registry=registry) as cluster:
        report = LoadDriver(cluster).run(workload)
    print(report.render())            # p50/p95/p99, goodput, 503s, imbalance
    payload = report.to_dict()        # JSON-ready; timing=False -> byte-stable
"""

from .arrivals import (
    ARRIVALS,
    ArrivalProcess,
    BurstyOnOff,
    ClosedLoop,
    ConstantRate,
    DiurnalRamp,
    PoissonArrivals,
    make_arrivals,
)
from .driver import DriverConfig, LoadDriver
from .faults import FaultInjector, PoisonedEngine, PoisonedEngineError
from .fleet import FLEET_INPUT_SHAPE, synthetic_fleet
from .popularity import (
    POPULARITIES,
    ClassDriftPopularity,
    HotSetChurn,
    PopularityModel,
    UniformPopularity,
    ZipfPopularity,
    make_popularity,
)
from .report import RequestOutcome, SLOReport
from .scenario import (
    FAULT_ACTIONS,
    SCENARIOS,
    FaultEvent,
    Scenario,
    ScheduledRequest,
    Workload,
    build_scenario,
)

__all__ = [
    "ArrivalProcess",
    "ConstantRate",
    "PoissonArrivals",
    "BurstyOnOff",
    "DiurnalRamp",
    "ClosedLoop",
    "ARRIVALS",
    "make_arrivals",
    "PopularityModel",
    "UniformPopularity",
    "ZipfPopularity",
    "HotSetChurn",
    "ClassDriftPopularity",
    "POPULARITIES",
    "make_popularity",
    "Scenario",
    "ScheduledRequest",
    "Workload",
    "FaultEvent",
    "FAULT_ACTIONS",
    "SCENARIOS",
    "build_scenario",
    "LoadDriver",
    "DriverConfig",
    "SLOReport",
    "RequestOutcome",
    "FaultInjector",
    "PoisonedEngine",
    "PoisonedEngineError",
    "synthetic_fleet",
    "FLEET_INPUT_SHAPE",
]
