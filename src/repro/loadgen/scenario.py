"""Scenarios: named (arrivals × popularity × faults) presets, synthesized
into concrete, replayable workloads.

A :class:`Scenario` is the declarative description — how requests arrive,
which tenants they hit, how many there are, and which faults strike when.
:meth:`Scenario.synthesize` turns it into a :class:`Workload`: a fully
materialized, seeded request schedule (arrival offset + tenant + inputs per
request) that a :class:`~repro.loadgen.driver.LoadDriver` can replay against
any service facade.

Determinism contract
--------------------
``scenario.synthesize(model_ids, seed)`` is a pure function: the same
scenario parameters, tenant list and seed always produce the identical
workload — arrival offsets, tenant sequence, request ids, input tensors and
fault schedule, bit for bit.  :meth:`Workload.digest` fingerprints the plan
so two runs (or two machines) can prove they replayed the same traffic.
Wall-clock measurements are the only non-deterministic part of a loadgen
run, and they are kept out of the deterministic report section.

Fault targets are *indices*, not ids: ``kill_shard`` with ``target=1`` kills
the second-lowest live shard id at fire time, and ``poison_cache`` with
``target=0`` poisons the first tenant.  Index targeting keeps presets
portable across fleet sizes (resolved modulo the live count).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..serve.types import PredictRequest
from .arrivals import ArrivalProcess, BurstyOnOff, ClosedLoop, ConstantRate, DiurnalRamp, PoissonArrivals
from .popularity import (
    ClassDriftPopularity,
    HotSetChurn,
    PopularityModel,
    UniformPopularity,
    ZipfPopularity,
)

__all__ = [
    "FaultEvent",
    "FAULT_ACTIONS",
    "Scenario",
    "ScheduledRequest",
    "Workload",
    "SCENARIOS",
    "build_scenario",
]

#: Chaos actions a scenario can schedule (see FaultInjector for semantics).
FAULT_ACTIONS = (
    "kill_shard",     # crash the target shard abruptly (futures fail, no drain)
    "heal_shard",     # remove the earliest still-dead killed shard: reroute its tenants
    "slow_shard",     # inject delay_s of extra latency into every dispatch
    "restore_shard",  # clear an injected slowdown
    "poison_cache",   # replace the target tenant's cached engine with a poisoned one
    "heal_cache",     # evict the poisoned entry so the next request rebuilds
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled chaos action, fired just before request ``at_request``.

    ``target`` addresses a shard (by live-shard index) or a tenant (by
    position in the workload's tenant list) depending on the action;
    ``delay_s`` only applies to ``slow_shard``.  Indexing by request — not
    by wall-clock — keeps the schedule deterministic.
    """

    at_request: int
    action: str
    target: int = 0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(f"Unknown fault action {self.action!r}; available: {FAULT_ACTIONS}")
        if self.at_request < 0:
            raise ValueError(f"at_request must be >= 0, got {self.at_request}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "at_request": self.at_request,
            "action": self.action,
            "target": self.target,
            "delay_s": self.delay_s,
        }


@dataclass
class ScheduledRequest:
    """One materialized request: arrival offset, tenant, and the request."""

    at: float  #: virtual arrival offset (seconds from workload start)
    tenant: int  #: index into the workload's model_ids
    request: PredictRequest
    #: True-class label, when the popularity model emits one (drift
    #: scenarios): the ground truth served-head accuracy is scored against.
    label: Optional[int] = None


@dataclass
class Scenario:
    """A named traffic scenario: arrivals × popularity × count × faults."""

    name: str
    arrivals: ArrivalProcess
    popularity: PopularityModel
    requests: int = 64
    request_batch: int = 1  #: images per request (edge traffic is single-image)
    faults: Tuple[FaultEvent, ...] = ()
    #: Per-shard admission threshold the scenario wants (None: effectively
    #: unbounded, so fault-free runs never shed load and stay byte-stable).
    #: Presets that exist to exercise admission control set this low.
    high_water: Optional[int] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.request_batch < 1:
            raise ValueError(f"request_batch must be >= 1, got {self.request_batch}")
        if self.high_water is not None and self.high_water < 1:
            raise ValueError(f"high_water must be >= 1, got {self.high_water}")
        self.faults = tuple(sorted(self.faults, key=lambda f: (f.at_request, f.action)))

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable description of the scenario (no synthesized data)."""
        return {
            "name": self.name,
            "arrivals": self.arrivals.to_dict(),
            "popularity": self.popularity.to_dict(),
            "requests": self.requests,
            "request_batch": self.request_batch,
            "faults": [fault.to_dict() for fault in self.faults],
            "high_water": self.high_water,
            "description": self.description,
        }

    def synthesize(
        self,
        model_ids: Sequence[str],
        seed: int = 0,
        input_shape: Tuple[int, int, int] = (3, 12, 12),
    ) -> "Workload":
        """Materialize the deterministic workload for a concrete fleet.

        One seeded generator drives arrivals, then tenant choice, then the
        input tensors, in that fixed order — so the whole plan is a pure
        function of (scenario, model_ids, seed, input_shape).
        """
        if not model_ids:
            raise ValueError("cannot synthesize a workload over an empty fleet")
        rng = np.random.default_rng(seed)
        offsets = self.arrivals.times(self.requests, rng)
        tenants = self.popularity.sequence(self.requests, len(model_ids), rng)
        # Label-emitting popularity models (class drift) draw one extra
        # value per request here, after the tenant sequence and before the
        # input tensors; label-free models consume nothing, so their
        # workloads are bit-identical to what they were before labels.
        labels = None
        labeler = getattr(self.popularity, "labels", None)
        if callable(labeler):
            labels = labeler(self.requests, len(model_ids), tenants, rng)
        scheduled = []
        for i, (at, tenant) in enumerate(zip(offsets, tenants)):
            inputs = rng.normal(size=(self.request_batch, *input_shape))
            scheduled.append(
                ScheduledRequest(
                    at=float(at),
                    tenant=int(tenant),
                    request=PredictRequest(
                        model_ids[tenant], inputs, request_id=f"{self.name}-{i:05d}"
                    ),
                    label=None if labels is None else int(labels[i]),
                )
            )
        return Workload(
            scenario=self,
            model_ids=list(model_ids),
            seed=seed,
            scheduled=scheduled,
            closed_loop=self.arrivals.closed_loop,
            concurrency=getattr(self.arrivals, "concurrency", 1),
        )


@dataclass
class Workload:
    """A synthesized scenario: the concrete request schedule to replay."""

    scenario: Scenario
    model_ids: List[str]
    seed: int
    scheduled: List[ScheduledRequest]
    closed_loop: bool = False
    concurrency: int = 1
    faults: Tuple[FaultEvent, ...] = field(init=False)

    def __post_init__(self) -> None:
        self.faults = self.scenario.faults

    def __len__(self) -> int:
        return len(self.scheduled)

    @property
    def virtual_duration_s(self) -> float:
        """The last arrival offset (0 for closed-loop workloads)."""
        return max((s.at for s in self.scheduled), default=0.0)

    def per_tenant(self) -> Dict[str, int]:
        """Planned request count per model id (every tenant listed)."""
        counts = {model_id: 0 for model_id in self.model_ids}
        for item in self.scheduled:
            counts[item.request.model_id] += 1
        return counts

    def digest(self) -> str:
        """SHA-256 fingerprint of the full plan (schedule + faults).

        Two runs that report the same digest replayed byte-identical
        traffic; the fingerprint covers arrival offsets, tenant order,
        request ids, input tensors and the fault schedule.
        """
        h = hashlib.sha256()
        for item in self.scheduled:
            h.update(f"{item.at!r}|{item.tenant}|{item.request.request_id}|".encode())
            if item.label is not None:
                h.update(f"{item.label}|".encode())
            h.update(item.request.inputs.tobytes())
        for fault in self.faults:
            h.update(repr(sorted(fault.to_dict().items())).encode())
        return h.hexdigest()

    def plan_dict(self) -> Dict[str, object]:
        """The deterministic plan summary the SLO report embeds."""
        return {
            "digest": self.digest(),
            "seed": self.seed,
            "requests": len(self.scheduled),
            "tenants": len(self.model_ids),
            "virtual_duration_s": self.virtual_duration_s,
            "closed_loop": self.closed_loop,
            "concurrency": self.concurrency,
            "per_tenant": self.per_tenant(),
        }


# ---------------------------------------------------------------------------
# Named presets
# ---------------------------------------------------------------------------

def _steady_uniform() -> Scenario:
    return Scenario(
        name="steady-uniform",
        arrivals=ConstantRate(rate=400.0),
        popularity=UniformPopularity(),
        description="open-loop constant rate, uniform tenants — the control",
    )


def _poisson_zipf() -> Scenario:
    return Scenario(
        name="poisson-zipf",
        arrivals=PoissonArrivals(rate=400.0),
        popularity=ZipfPopularity(alpha=1.1),
        description="memoryless arrivals with a Zipf tenant head",
    )


def _zipf_burst() -> Scenario:
    return Scenario(
        name="zipf-burst",
        arrivals=BurstyOnOff(burst_size=16, burst_rate=2000.0, idle_s=0.05),
        popularity=ZipfPopularity(alpha=1.1),
        description="on/off bursts over Zipf-skewed tenants — queues fill, "
        "co-tenant requests fuse, the hot shard is the bottleneck",
    )


def _diurnal_ramp() -> Scenario:
    return Scenario(
        name="diurnal-ramp",
        arrivals=DiurnalRamp(base_rate=100.0, peak_rate=1200.0, period_s=0.4),
        popularity=UniformPopularity(),
        description="sinusoidal day/night rate sweep compressed into seconds",
    )


def _closed_loop() -> Scenario:
    return Scenario(
        name="closed-loop",
        arrivals=ClosedLoop(concurrency=8),
        popularity=UniformPopularity(),
        description="8 outstanding requests at all times (service-rate bound)",
    )


def _hot_churn() -> Scenario:
    return Scenario(
        name="hot-churn",
        arrivals=ConstantRate(rate=600.0),
        popularity=HotSetChurn(hot_fraction=0.25, hot_mass=0.85, churn_every=16),
        description="a rotating hot set — every churn is a cache-warmup cliff",
    )


def _shard_failure() -> Scenario:
    return Scenario(
        name="shard-failure",
        arrivals=PoissonArrivals(rate=500.0),
        popularity=UniformPopularity(),
        requests=48,
        faults=(
            FaultEvent(at_request=16, action="kill_shard", target=1),
            FaultEvent(at_request=32, action="heal_shard"),
        ),
        description="a shard crashes mid-run (clean failures, zero hangs), "
        "then the fleet heals and reroutes its tenants",
    )


def _slow_shard() -> Scenario:
    return Scenario(
        name="slow-shard",
        arrivals=ConstantRate(rate=800.0),
        popularity=UniformPopularity(),
        requests=48,
        faults=(
            FaultEvent(at_request=8, action="slow_shard", target=0, delay_s=0.02),
            FaultEvent(at_request=32, action="restore_shard", target=0),
        ),
        high_water=4,  # short queue: the slowdown must trip admission control
        description="one shard degrades: its queue backs up and admission "
        "control sheds load with 503s until the slowdown clears",
    )


def _drift_step() -> Scenario:
    return Scenario(
        name="drift-step",
        arrivals=ConstantRate(rate=600.0),
        popularity=ClassDriftPopularity(
            num_classes=6, head_size=3, shift_every=48, shift_fraction=1.0
        ),
        requests=96,
        description="every tenant's hot classes step to a new set mid-run — "
        "served-head accuracy falls off a cliff until re-personalization",
    )


def _drift_rolling() -> Scenario:
    return Scenario(
        name="drift-rolling",
        arrivals=ConstantRate(rate=600.0),
        popularity=ClassDriftPopularity(
            num_classes=6, head_size=3, shift_every=24, shift_fraction=0.5
        ),
        requests=96,
        description="staggered drift: half the fleet shifts hot classes each "
        "phase, so detection and rollout overlap across tenants",
    )


def _cache_poison() -> Scenario:
    return Scenario(
        name="cache-poison",
        arrivals=ConstantRate(rate=600.0),
        popularity=ZipfPopularity(alpha=1.1),
        requests=48,
        faults=(
            FaultEvent(at_request=12, action="poison_cache", target=0),
            FaultEvent(at_request=28, action="heal_cache", target=0),
        ),
        description="the hot tenant's cached engine is poisoned mid-run; its "
        "requests fail cleanly until the entry is evicted and rebuilt",
    )


#: Scenario name -> zero-argument factory producing a fresh preset.
SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "steady-uniform": _steady_uniform,
    "poisson-zipf": _poisson_zipf,
    "zipf-burst": _zipf_burst,
    "diurnal-ramp": _diurnal_ramp,
    "closed-loop": _closed_loop,
    "hot-churn": _hot_churn,
    "shard-failure": _shard_failure,
    "slow-shard": _slow_shard,
    "cache-poison": _cache_poison,
    "drift-step": _drift_step,
    "drift-rolling": _drift_rolling,
}


def build_scenario(
    name: str,
    requests: Optional[int] = None,
    request_batch: Optional[int] = None,
) -> Scenario:
    """A fresh preset by name, optionally resized.

    Resizing keeps fault schedules proportional: a fault at request 16 of 48
    lands at request 5 of 16 when a smoke run shrinks the scenario.
    """
    if name not in SCENARIOS:
        raise KeyError(f"Unknown scenario {name!r}; available: {sorted(SCENARIOS)}")
    if requests is not None and requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if request_batch is not None and request_batch < 1:
        raise ValueError(f"request_batch must be >= 1, got {request_batch}")
    scenario = SCENARIOS[name]()
    if request_batch is not None:
        scenario.request_batch = request_batch
    if requests is not None and requests != scenario.requests:
        scale = requests / scenario.requests
        scenario.faults = tuple(
            FaultEvent(
                at_request=min(requests - 1, int(fault.at_request * scale)),
                action=fault.action,
                target=fault.target,
                delay_s=fault.delay_s,
            )
            for fault in scenario.faults
        )
        # Drift schedules are request-indexed like faults: keep the phase
        # boundary proportional so a smoke-sized run still drifts mid-run.
        if isinstance(scenario.popularity, ClassDriftPopularity):
            scenario.popularity.shift_every = max(
                1, int(round(scenario.popularity.shift_every * scale))
            )
        scenario.requests = requests
    return scenario
