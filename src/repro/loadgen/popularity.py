"""Tenant-popularity models: which tenant each request addresses.

A :class:`PopularityModel` maps a request index to a tenant index, given the
fleet size and a seeded generator.  Combined with an arrival process it
fixes the whole workload shape: *when* requests land and *who* they are for.

Skew is the interesting axis for a sharded, cache-bounded runtime — uniform
traffic flatters every design, while a Zipf head concentrated on one shard
is what exposes placement and cache-capacity decisions:

* :class:`UniformPopularity` — every tenant equally likely (the control);
* :class:`ZipfPopularity` — classic power-law skew over a seeded tenant
  permutation, so *which* tenants are hot varies by seed while the skew
  itself does not;
* :class:`HotSetChurn` — a small hot set takes most of the traffic and is
  periodically rotated, modelling trending tenants; every rotation is a
  cache-warmup cliff for whichever shards inherit the new hot set.

Determinism contract: ``sequence(n, tenants, rng)`` is a pure function of
its arguments — same model, same fleet size, same seeded ``rng`` state →
the same tenant sequence, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Type

import numpy as np

__all__ = [
    "PopularityModel",
    "UniformPopularity",
    "ZipfPopularity",
    "HotSetChurn",
    "POPULARITIES",
    "make_popularity",
]


class PopularityModel:
    """Base class: a named generator of per-request tenant indices."""

    kind = "abstract"

    def sequence(self, n: int, tenants: int, rng: np.random.Generator) -> List[int]:
        """``n`` tenant indices in ``[0, tenants)``."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        payload = {"kind": self.kind}
        payload.update(vars(self))
        return payload


@dataclass
class UniformPopularity(PopularityModel):
    """Every tenant equally popular — the no-skew control."""

    kind = "uniform"

    def sequence(self, n: int, tenants: int, rng: np.random.Generator) -> List[int]:
        return rng.integers(0, tenants, size=n).tolist()


@dataclass
class ZipfPopularity(PopularityModel):
    """Zipf-skewed popularity: rank ``r`` carries weight ``1 / (r+1)^alpha``.

    Ranks are assigned to tenants through a seeded permutation, so the hot
    tenant differs between seeds (placement-sensitivity is part of what the
    scenario probes) while the skew profile is fixed by ``alpha``.
    """

    alpha: float = 1.1
    kind = "zipf"

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {self.alpha}")

    def sequence(self, n: int, tenants: int, rng: np.random.Generator) -> List[int]:
        ranks = rng.permutation(tenants)
        weights = 1.0 / np.power(np.arange(1, tenants + 1, dtype=np.float64), self.alpha)
        probabilities = weights / weights.sum()
        return ranks[rng.choice(tenants, size=n, p=probabilities)].tolist()


@dataclass
class HotSetChurn(PopularityModel):
    """A rotating hot set: most traffic on few tenants, and the few change.

    ``hot_fraction`` of the fleet (at least one tenant) receives
    ``hot_mass`` of the requests; every ``churn_every`` requests the hot set
    rotates to the next window of a seeded permutation.  Each rotation
    invalidates cache locality on the shards that inherit the new hot
    tenants — the scenario for testing warmup behaviour under drift.
    """

    hot_fraction: float = 0.25
    hot_mass: float = 0.85
    churn_every: int = 16
    kind = "hot-churn"

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in (0, 1], got {self.hot_fraction}")
        if not 0.0 < self.hot_mass <= 1.0:
            raise ValueError(f"hot_mass must be in (0, 1], got {self.hot_mass}")
        if self.churn_every < 1:
            raise ValueError(f"churn_every must be >= 1, got {self.churn_every}")

    def sequence(self, n: int, tenants: int, rng: np.random.Generator) -> List[int]:
        order = rng.permutation(tenants)
        hot_size = max(1, int(round(self.hot_fraction * tenants)))
        picks = []
        for i in range(n):
            rotation = (i // self.churn_every) * hot_size
            hot = [int(order[(rotation + j) % tenants]) for j in range(hot_size)]
            if rng.random() < self.hot_mass or hot_size == tenants:
                picks.append(hot[int(rng.integers(0, hot_size))])
            else:
                cold = int(rng.integers(0, tenants - hot_size))
                picks.append([t for t in range(tenants) if t not in hot][cold])
        return picks


#: Registry of popularity kinds (CLI listing / scenario description).
POPULARITIES: Dict[str, Type[PopularityModel]] = {
    cls.kind: cls for cls in (UniformPopularity, ZipfPopularity, HotSetChurn)
}


def make_popularity(kind: str, **params) -> PopularityModel:
    """Instantiate a popularity model by registry name."""
    if kind not in POPULARITIES:
        raise KeyError(f"Unknown popularity model {kind!r}; available: {sorted(POPULARITIES)}")
    return POPULARITIES[kind](**params)
