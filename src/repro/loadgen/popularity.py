"""Tenant-popularity models: which tenant each request addresses.

A :class:`PopularityModel` maps a request index to a tenant index, given the
fleet size and a seeded generator.  Combined with an arrival process it
fixes the whole workload shape: *when* requests land and *who* they are for.

Skew is the interesting axis for a sharded, cache-bounded runtime — uniform
traffic flatters every design, while a Zipf head concentrated on one shard
is what exposes placement and cache-capacity decisions:

* :class:`UniformPopularity` — every tenant equally likely (the control);
* :class:`ZipfPopularity` — classic power-law skew over a seeded tenant
  permutation, so *which* tenants are hot varies by seed while the skew
  itself does not;
* :class:`HotSetChurn` — a small hot set takes most of the traffic and is
  periodically rotated, modelling trending tenants; every rotation is a
  cache-warmup cliff for whichever shards inherit the new hot set.
* :class:`ClassDriftPopularity` — tenants stay uniform, but each tenant's
  *hot class set* shifts mid-scenario on a seeded schedule.  A model pruned
  to the phase-0 head keeps serving while the labels walk away from it —
  the drift signal the lifecycle plane exists to catch.

Determinism contract: ``sequence(n, tenants, rng)`` is a pure function of
its arguments — same model, same fleet size, same seeded ``rng`` state →
the same tenant sequence, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Type

import numpy as np

__all__ = [
    "PopularityModel",
    "UniformPopularity",
    "ZipfPopularity",
    "HotSetChurn",
    "ClassDriftPopularity",
    "POPULARITIES",
    "make_popularity",
]


class PopularityModel:
    """Base class: a named generator of per-request tenant indices."""

    kind = "abstract"

    def sequence(self, n: int, tenants: int, rng: np.random.Generator) -> List[int]:
        """``n`` tenant indices in ``[0, tenants)``."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        payload = {"kind": self.kind}
        payload.update(vars(self))
        return payload


@dataclass
class UniformPopularity(PopularityModel):
    """Every tenant equally popular — the no-skew control."""

    kind = "uniform"

    def sequence(self, n: int, tenants: int, rng: np.random.Generator) -> List[int]:
        return rng.integers(0, tenants, size=n).tolist()


@dataclass
class ZipfPopularity(PopularityModel):
    """Zipf-skewed popularity: rank ``r`` carries weight ``1 / (r+1)^alpha``.

    Ranks are assigned to tenants through a seeded permutation, so the hot
    tenant differs between seeds (placement-sensitivity is part of what the
    scenario probes) while the skew profile is fixed by ``alpha``.
    """

    alpha: float = 1.1
    kind = "zipf"

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {self.alpha}")

    def sequence(self, n: int, tenants: int, rng: np.random.Generator) -> List[int]:
        ranks = rng.permutation(tenants)
        weights = 1.0 / np.power(np.arange(1, tenants + 1, dtype=np.float64), self.alpha)
        probabilities = weights / weights.sum()
        return ranks[rng.choice(tenants, size=n, p=probabilities)].tolist()


@dataclass
class HotSetChurn(PopularityModel):
    """A rotating hot set: most traffic on few tenants, and the few change.

    ``hot_fraction`` of the fleet (at least one tenant) receives
    ``hot_mass`` of the requests; every ``churn_every`` requests the hot set
    rotates to the next window of a seeded permutation.  Each rotation
    invalidates cache locality on the shards that inherit the new hot
    tenants — the scenario for testing warmup behaviour under drift.
    """

    hot_fraction: float = 0.25
    hot_mass: float = 0.85
    churn_every: int = 16
    kind = "hot-churn"

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in (0, 1], got {self.hot_fraction}")
        if not 0.0 < self.hot_mass <= 1.0:
            raise ValueError(f"hot_mass must be in (0, 1], got {self.hot_mass}")
        if self.churn_every < 1:
            raise ValueError(f"churn_every must be >= 1, got {self.churn_every}")

    def sequence(self, n: int, tenants: int, rng: np.random.Generator) -> List[int]:
        order = rng.permutation(tenants)
        hot_size = max(1, int(round(self.hot_fraction * tenants)))
        picks = []
        for i in range(n):
            rotation = (i // self.churn_every) * hot_size
            hot = [int(order[(rotation + j) % tenants]) for j in range(hot_size)]
            if rng.random() < self.hot_mass or hot_size == tenants:
                picks.append(hot[int(rng.integers(0, hot_size))])
            else:
                cold = int(rng.integers(0, tenants - hot_size))
                picks.append([t for t in range(tenants) if t not in hot][cold])
        return picks


@dataclass
class ClassDriftPopularity(PopularityModel):
    """Uniform tenants whose *hot class sets* drift on a seeded schedule.

    Every tenant owns a hot set of ``head_size`` classes out of
    ``num_classes``; per-request labels are drawn from the addressed
    tenant's *current* hot set.  Every ``shift_every`` requests the
    scenario enters a new phase, and the tenants picked by
    ``shift_fraction`` rotate their hot set one window along a per-tenant
    seeded permutation — exactly the :class:`HotSetChurn` rotation, applied
    to classes instead of tenants.

    The class schedule is keyed by ``drift_seed`` (not the workload rng),
    so :meth:`hot_classes` is a pure function of ``(tenant, phase)``: a
    fleet builder can align each tenant's served head with its phase-0 hot
    set, and a detector's ground truth is reconstructable after the fact.
    """

    num_classes: int = 6
    head_size: int = 3
    shift_every: int = 32
    shift_fraction: float = 1.0
    drift_seed: int = 0
    kind = "class-drift"

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        if not 1 <= self.head_size < self.num_classes:
            raise ValueError(
                f"head_size must be in [1, num_classes), got {self.head_size}"
            )
        if self.shift_every < 1:
            raise ValueError(f"shift_every must be >= 1, got {self.shift_every}")
        if not 0.0 < self.shift_fraction <= 1.0:
            raise ValueError(
                f"shift_fraction must be in (0, 1], got {self.shift_fraction}"
            )

    def sequence(self, n: int, tenants: int, rng: np.random.Generator) -> List[int]:
        return rng.integers(0, tenants, size=n).tolist()

    def _shifts_by(self, tenant: int, phase: int) -> int:
        """How many times ``tenant``'s hot set has rotated by ``phase``."""
        if self.shift_fraction >= 1.0:
            return phase
        # Staggered rolling drift: a tenant participates in phase q's shift
        # iff q falls on its stride slot, so ~shift_fraction of the fleet
        # moves each phase and the schedule stays a pure function.
        stride = max(1, int(round(1.0 / self.shift_fraction)))
        return sum(1 for q in range(1, phase + 1) if q % stride == tenant % stride)

    def hot_classes(self, tenant: int, phase: int) -> List[int]:
        """The tenant's hot class set during ``phase`` (pure, seeded)."""
        if phase < 0:
            raise ValueError(f"phase must be >= 0, got {phase}")
        order = np.random.default_rng(
            (self.drift_seed + 1) * 1_000_003 + tenant
        ).permutation(self.num_classes)
        rotation = self._shifts_by(tenant, phase) * self.head_size
        return [
            int(order[(rotation + j) % self.num_classes])
            for j in range(self.head_size)
        ]

    def labels(
        self,
        n: int,
        tenants: int,
        tenant_seq: Sequence[int],
        rng: np.random.Generator,
    ) -> List[int]:
        """Per-request true-class labels from each tenant's current hot set.

        Consumes the shared workload ``rng`` (one draw per request) so the
        label stream is covered by the scenario's determinism contract.
        """
        del tenants  # the schedule is per-tenant; fleet size is implicit
        picks = []
        for i in range(n):
            hot = self.hot_classes(int(tenant_seq[i]), i // self.shift_every)
            picks.append(hot[int(rng.integers(0, len(hot)))])
        return picks


#: Registry of popularity kinds (CLI listing / scenario description).
POPULARITIES: Dict[str, Type[PopularityModel]] = {
    cls.kind: cls
    for cls in (UniformPopularity, ZipfPopularity, HotSetChurn, ClassDriftPopularity)
}


def make_popularity(kind: str, **params) -> PopularityModel:
    """Instantiate a popularity model by registry name."""
    if kind not in POPULARITIES:
        raise KeyError(f"Unknown popularity model {kind!r}; available: {sorted(POPULARITIES)}")
    return POPULARITIES[kind](**params)
