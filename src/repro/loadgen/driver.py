"""The load driver: replay a synthesized workload against a serving target.

:class:`LoadDriver` drives the Serving API v2 surface
(:class:`~repro.gateway.ServingAPI`): anything exposing the async
``submit(request) -> Future`` surface (a
:class:`~repro.gateway.ClusterBackend`) is driven asynchronously with
open-loop pacing or closed-loop windowing, and synchronous targets — a
:class:`~repro.gateway.LocalBackend` or a
:class:`~repro.gateway.GatewayClient` pointed at a loopback or HTTP
transport — are driven call-by-call.  Both paths record identical
:class:`~repro.loadgen.report.RequestOutcome` streams into an
:class:`~repro.loadgen.report.SLOReport`.

Pre-gateway facades (:class:`~repro.cluster.ClusterService`,
:class:`~repro.serve.PersonalizationService`) are still accepted and are
adapted through :func:`~repro.gateway.as_serving_api` on construction — the
deprecation shim that keeps the old entry point alive.  Taxonomy errors
(:class:`~repro.errors.ApiError`) map onto outcome statuses by code:
``RESOURCE_EXHAUSTED`` / ``UNAVAILABLE`` count as *rejected* (load shed, by
design), everything else as *failed*.

Pacing: open-loop workloads sleep until each request's virtual arrival
offset times ``time_scale``.  ``time_scale=1`` replays the scenario's
virtual clock in real time; ``0`` disables pacing entirely (maximum-ingest
mode, what the throughput benchmarks use).

Faults: events fire *between* submissions, keyed by request index, through
a :class:`~repro.loadgen.faults.FaultInjector` — deterministic placement in
the request stream even though their wall-clock moment varies.

Every submitted future is awaited with a hard deadline; one that never
resolves is reported as *hung* (status 408) rather than blocking the run —
``report.hung == 0`` is the no-leaked-futures invariant the chaos tests
assert.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ApiError
from .. import trace as _trace
from ..trace import Trace, hops_of
from .faults import FaultInjector
from .report import (
    STATUS_FAILED,
    STATUS_HUNG,
    STATUS_OK,
    STATUS_REJECTED,
    RequestOutcome,
    SLOReport,
)
from .scenario import Workload

__all__ = ["DriverConfig", "LoadDriver"]


@dataclass
class DriverConfig:
    """Replay knobs (orthogonal to the scenario being replayed)."""

    time_scale: float = 1.0  #: virtual→wall multiplier; 0 = no pacing
    timeout_s: float = 30.0  #: hard deadline for the slowest future
    record_cluster_stats: bool = True  #: attach ClusterService.stats() to the report

    def __post_init__(self) -> None:
        if self.time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {self.time_scale}")
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")


class LoadDriver:
    """Replays workloads against one Serving API v2 target and scores the run."""

    def __init__(self, service, config: Optional[DriverConfig] = None) -> None:
        # Deferred import: repro.gateway layers on repro.loadgen's siblings.
        from ..gateway.api import ServingAPI, as_serving_api
        from ..gateway.client import GatewayClient

        self.service = service  # as handed in (back-compat surface)
        if isinstance(service, (ServingAPI, GatewayClient)):
            self.target = service
        else:
            # Deprecation shim: adapt pre-gateway facades onto Serving API v2.
            self.target = as_serving_api(service)
        self._wire_client = isinstance(service, GatewayClient)
        self.config = config or DriverConfig()

    # -- report scaffolding ------------------------------------------------------
    def _is_async(self) -> bool:
        return hasattr(self.target, "submit")

    def _per_shard_planned(self, workload: Workload) -> Dict[str, int]:
        """Planned request count per shard under the current placement.

        Deterministic: placement depends only on the registry contents and
        the shard set, and the workload's tenant sequence is seeded.
        """
        if not hasattr(self.target, "worker_for"):
            return {"0": len(workload)}
        counts: Dict[str, int] = {
            str(shard_id): 0 for shard_id in self.target.shard_ids()
        }
        for item in workload.scheduled:
            shard = self.target.worker_for(item.request.model_id).shard_id
            counts[str(shard)] += 1
        return counts

    def _cluster_stats(self) -> Optional[Dict]:
        """The target's cluster-shaped stats, if it exposes any.

        Wire clients (``GatewayClient``) report the remote deployment's
        stats dict; only dicts carrying the cluster schema (``totals`` /
        ``per_shard``) are usable by the SLO report's cluster block.
        """
        if not hasattr(self.target, "stats"):
            return None
        stats = self.target.stats()
        if isinstance(stats, dict) and "totals" in stats:
            return stats
        return None

    def _new_report(self, workload: Workload) -> SLOReport:
        shards = getattr(self.target, "shards", None)
        if not isinstance(shards, int):
            # A wire client has no local topology; ask the deployment's
            # stats for its shard count so the report doesn't claim 1.
            stats = self._cluster_stats()
            shards = stats.get("shards", 1) if stats else 1
        return SLOReport(
            scenario=workload.scenario.to_dict(),
            plan=workload.plan_dict(),
            shards=shards if isinstance(shards, int) else 1,
            per_shard_planned=self._per_shard_planned(workload),
        )

    # -- the replay --------------------------------------------------------------
    def run(self, workload: Workload) -> SLOReport:
        """Replay ``workload`` and return its :class:`SLOReport`."""
        if workload.faults and not self._is_async():
            raise ValueError(
                "fault-injection scenarios need a ClusterService-backed "
                "target (the synchronous facades have no shards to break)"
            )
        report = self._new_report(workload)
        if self._is_async():
            self._run_async(workload, report)
        else:
            self._run_sync(workload, report)
        return report

    def _fire_faults(
        self, injector: Optional[FaultInjector], faults, index: int, workload: Workload,
        report: SLOReport,
    ) -> None:
        for event in faults.get(index, ()):
            entry = injector.fire(event, workload.model_ids)
            report.fault_log.append(entry)

    def _run_async(self, workload: Workload, report: SLOReport) -> None:
        # Fault injection drives the raw cluster's chaos seams, so unwrap
        # the ClusterBackend adapter (a raw ClusterService passes through).
        cluster = getattr(self.target, "cluster", self.target)
        injector = FaultInjector(cluster) if workload.faults else None
        faults: Dict[int, List] = {}
        for event in workload.faults:
            faults.setdefault(event.at_request, []).append(event)

        window = (
            threading.Semaphore(workload.concurrency) if workload.closed_loop else None
        )
        scale = self.config.time_scale
        inflight: List[Tuple[str, str, float, Dict[str, float], Future]] = []
        start = time.perf_counter()
        stalled_from = None
        fired_through = -1
        for index, item in enumerate(workload.scheduled):
            self._fire_faults(injector, faults, index, workload, report)
            fired_through = index
            if window is not None:
                # Closed loop: wait for a slot, not for a timestamp.
                if not window.acquire(timeout=self.config.timeout_s):
                    # The window never freed: the outstanding futures are
                    # stuck.  Stop submitting, but account for the whole
                    # unsubmitted tail — silence would misreport the stall.
                    stalled_from = index
                    break
            elif scale > 0:
                target = start + item.at * scale
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            if _trace.enabled():
                # Span collector for this request: the cluster seams record
                # into it (shard/engine child-side spans are merged back
                # before the future resolves).
                item.request.trace = Trace()
            submitted = time.perf_counter()
            future = self.target.submit(item.request)
            marks: Dict[str, float] = {}

            def _on_done(f: Future, marks: Dict[str, float] = marks) -> None:
                marks["done"] = time.perf_counter()
                if window is not None:
                    window.release()

            future.add_done_callback(_on_done)
            inflight.append(
                (item.request.request_id, item.request.model_id, submitted, marks, future)
            )
        if stalled_from is not None:
            for item in workload.scheduled[stalled_from:]:
                report.record(
                    RequestOutcome(
                        item.request.request_id,
                        item.request.model_id,
                        STATUS_HUNG,
                        error="ClosedLoopStall",
                    )
                )
        # Sweep the rest of the schedule, in order: events past the last
        # submission index (late faults) and any skipped by a stall break
        # still fire exactly once — the fault_log must reflect the whole
        # declared schedule, executed or the run cannot be reasoned about.
        for index in sorted(faults):
            if index > fired_through:
                self._fire_faults(injector, faults, index, workload, report)

        deadline = time.perf_counter() + self.config.timeout_s
        last_done = start
        for request_id, model_id, submitted, marks, future in inflight:
            remaining = max(0.0, deadline - time.perf_counter())
            try:
                result = future.result(timeout=remaining)
            except FutureTimeoutError:
                report.record(
                    RequestOutcome(request_id, model_id, STATUS_HUNG, error="TimeoutError")
                )
                continue
            except Exception as exc:
                done = marks.get("done", time.perf_counter())
                last_done = max(last_done, done)
                report.record(
                    RequestOutcome(
                        request_id,
                        model_id,
                        STATUS_FAILED,
                        latency_s=done - submitted,
                        error=type(exc).__name__,
                    )
                )
                continue
            done = marks.get("done", time.perf_counter())
            last_done = max(last_done, done)
            latency = done - submitted
            hops = hops_of(result)
            if getattr(result, "ok", False):
                report.record(
                    RequestOutcome(request_id, model_id, STATUS_OK, latency, hops=hops)
                )
                report.record_prediction(request_id, result.logits)
            else:
                report.record(RequestOutcome(request_id, model_id, STATUS_REJECTED, latency))
        report.elapsed_s = max(last_done - start, 1e-12)
        if injector is not None:
            injector.restore_all()
        if self.config.record_cluster_stats:
            report.cluster_stats = self._cluster_stats()

    def _predict_one(self, request):
        """One synchronous call through whichever facade shape the target has."""
        if self._wire_client:
            # GatewayClient keeps the classic (model_id, batch) convention.
            return self.target.predict(
                request.model_id, request.inputs, request_id=request.request_id
            )
        return self.target.predict(request)

    @staticmethod
    def _error_status(exc: Exception) -> int:
        """Map an exception to an outcome status (shed load is *rejected*)."""
        if isinstance(exc, ApiError) and exc.code in (
            "RESOURCE_EXHAUSTED",
            "UNAVAILABLE",
        ):
            return STATUS_REJECTED
        return STATUS_FAILED

    def _run_sync(self, workload: Workload, report: SLOReport) -> None:
        """Call-by-call replay for targets without an async submit surface."""
        scale = self.config.time_scale
        start = time.perf_counter()
        for item in workload.scheduled:
            if not workload.closed_loop and scale > 0:
                target = start + item.at * scale
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            if _trace.enabled() and not self._wire_client:
                # In-process facades record into an attached collector; a
                # wire client instead flags the envelope and rebuilds the
                # spans from the reply (see GatewayClient.predict).
                item.request.trace = Trace()
            submitted = time.perf_counter()
            try:
                response = self._predict_one(item.request)
            except Exception as exc:
                report.record(
                    RequestOutcome(
                        item.request.request_id,
                        item.request.model_id,
                        self._error_status(exc),
                        latency_s=time.perf_counter() - submitted,
                        error=type(exc).__name__,
                    )
                )
                continue
            latency = time.perf_counter() - submitted
            report.record(
                RequestOutcome(
                    item.request.request_id,
                    item.request.model_id,
                    STATUS_OK,
                    latency,
                    hops=hops_of(response) or hops_of(item.request),
                )
            )
            report.record_prediction(item.request.request_id, response.logits)
        report.elapsed_s = max(time.perf_counter() - start, 1e-12)
        # Wire clients see the remote cluster's stats too — the SLO artifact
        # keeps its cluster block (merged p99, per-shard completions)
        # whichever transport carried the replay.
        if self.config.record_cluster_stats:
            report.cluster_stats = self._cluster_stats()
